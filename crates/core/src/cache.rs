//! Query-answer caches (§5.2.2's group-locality device).
//!
//! The paper's inter-domain flooding leans on small-world behaviour:
//! *"the probability of finding answers to query Q in the neighborhood
//! of a relevant peer is very high [...] some of its neighbors may be
//! interested in the same data, and thus have cached answers to similar
//! queries."* [`QueryCache`] is that per-peer cache: a bounded LRU from
//! query template to the answering peers last observed, letting a
//! flooded neighbor short-circuit a whole domain visit.
//!
//! Cached entries are *descriptions of the past* — exactly like summary
//! freshness, they can go stale; consumers decide how to validate.

use std::collections::VecDeque;

use p2psim::network::NodeId;

/// One cached answer: the peers that answered a template's query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Workload template index.
    pub template: usize,
    /// Peers observed answering.
    pub answering: Vec<NodeId>,
}

/// A bounded per-peer LRU cache of query answers.
#[derive(Debug, Clone)]
pub struct QueryCache {
    capacity: usize,
    /// Most-recently-used first.
    entries: VecDeque<CachedAnswer>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or refreshes the answer for a template (moves it to the
    /// MRU position; evicts the LRU entry when full).
    pub fn insert(&mut self, template: usize, answering: Vec<NodeId>) {
        self.entries.retain(|e| e.template != template);
        self.entries.push_front(CachedAnswer {
            template,
            answering,
        });
        while self.entries.len() > self.capacity {
            self.entries.pop_back();
        }
    }

    /// Looks a template up, refreshing its recency on hit.
    pub fn lookup(&mut self, template: usize) -> Option<&CachedAnswer> {
        let pos = self.entries.iter().position(|e| e.template == template)?;
        let entry = self.entries.remove(pos).expect("position just found");
        self.entries.push_front(entry);
        self.entries.front()
    }

    /// Peeks without touching recency (for tests/metrics).
    pub fn peek(&self, template: usize) -> Option<&CachedAnswer> {
        self.entries.iter().find(|e| e.template == template)
    }

    /// Drops every cached answer (e.g. after a reconciliation invalidates
    /// the domain's descriptions).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = QueryCache::new(4);
        assert!(c.is_empty());
        c.insert(0, peers(&[1, 2]));
        c.insert(1, peers(&[3]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(0).unwrap().answering, peers(&[1, 2]));
        assert!(c.lookup(9).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = QueryCache::new(2);
        c.insert(0, peers(&[1]));
        c.insert(1, peers(&[2]));
        // Touch 0 so 1 becomes the LRU.
        c.lookup(0);
        c.insert(2, peers(&[3]));
        assert!(c.peek(0).is_some());
        assert!(c.peek(1).is_none(), "LRU evicted");
        assert!(c.peek(2).is_some());
    }

    #[test]
    fn reinsert_replaces_and_refreshes() {
        let mut c = QueryCache::new(2);
        c.insert(0, peers(&[1]));
        c.insert(1, peers(&[2]));
        c.insert(0, peers(&[9, 10]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(0).unwrap().answering, peers(&[9, 10]));
        // 1 is now LRU.
        c.insert(2, peers(&[3]));
        assert!(c.peek(1).is_none());
    }

    #[test]
    fn capacity_floor_and_clear() {
        let mut c = QueryCache::new(0); // clamped to 1
        c.insert(0, peers(&[1]));
        c.insert(1, peers(&[2]));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }
}
