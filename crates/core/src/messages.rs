//! The protocol message vocabulary (§4–§5).
//!
//! Every message the paper names is represented, with an estimated wire
//! size so experiments can report bytes as well as message counts (the
//! paper's unit is messages; bytes are a bonus the summary codec makes
//! cheap to provide).

use p2psim::network::{MessageClass, NodeId};
use p2psim::time::SimTime;

use crate::config::LatencyConfig;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// §4.1: the construction broadcast. Carries the summary peer's id
    /// and a hop counter used to compute client→SP distances.
    SumPeer {
        /// The advertising summary peer.
        sp: NodeId,
        /// Hops travelled so far.
        hops: u32,
        /// Remaining TTL.
        ttl: u32,
    },
    /// §4.1: a peer ships its local summary to become a partner.
    LocalSum {
        /// Encoded summary size in bytes (payload itself lives in the
        /// domain state; experiments only need the size).
        bytes: usize,
    },
    /// §4.1: a partner abandons a farther SP for a closer one.
    Drop,
    /// §4.1: selective-walk probe looking for any summary peer.
    Find,
    /// §4.2.1: freshness flag push (sets `v = 1`, or `v = 2` on leave
    /// under the 2-bit scheme).
    Push {
        /// The pushed freshness value (2-bit encoding).
        value: u8,
    },
    /// §4.2.2: the reconciliation token carrying `NewGS` from partner to
    /// partner.
    ReconciliationToken {
        /// Current encoded size of `NewGS`, growing along the ring.
        bytes: usize,
    },
    /// §4.3: a departing summary peer releases its partners.
    Release,
    /// §5: a query sent to the domain's summary peer or forwarded to a
    /// relevant peer.
    Query {
        /// Workload template index.
        template: usize,
    },
    /// §5: a query answer returned by a data-holding peer.
    QueryHit {
        /// Number of result tuples.
        results: u32,
    },
    /// §5.2.2: inter-domain flooding request sent by the SP to answering
    /// peers and the originator.
    FloodRequest {
        /// Remaining TTL for the inter-domain hop.
        ttl: u32,
    },
}

impl Message {
    /// The accounting class of this message.
    pub fn class(&self) -> MessageClass {
        match self {
            Message::SumPeer { .. } | Message::LocalSum { .. } | Message::Drop | Message::Find => {
                MessageClass::Construction
            }
            Message::Push { .. } => MessageClass::Push,
            Message::ReconciliationToken { .. } => MessageClass::Reconciliation,
            Message::Release => MessageClass::Control,
            Message::Query { .. } => MessageClass::Query,
            Message::QueryHit { .. } => MessageClass::QueryResponse,
            Message::FloodRequest { .. } => MessageClass::Flood,
        }
    }

    /// Estimated wire size in bytes (headers + payload).
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 40; // ids, type tag, transport overhead
        match self {
            Message::SumPeer { .. } => HEADER + 12,
            Message::LocalSum { bytes } => HEADER + bytes,
            Message::Drop | Message::Find | Message::Release => HEADER,
            Message::Push { .. } => HEADER + 1,
            Message::ReconciliationToken { bytes } => HEADER + bytes,
            Message::Query { .. } => HEADER + 64,
            Message::QueryHit { results } => HEADER + 16 * *results as usize,
            Message::FloodRequest { .. } => HEADER + 68,
        }
    }

    /// One-way transit time of this message over a link with base
    /// (propagation) latency `link`: scaled propagation plus
    /// serialization of the wire bytes at the configured bandwidth.
    /// Strictly positive — even a zero-latency link costs at least the
    /// serialization of the header, and a 1 µs floor keeps every
    /// delivery event at a positive virtual-time offset.
    pub fn transit_time(&self, link: SimTime, lat: &LatencyConfig) -> SimTime {
        let prop_us = (link.0 as f64 * lat.scale).round() as u64;
        let ser_us =
            (self.wire_bytes() as u64 * 1_000_000).div_ceil(lat.bandwidth_bytes_per_s.max(1));
        SimTime((prop_us + ser_us).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_vocabulary() {
        let cases = [
            (
                Message::SumPeer {
                    sp: NodeId(1),
                    hops: 0,
                    ttl: 2,
                },
                MessageClass::Construction,
            ),
            (Message::LocalSum { bytes: 512 }, MessageClass::Construction),
            (Message::Drop, MessageClass::Construction),
            (Message::Find, MessageClass::Construction),
            (Message::Push { value: 1 }, MessageClass::Push),
            (
                Message::ReconciliationToken { bytes: 2048 },
                MessageClass::Reconciliation,
            ),
            (Message::Release, MessageClass::Control),
            (Message::Query { template: 0 }, MessageClass::Query),
            (
                Message::QueryHit { results: 3 },
                MessageClass::QueryResponse,
            ),
            (Message::FloodRequest { ttl: 2 }, MessageClass::Flood),
        ];
        for (msg, class) in cases {
            assert_eq!(msg.class(), class, "{msg:?}");
        }
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Message::LocalSum { bytes: 100 }.wire_bytes();
        let big = Message::LocalSum { bytes: 10_000 }.wire_bytes();
        assert!(big > small);
        assert_eq!(big - small, 9_900);
        assert!(Message::Drop.wire_bytes() < Message::Query { template: 0 }.wire_bytes());
        let hit0 = Message::QueryHit { results: 0 }.wire_bytes();
        let hit9 = Message::QueryHit { results: 9 }.wire_bytes();
        assert!(hit9 > hit0);
    }

    #[test]
    fn transit_time_is_positive_and_scales() {
        let lat = LatencyConfig::wan_default();
        let link = SimTime::from_millis(20);
        // Per-class costing: a fat reconciliation token takes longer
        // than a push over the same link.
        let push = Message::Push { value: 1 }.transit_time(link, &lat);
        let token = Message::ReconciliationToken { bytes: 200_000 }.transit_time(link, &lat);
        assert!(push >= link, "propagation is a floor");
        assert!(token > push, "serialization shows up per class");

        // Even a zero-latency link yields a strictly positive transit.
        let zero = Message::Drop.transit_time(SimTime::ZERO, &lat);
        assert!(zero > SimTime::ZERO);

        // The scale multiplier stretches propagation.
        let mut double = lat;
        double.scale = 2.0;
        let stretched = Message::Push { value: 1 }.transit_time(link, &double);
        assert!(stretched > push);
    }
}
