//! The unified event-driven simulation kernel.
//!
//! One `p2psim::Simulator` event loop drives *every* process of the
//! paper in a single virtual clock, for one domain or for a whole
//! multi-domain network:
//!
//! * **summary drift** — per-peer lifetimes from Table 3's lognormal;
//!   on expiry the peer's database is regenerated and a `push` flags its
//!   cooperation-list entry;
//! * **churn** — session schedules with graceful leaves (`v = 2`
//!   pushes) and silent failures (GS poison until the next pull);
//! * **reconciliation** — per-domain α-gated token rings
//!   ([`DomainCore::maybe_reconcile`]);
//! * **queries** — intra-domain workload samples
//!   ([`KernelEvent::LocalQuery`]) and, in networked mode, inter-domain
//!   lookups ([`KernelEvent::InterQuery`]) routed against the *live*
//!   per-domain GS/CL state via §5.2.2's flooding + long-link protocol.
//!
//! [`crate::domain::DomainSim`] and [`crate::system::MultiDomainSystem`]
//! are thin facades over this kernel; [`MultiDomainSim`] is the dynamic
//! entry point the churn-under-routing experiments use.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fuzzy::bk::BackgroundKnowledge;
use p2psim::churn::{ChurnConfig, SessionEvent, SessionSchedule};
use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::sim::Simulator;
use p2psim::time::SimTime;
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saintetiq::engine::EngineConfig;
use saintetiq::query::proposition::{reformulate, SummaryQuery};
use saintetiq::query::relevant_sources;
use saintetiq::wire;

use crate::cache::QueryCache;
use crate::config::SimConfig;
use crate::construction::{construct_domains, elect_superpeers, Domains};
use crate::error::P2pError;
use crate::messages::Message;
use crate::metrics::{DomainReport, MultiDomainReport};
use crate::peerstate::{DomainCore, MessageLedger, PeerState};
use crate::routing::{QueryOutcome, RoutingPolicy};
use crate::workload::{generate_peer_data, make_templates, QueryTemplate};

/// How many results a query needs (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupTarget {
    /// `C_t` result tuples suffice.
    Partial(usize),
    /// Every result in the network is wanted.
    Total,
}

/// Outcome of one multi-domain query.
#[derive(Debug, Clone)]
pub struct MultiDomainOutcome {
    /// Result tuples gathered (one per answering peer — the paper's
    /// high-selectivity assumption).
    pub results: usize,
    /// Ground-truth result count network-wide (live matching peers).
    pub results_total: usize,
    /// Domains whose GS was queried.
    pub domains_visited: usize,
    /// Total messages (intra-domain + flooding + responses).
    pub messages: u64,
    /// Whether the lookup target was met.
    pub satisfied: bool,
    /// Stale answers: peers the (possibly outdated) global summaries
    /// selected that turned out to be down or no longer matching.
    pub stale_answers: usize,
}

impl MultiDomainOutcome {
    /// Network-wide recall of the query.
    pub fn recall(&self) -> f64 {
        if self.results_total == 0 {
            1.0
        } else {
            self.results as f64 / self.results_total as f64
        }
    }

    /// Network-wide false negatives: live matching peers the lookup
    /// never reached (stale summaries, unvisited domains, or an early
    /// partial-lookup stop).
    pub fn false_negatives(&self) -> usize {
        self.results_total.saturating_sub(self.results)
    }

    fn empty(results_total: usize) -> Self {
        Self {
            results: 0,
            results_total,
            domains_visited: 0,
            messages: 0,
            satisfied: false,
            stale_answers: 0,
        }
    }
}

/// Simulation events of the unified kernel.
#[derive(Debug, Clone, Copy)]
pub enum KernelEvent {
    /// A partner's local summary lifetime expired (data drifted).
    Drift(NodeId),
    /// A churn transition.
    Session(SessionEvent),
    /// An intra-domain workload query (single-domain mode).
    LocalQuery {
        /// Workload template index.
        template: usize,
    },
    /// An inter-domain lookup posed at a partner peer (networked mode).
    InterQuery {
        /// The originating partner.
        origin: NodeId,
        /// Workload template index.
        template: usize,
    },
}

/// The unified simulation state: peers + domains + (optionally) the
/// physical network, driven by one event loop.
pub struct SimKernel {
    pub(crate) cfg: SimConfig,
    bk: BackgroundKnowledge,
    templates: Vec<QueryTemplate>,
    reformulated: Vec<SummaryQuery>,
    sim: Simulator<KernelEvent>,
    pub(crate) peers: Vec<Option<PeerState>>,
    pub(crate) domains: Vec<DomainCore>,
    domain_of: Vec<Option<usize>>,
    sp_index: BTreeMap<NodeId, usize>,
    pub(crate) ledger: MessageLedger,
    outcomes: Vec<QueryOutcome>,
    inter_outcomes: Vec<(SimTime, MultiDomainOutcome)>,
    pub(crate) net: Option<Network>,
    pub(crate) topo: Option<Domains>,
    caches: Vec<QueryCache>,
    cache_hits: u64,
    target: LookupTarget,
}

/// The medical workload every kernel mode shares: the CBK plus the
/// query templates reformulated against it.
fn build_workload(
    cfg: &SimConfig,
) -> Result<(BackgroundKnowledge, Vec<QueryTemplate>, Vec<SummaryQuery>), P2pError> {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(cfg.template_count);
    let reformulated: Vec<SummaryQuery> = templates
        .iter()
        .map(|t| reformulate(&t.query, &bk))
        .collect::<Result<_, _>>()?;
    Ok((bk, templates, reformulated))
}

/// Query sample times: `(template, at)` pairs spread across
/// (10%..100%) of the horizon so the first samples already see
/// steady-state maintenance.
fn query_sample_times(cfg: &SimConfig, template_count: usize) -> Vec<(usize, SimTime)> {
    (0..cfg.query_count)
        .map(|i| {
            let frac = 0.1 + 0.9 * (i as f64 / cfg.query_count as f64);
            let at = SimTime::from_secs_f64(cfg.horizon.as_secs_f64() * frac);
            (i % template_count, at)
        })
        .collect()
}

impl SimKernel {
    /// Builds the single-domain simulation: one summary peer with every
    /// generated peer as partner, plus drift, churn and the intra-domain
    /// query workload scheduled across the horizon — the exact
    /// [`crate::domain::DomainSim`] semantics.
    pub fn single_domain(cfg: SimConfig) -> Result<Self, P2pError> {
        cfg.validate()?;
        let (bk, templates, reformulated) = build_workload(&cfg)?;

        let mut sim = Simulator::<KernelEvent>::new(cfg.seed);
        sim.set_horizon(cfg.horizon);

        let mut peers: Vec<Option<PeerState>> = Vec::with_capacity(cfg.n_peers);
        for p in 0..cfg.n_peers {
            let data = generate_peer_data(
                sim.rng(),
                p as u32,
                &bk,
                &templates,
                cfg.match_fraction,
                cfg.records_per_peer,
            );
            peers.push(Some(PeerState::new(data)));
        }

        let mut ledger = MessageLedger::new();
        let mut domain = DomainCore::new(None, (0..cfg.n_peers as u32).map(NodeId).collect());
        domain.enroll_all(&mut peers, &mut ledger);

        let mut this = Self {
            cfg,
            bk,
            templates,
            reformulated,
            sim,
            peers,
            domains: vec![domain],
            domain_of: vec![Some(0); cfg.n_peers],
            sp_index: BTreeMap::new(),
            ledger,
            outcomes: Vec::new(),
            inter_outcomes: Vec::new(),
            net: None,
            topo: None,
            caches: Vec::new(),
            cache_hits: 0,
            target: LookupTarget::Total,
        };
        this.schedule_drift_all();
        this.schedule_churn();
        for (template, at) in query_sample_times(&this.cfg, this.templates.len()) {
            this.sim
                .schedule_at(at, KernelEvent::LocalQuery { template });
        }
        Ok(this)
    }

    /// Builds the networked multi-domain system: topology → SP election
    /// → domain construction → per-peer data + local summaries →
    /// per-domain global summaries → SP long-range links. With
    /// `dynamics`, additionally schedules drift, churn and sampled
    /// inter-domain lookups so maintenance and routing interleave in
    /// virtual time; without it the system is frozen at t = 0 (the
    /// static [`crate::system::MultiDomainSystem`] view).
    pub fn networked(
        cfg: SimConfig,
        domain_target: usize,
        dynamics: Option<LookupTarget>,
    ) -> Result<Self, P2pError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let topo_cfg = TopologyConfig {
            nodes: cfg.n_peers,
            m: cfg.topology_m,
            ..Default::default()
        };
        let mut net = Network::new(Graph::barabasi_albert(&topo_cfg, &mut rng));

        let sp_count = (cfg.n_peers / domain_target.max(2)).max(1);
        let superpeers = elect_superpeers(&net, sp_count);
        let topo = construct_domains(&mut net, &superpeers, cfg.sumpeer_ttl);

        let (bk, templates, reformulated) = build_workload(&cfg)?;

        let mut peers: Vec<Option<PeerState>> = vec![None; cfg.n_peers];
        for (i, assignment) in topo.assignment.iter().enumerate() {
            if assignment.is_some() {
                peers[i] = Some(PeerState::new(generate_peer_data(
                    &mut rng,
                    i as u32,
                    &bk,
                    &templates,
                    cfg.match_fraction,
                    cfg.records_per_peer,
                )));
            }
        }

        let mut ledger = MessageLedger::new();
        let mut domains = Vec::with_capacity(superpeers.len());
        let mut sp_index = BTreeMap::new();
        let mut domain_of: Vec<Option<usize>> = vec![None; cfg.n_peers];
        for &sp in &superpeers {
            let members = topo.members(sp);
            for &m in &members {
                domain_of[m.index()] = Some(domains.len());
            }
            sp_index.insert(sp, domains.len());
            let mut core = DomainCore::new(Some(sp), members);
            core.enroll_all(&mut peers, &mut ledger);
            domains.push(core);
        }

        // Long-range SP links, sampled *without replacement* from a
        // shuffled candidate list so small SP sets still receive their
        // full k links, deterministically from the seeded RNG.
        let k = cfg.interdomain_k.round() as usize;
        let sp_ids: Vec<NodeId> = superpeers.clone();
        for core in &mut domains {
            let sp = core.sp.expect("networked domains have an SP");
            let mut candidates: Vec<NodeId> = sp_ids.iter().copied().filter(|&o| o != sp).collect();
            candidates.shuffle(&mut rng);
            candidates.truncate(k);
            candidates.sort_unstable_by_key(|n| n.0);
            core.long_links = candidates;
        }

        let caches = (0..cfg.n_peers).map(|_| QueryCache::new(8)).collect();
        // The event loop's RNG is decorrelated from the build RNG (both
        // derive from cfg.seed, so an XOR constant keeps their streams
        // distinct while staying reproducible).
        let mut sim = Simulator::<KernelEvent>::new(cfg.seed ^ 0x5D1F_77A3_9C24_E8B1);
        sim.set_horizon(cfg.horizon);

        let mut this = Self {
            cfg,
            bk,
            templates,
            reformulated,
            sim,
            peers,
            domains,
            domain_of,
            sp_index,
            ledger,
            outcomes: Vec::new(),
            inter_outcomes: Vec::new(),
            net: Some(net),
            topo: Some(topo),
            caches,
            cache_hits: 0,
            target: dynamics.unwrap_or(LookupTarget::Total),
        };

        if dynamics.is_some() {
            this.schedule_drift_all();
            this.schedule_churn();
            this.schedule_inter_queries();
        }
        Ok(this)
    }

    /// Schedules the first drift expiry of every (assigned) peer.
    fn schedule_drift_all(&mut self) {
        for p in 0..self.cfg.n_peers {
            if self.peers[p].is_some() {
                let dt = self.cfg.lifetime.sample(self.sim.rng());
                self.sim
                    .schedule_in(dt, KernelEvent::Drift(NodeId(p as u32)));
            }
        }
    }

    /// Schedules the churn session stream for every (assigned) peer.
    fn schedule_churn(&mut self) {
        let churn_cfg = ChurnConfig {
            lifetime: self.cfg.lifetime,
            mean_downtime_s: self.cfg.mean_downtime_s,
            failure_fraction: self.cfg.failure_fraction,
        };
        let partners: Vec<NodeId> = (0..self.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| self.peers[p.index()].is_some())
            .collect();
        let schedule =
            SessionSchedule::generate_for(&partners, self.cfg.horizon, &churn_cfg, self.sim.rng());
        for &(t, ev) in schedule.events() {
            self.sim.schedule_at(t, KernelEvent::Session(ev));
        }
    }

    /// Samples `query_count` inter-domain lookups across (10%..100%) of
    /// the horizon, from random assigned origins.
    fn schedule_inter_queries(&mut self) {
        let partners: Vec<NodeId> = (0..self.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| self.peers[p.index()].is_some())
            .collect();
        if partners.is_empty() {
            return;
        }
        for (template, at) in query_sample_times(&self.cfg, self.templates.len()) {
            let origin = partners[self.sim.rng().gen_range(0..partners.len())];
            self.sim
                .schedule_at(at, KernelEvent::InterQuery { origin, template });
        }
    }

    /// Processes one event.
    fn handle(&mut self, ev: KernelEvent) {
        match ev {
            KernelEvent::Drift(p) => {
                let idx = p.index();
                let up = self.peers[idx].as_ref().is_some_and(|s| s.up);
                if up {
                    // The data drifted: regenerate the database and its
                    // local summary, then push the stale flag.
                    let data = generate_peer_data(
                        self.sim.rng(),
                        p.0,
                        &self.bk,
                        &self.templates,
                        self.cfg.match_fraction,
                        self.cfg.records_per_peer,
                    );
                    self.peers[idx].as_mut().expect("up peer has state").data = data;
                    if let Some(d) = self.domain_of[idx] {
                        self.domains[d].on_drift(
                            p,
                            self.cfg.alpha,
                            &mut self.peers,
                            &mut self.ledger,
                        );
                    }
                    let dt = self.cfg.lifetime.sample(self.sim.rng());
                    self.sim.schedule_in(dt, KernelEvent::Drift(p));
                } else if let Some(st) = self.peers[idx].as_mut() {
                    // While down: drift pauses; rejoin restarts it.
                    st.drift_scheduled = false;
                }
            }
            KernelEvent::Session(SessionEvent::Leave(p)) => {
                let idx = p.index();
                if self.peers[idx].as_ref().is_some_and(|s| s.up) {
                    self.peers[idx].as_mut().expect("checked").up = false;
                    if let Some(net) = self.net.as_mut() {
                        net.take_down(p);
                    }
                    if let Some(d) = self.domain_of[idx] {
                        self.domains[d].on_leave(
                            p,
                            self.cfg.alpha,
                            &mut self.peers,
                            &mut self.ledger,
                        );
                    }
                }
            }
            KernelEvent::Session(SessionEvent::Fail(p)) => {
                // Silent: no message, CL unchanged — the GS now carries
                // descriptions of unavailable data until reconciliation.
                if let Some(st) = self.peers[p.index()].as_mut() {
                    st.up = false;
                    if let Some(net) = self.net.as_mut() {
                        net.take_down(p);
                    }
                }
            }
            KernelEvent::Session(SessionEvent::Join(p)) => {
                let idx = p.index();
                if self.peers[idx].as_ref().is_some_and(|s| !s.up) {
                    self.peers[idx].as_mut().expect("checked").up = true;
                    if let Some(net) = self.net.as_mut() {
                        net.bring_up(p);
                    }
                    if let Some(d) = self.domain_of[idx] {
                        self.domains[d].on_join(
                            p,
                            self.cfg.alpha,
                            &mut self.peers,
                            &mut self.ledger,
                        );
                    }
                    let st = self.peers[idx].as_mut().expect("checked");
                    if !st.drift_scheduled {
                        st.drift_scheduled = true;
                        let dt = self.cfg.lifetime.sample(self.sim.rng());
                        self.sim.schedule_in(dt, KernelEvent::Drift(p));
                    }
                }
            }
            KernelEvent::LocalQuery { template } => {
                let prop = &self.reformulated[template].proposition;
                let outcome =
                    self.domains[0].route_local(prop, self.cfg.policy, &self.peers, template);
                self.ledger.count(
                    &Message::Query { template },
                    1 + outcome.visited.len() as u64,
                );
                self.ledger
                    .count(&Message::QueryHit { results: 1 }, outcome.answered as u64);
                self.outcomes.push(outcome);
            }
            KernelEvent::InterQuery { origin, template } => {
                // Only live peers pose queries; a down origin's sample is
                // simply skipped (nobody is there to ask).
                if self.peers[origin.index()].as_ref().is_some_and(|s| s.up) {
                    let target = self.target;
                    let out = self.route_live(origin, template, target);
                    self.inter_outcomes.push((self.sim.now(), out));
                }
            }
        }
    }

    /// Runs every scheduled event to the horizon.
    pub fn run_to_horizon(&mut self) {
        while let Some((_, ev)) = self.sim.next_event() {
            self.handle(ev);
        }
    }

    /// Processes events due at or before `t`, then advances the clock to
    /// `t` — the probe-in-the-middle entry the dynamic experiments use.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((_, ev)) = self.sim.next_event_before(t) {
            self.handle(ev);
        }
        self.sim.fast_forward(t);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Ground truth: all live peers currently matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|s| s.up && s.data.matches(template)))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Cache hits observed during inter-domain flooding so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Queries one domain's *live* GS/CL under the configured routing
    /// policy: (answering peers, stale answers, messages).
    fn query_domain(&self, d: usize, template: usize) -> (Vec<NodeId>, usize, u64) {
        let dom = &self.domains[d];
        let prop = &self.reformulated[template].proposition;
        // Only current partners are contacted: the CL is the membership
        // authority even when the GS still carries departed peers' cells.
        let pq: Vec<NodeId> = relevant_sources(&dom.gs, prop)
            .into_iter()
            .map(|s| NodeId(s.0))
            .filter(|p| dom.cl.contains(*p))
            .collect();
        let visited: Vec<NodeId> = match self.cfg.policy {
            RoutingPolicy::All => pq,
            RoutingPolicy::FreshOnly => pq
                .into_iter()
                .filter(|&p| {
                    dom.cl
                        .freshness(p)
                        .map(|f| !f.as_stale_bit())
                        .unwrap_or(false)
                })
                .collect(),
            RoutingPolicy::Extended => {
                let mut v = pq;
                v.extend(dom.cl.old_partners());
                v.sort_unstable_by_key(|p| p.0);
                v.dedup();
                v
            }
        };
        let mut answering = Vec::new();
        let mut stale = 0usize;
        for p in &visited {
            let live_match = self.peers[p.index()]
                .as_ref()
                .is_some_and(|s| s.up && s.data.matches(template));
            if live_match {
                answering.push(*p);
            } else {
                stale += 1;
            }
        }
        // 1 query to the SP happens at the caller; here: forwards + hits.
        let messages = visited.len() as u64 + answering.len() as u64;
        (answering, stale, messages)
    }

    /// Routes a query posed at `origin` through the network (§5.2.2),
    /// against the *current* per-domain GS/CL state — under churn this is
    /// where stale summaries become measurable network-wide.
    pub fn route_live(
        &mut self,
        origin: NodeId,
        template: usize,
        target: LookupTarget,
    ) -> MultiDomainOutcome {
        let results_total = self.true_matches(template).len();
        let need = match target {
            LookupTarget::Partial(ct) => ct,
            LookupTarget::Total => usize::MAX,
        };

        let Some(home) = self.domain_of.get(origin.index()).copied().flatten() else {
            return MultiDomainOutcome::empty(results_total);
        };
        // A down origin cannot pose a query (the scheduled InterQuery
        // path skips it for the same reason); probes get the same rule.
        if !self.peers[origin.index()].as_ref().is_some_and(|s| s.up) {
            return MultiDomainOutcome::empty(results_total);
        }

        let mut messages: u64 = 0;
        let mut stale_answers = 0usize;
        let mut answered: BTreeSet<NodeId> = BTreeSet::new();
        let mut visited_domains: BTreeSet<usize> = BTreeSet::new();
        // Domains to process next: discovered through flooding/long links.
        let mut frontier: VecDeque<usize> = VecDeque::new();
        frontier.push_back(home);

        'domains: while let Some(d) = frontier.pop_front() {
            if !visited_domains.insert(d) {
                continue;
            }
            messages += 1; // the query message to this domain's SP
            let (answering, stale, msgs) = self.query_domain(d, template);
            messages += msgs;
            stale_answers += stale;
            answered.extend(answering.iter().copied());
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Query, 1 + msgs);
            }
            // Group locality (§5.2.2): the originator and the answering
            // peers remember who answered this template. The originator
            // accumulates everyone seen so far — a later domain with no
            // answerers must not wipe the entry it already earned.
            if !answered.is_empty() {
                self.caches[origin.index()].insert(template, answered.iter().copied().collect());
            }
            for &p in &answering {
                self.caches[p.index()].insert(template, answering.clone());
            }
            if answered.len() >= need {
                break;
            }

            // §5.2.2: flood requests to the answering peers and the
            // originator, who forward the query outside their domain with
            // a limited TTL; plus the SP's long-range links.
            let mut flooders: Vec<NodeId> = answering;
            if self.domain_of[origin.index()] == Some(d) {
                flooders.push(origin);
            }
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Flood, flooders.len() as u64);
            }
            messages += flooders.len() as u64;
            for f in flooders {
                let reach = self
                    .net
                    .as_ref()
                    .expect("networked kernel")
                    .flood_reach(f, self.cfg.flood_ttl);
                for (reached, _) in reach {
                    messages += 1; // each forward is a message
                                   // A reached neighbor with a cached answer for this
                                   // template replies immediately — "its neighbors may
                                   // have cached answers to similar queries".
                    if let Some(hit) = self.caches[reached.index()].lookup(template) {
                        let cached = hit.answering.clone();
                        self.cache_hits += 1;
                        messages += 1; // the cache-holder's reply
                        for q in cached {
                            // Validate against ground truth: stale cache
                            // entries (peer gone or drifted) add nothing.
                            let valid = self.peers[q.index()]
                                .as_ref()
                                .is_some_and(|s| s.up && s.data.matches(template));
                            if valid {
                                answered.insert(q);
                            }
                        }
                        if answered.len() >= need {
                            break 'domains;
                        }
                    }
                    if let Some(other) = self.domain_of[reached.index()] {
                        if !visited_domains.contains(&other) {
                            frontier.push_back(other);
                        }
                    }
                }
            }
            let links = self.domains[d].long_links.clone();
            for sp in links {
                messages += 1;
                let other = self.sp_index[&sp];
                if !visited_domains.contains(&other) {
                    frontier.push_back(other);
                }
            }
        }

        MultiDomainOutcome {
            results: answered.len(),
            results_total,
            domains_visited: visited_domains.len(),
            messages,
            satisfied: answered.len() >= need.min(results_total),
            stale_answers,
        }
    }

    /// Builds the single-domain report after a completed run.
    pub(crate) fn single_report(&self) -> DomainReport {
        let dom = &self.domains[0];
        let (approx_live, approx_with_departed) = self.approximate_coverage();
        let mut report = DomainReport::from_run(
            &self.cfg,
            &self.outcomes,
            self.ledger.counters(),
            self.ledger.byte_counters(),
            dom.reconciliations,
            dom.gs_bytes_last,
            dom.gs.leaf_count(),
            dom.gs.live_node_count(),
        );
        report.approx_weight_live = approx_live;
        report.approx_weight_with_departed = approx_with_departed;
        report
    }

    /// §4.3's two alternatives for departed peers' descriptions, made
    /// measurable: the approximate-answer weight per template from the
    /// current GS (alternative 2 — departed data expired, the paper's
    /// and this simulation's routing choice) versus a GS that *keeps*
    /// the last known summaries of down peers (alternative 1 — richer
    /// approximate answers at the price of describing unavailable data).
    fn approximate_coverage(&self) -> (Vec<f64>, Vec<f64>) {
        let gs = &self.domains[0].gs;
        let weight_of = |gs: &saintetiq::hierarchy::SummaryTree| -> Vec<f64> {
            self.reformulated
                .iter()
                .map(|sq| {
                    saintetiq::query::approx::approximate_answer(gs, sq)
                        .iter()
                        .map(|a| a.weight)
                        .sum()
                })
                .collect()
        };
        let live = weight_of(gs);
        let mut with_departed = gs.clone();
        let ecfg = EngineConfig::default();
        for peer in self.peers.iter().flatten() {
            if !peer.up && peer.merged_bits == 0 {
                // Down and absent from the GS: its last summary is the
                // description alternative 1 would have retained.
                let tree =
                    wire::decode(&peer.data.summary).expect("locally encoded summaries decode");
                saintetiq::merge::merge_into(&mut with_departed, &tree, &ecfg)
                    .expect("same CBK everywhere");
            }
        }
        (live, weight_of(&with_departed))
    }

    /// Builds the multi-domain report after a completed dynamic run.
    pub(crate) fn multi_report(&self) -> MultiDomainReport {
        let reconciliations = self.domains.iter().map(|d| d.reconciliations).sum();
        MultiDomainReport::from_run(
            &self.cfg,
            self.domains.len(),
            &self.inter_outcomes,
            &self.ledger,
            reconciliations,
            self.cache_hits,
        )
    }

    /// Forces a reconciliation round in every domain (used by probes and
    /// SP-initiated maintenance scenarios).
    pub fn reconcile_all(&mut self) {
        for d in 0..self.domains.len() {
            let (domains, peers, ledger) = (&mut self.domains, &mut self.peers, &mut self.ledger);
            domains[d].reconcile(peers, ledger);
        }
    }

    /// Mean stale fraction across domains' cooperation lists.
    pub fn mean_stale_fraction(&self) -> f64 {
        if self.domains.is_empty() {
            return 0.0;
        }
        self.domains
            .iter()
            .map(|d| d.cl.stale_fraction())
            .sum::<f64>()
            / self.domains.len() as f64
    }

    /// Fraction of assigned peers currently live.
    pub fn live_fraction(&self) -> f64 {
        let assigned = self.peers.iter().flatten().count();
        if assigned == 0 {
            return 0.0;
        }
        let live = self.peers.iter().flatten().filter(|s| s.up).count();
        live as f64 / assigned as f64
    }
}

/// The dynamic multi-domain simulation: churn, drift and reconciliation
/// interleaved with inter-domain lookups — the network-scale experiment
/// the static [`crate::system::MultiDomainSystem`] cannot express.
pub struct MultiDomainSim {
    kernel: SimKernel,
}

impl MultiDomainSim {
    /// Builds the system and schedules its full dynamic event load.
    pub fn new(
        cfg: SimConfig,
        domain_target: usize,
        target: LookupTarget,
    ) -> Result<Self, P2pError> {
        Ok(Self {
            kernel: SimKernel::networked(cfg, domain_target, Some(target))?,
        })
    }

    /// Runs to the horizon and reports.
    pub fn run(mut self) -> MultiDomainReport {
        self.kernel.run_to_horizon();
        self.kernel.multi_report()
    }

    /// Processes events up to virtual time `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.kernel.run_until(t);
    }

    /// Routes one lookup right now, against the current (possibly stale)
    /// per-domain summaries.
    pub fn route_now(
        &mut self,
        origin: NodeId,
        template: usize,
        target: LookupTarget,
    ) -> MultiDomainOutcome {
        self.kernel.route_live(origin, template, target)
    }

    /// Forces a reconciliation round in every domain.
    pub fn reconcile_all(&mut self) {
        self.kernel.reconcile_all();
    }

    /// The domain construction map.
    pub fn domains(&self) -> &Domains {
        self.kernel
            .topo
            .as_ref()
            .expect("networked kernel has a topology")
    }

    /// Live assigned partners (candidate query origins).
    pub fn live_origins(&self) -> Vec<NodeId> {
        (0..self.kernel.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| {
                self.kernel.peers[p.index()].as_ref().is_some_and(|s| s.up)
                    && self.kernel.domain_of[p.index()].is_some()
            })
            .collect()
    }

    /// Ground truth: live peers matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.kernel.true_matches(template)
    }

    /// Mean CL stale fraction across domains.
    pub fn mean_stale_fraction(&self) -> f64 {
        self.kernel.mean_stale_fraction()
    }

    /// Fraction of assigned peers currently live.
    pub fn live_fraction(&self) -> f64 {
        self.kernel.live_fraction()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.kernel.template_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, seed: u64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, 0.3);
        c.horizon = SimTime::from_hours(4);
        c.query_count = 30;
        c.records_per_peer = 10;
        c.seed = seed;
        c
    }

    #[test]
    fn single_domain_kernel_matches_domain_sim_shape() {
        let mut k = SimKernel::single_domain(cfg(24, 1)).unwrap();
        k.run_to_horizon();
        let report = k.single_report();
        assert_eq!(report.queries, 30);
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn networked_static_build_has_live_domains() {
        let k = SimKernel::networked(cfg(200, 2), 30, None).unwrap();
        assert!(k.domains.len() >= 4);
        for dom in &k.domains {
            assert_eq!(dom.cl.len(), dom.members.len());
            assert_eq!(dom.cl.stale_fraction(), 0.0);
        }
        assert_eq!(k.live_fraction(), 1.0);
    }

    #[test]
    fn long_links_are_distinct_and_filled() {
        let k = SimKernel::networked(cfg(300, 3), 30, None).unwrap();
        let k_target = k.cfg.interdomain_k.round() as usize;
        let sp_count = k.domains.len();
        for dom in &k.domains {
            let links = &dom.long_links;
            let mut dedup = links.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), links.len(), "no duplicate links");
            assert!(!links.contains(&dom.sp.unwrap()), "no self-links");
            assert_eq!(
                links.len(),
                k_target.min(sp_count - 1),
                "k links even on small SP sets"
            );
        }
    }

    #[test]
    fn dynamic_run_produces_outcomes_under_churn() {
        let report = MultiDomainSim::new(cfg(150, 4), 25, LookupTarget::Total)
            .unwrap()
            .run();
        assert!(report.queries > 0, "live origins answered");
        assert!(report.mean_recall > 0.0);
        assert!(report.mean_recall <= 1.0 + 1e-12);
        assert!(
            report.push_messages > 0,
            "drift and leaves push under churn"
        );
    }

    #[test]
    fn probe_reconcile_restores_freshness() {
        let mut sim = MultiDomainSim::new(cfg(120, 5), 20, LookupTarget::Total).unwrap();
        sim.advance_to(SimTime::from_hours(2));
        sim.reconcile_all();
        assert_eq!(sim.mean_stale_fraction(), 0.0);
    }

    #[test]
    fn down_origin_probe_yields_empty_outcome() {
        let mut sim = MultiDomainSim::new(cfg(150, 7), 25, LookupTarget::Total).unwrap();
        sim.advance_to(SimTime::from_hours(2));
        let live = sim.live_origins();
        let down = sim
            .domains()
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .find(|p| !live.contains(p));
        let down = down.expect("two hours of churn took someone down");
        let out = sim.route_now(down, 0, LookupTarget::Total);
        assert_eq!(out.messages, 0, "nobody is there to ask");
        assert!(!out.satisfied);
    }

    #[test]
    fn deterministic_dynamic_runs() {
        let a = MultiDomainSim::new(cfg(100, 6), 20, LookupTarget::Partial(5))
            .unwrap()
            .run();
        let b = MultiDomainSim::new(cfg(100, 6), 20, LookupTarget::Partial(5))
            .unwrap()
            .run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.push_messages, b.push_messages);
        assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    }
}
