//! The unified event-driven simulation kernel and its message plane.
//!
//! One `p2psim::Simulator` event loop drives *every* process of the
//! paper in a single virtual clock, for one domain or for a whole
//! multi-domain network:
//!
//! * **summary drift** — per-peer lifetimes from Table 3's lognormal;
//!   on expiry the peer's database is regenerated and a `push` flags its
//!   cooperation-list entry;
//! * **churn** — session schedules with graceful leaves (`v = 2`
//!   pushes) and silent failures (GS poison until the next pull), plus —
//!   when [`crate::config::SimConfig::sp_lifetime`] is set — summary-peer
//!   departures that dissolve a domain mid-run and re-home its partners
//!   (§4.3, [`crate::construction::handle_sp_departure`]);
//! * **reconciliation** — per-domain α-gated token rings
//!   ([`DomainCore::maybe_reconcile`]). Rings are *incremental*: the
//!   token only visits the stale subset of the cooperation list
//!   (`RingConversation::stale_route`); fresh members' contributions
//!   stay in the domain's [`saintetiq::delta::GsAccumulator`] untouched
//!   and departed members are expired in O(1), so per-round merge work
//!   scales with how much actually changed, not with membership (see
//!   the [`crate::peerstate`] module docs for the full design and the
//!   byte-identical full-rebuild oracle);
//! * **queries** — intra-domain workload samples
//!   ([`KernelEvent::LocalQuery`]) and, in networked mode, inter-domain
//!   lookups ([`KernelEvent::InterQuery`]) routed against the *live*
//!   per-domain GS/CL state via §5.2.2's flooding + long-link protocol;
//! * **α control** — every α-gated decision reads the domain's
//!   *effective* threshold from the maintenance control plane
//!   ([`crate::control`]). The default fixed policy never moves it and
//!   schedules nothing; under
//!   [`crate::control::ControlPolicy::Adaptive`] a recurring
//!   [`KernelEvent::ControlTick`] feeds each live domain's measured
//!   stale-answer fraction and pull cost into one bounded proportional
//!   step per epoch.
//!
//! ## The message plane
//!
//! Under [`crate::config::DeliveryMode::Latency`] no protocol message
//! applies synchronously: every push, `localsum`, reconciliation token,
//! query, query-hit, flood request and `release` is sent as a
//! [`KernelEvent::Deliver`] scheduled at `now + transit`, where transit
//! is the topology link latency (partner↔SP hops use the construction
//! broadcast-tree latency, unknown hops the configured default) plus
//! the per-class serialization cost of [`Message::wire_bytes`] at the
//! configured bandwidth. Effects happen at *delivery* time:
//!
//! * a reconciliation ring is a conversation of token deliveries
//!   (`RingConversation`): each live member snapshots its summary into
//!   the token; a member that churned out mid-ring silently drops the
//!   token and the SP's watchdog completes the pull with what was
//!   gathered (missed live members keep their stale flags, re-arming α);
//! * an inter-domain lookup is a conversation of query / flood / hit
//!   deliveries (`LookupConversation`): per-peer answers are
//!   re-validated on arrival, so peers that churn out while their
//!   answer is in flight surface as stale answers, and the recorded
//!   [`MultiDomainOutcome::time_to_answer_s`] is the genuine virtual
//!   time between posing the query and meeting (or abandoning) its
//!   target.
//!
//! [`crate::config::DeliveryMode::Instantaneous`] (the default) is the
//! escape hatch: the pre-latency synchronous semantics, byte-identical
//! to the Figure 4–7 pipelines. Both modes are deterministic under a
//! fixed seed — the message plane draws no randomness.
//!
//! [`crate::domain::DomainSim`] and [`crate::system::MultiDomainSystem`]
//! are thin facades over this kernel; [`MultiDomainSim`] is the dynamic
//! entry point the churn-under-routing experiments use. Probe entry
//! points ([`SimKernel::route_live`], [`MultiDomainSim::route_now`])
//! stay synchronous oracles in both modes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fuzzy::bk::BackgroundKnowledge;
use p2psim::churn::{ChurnConfig, SessionEvent, SessionSchedule};
use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::sim::Simulator;
use p2psim::time::SimTime;
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saintetiq::engine::EngineConfig;
use saintetiq::query::proposition::{reformulate, SummaryQuery};
use saintetiq::query::relevant_sources;
use saintetiq::wire;

use crate::cache::QueryCache;
use crate::config::{LatencyConfig, SimConfig};
use crate::construction::{
    construct_domains, dissolve_domain, elect_replacement_sp, elect_superpeers,
    handle_sp_departure, rebirth_broadcast, Domains, ElectionPolicy,
};
use crate::control::AlphaController;
use crate::error::P2pError;
use crate::freshness::Freshness;
use crate::messages::Message;
use crate::metrics::{DomainReport, MultiDomainReport};
use crate::peerstate::{empty_accumulator, DomainCore, MessageLedger, PeerState, SummarySnapshot};
use crate::routing::{
    LookupConversation, QueryOutcome, RebirthConversation, RingConversation, RoutingPolicy,
};
use crate::workload::{generate_peer_data, make_templates, QueryTemplate, ZipfSampler};

/// Sentinel id for the implicit summary peer of the single-domain
/// simulation (it has no slot in the peer vector or the topology).
const IMPLICIT_SP: NodeId = NodeId(u32::MAX);

/// How many results a query needs (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupTarget {
    /// `C_t` result tuples suffice.
    Partial(usize),
    /// Every result in the network is wanted.
    Total,
}

/// Outcome of one multi-domain query.
#[derive(Debug, Clone)]
pub struct MultiDomainOutcome {
    /// Result tuples gathered (one per answering peer — the paper's
    /// high-selectivity assumption).
    pub results: usize,
    /// Ground-truth result count network-wide (live matching peers).
    pub results_total: usize,
    /// Domains whose GS was queried.
    pub domains_visited: usize,
    /// Total messages (intra-domain + flooding + responses).
    pub messages: u64,
    /// Whether the lookup target was met.
    pub satisfied: bool,
    /// Stale answers: peers the (possibly outdated) global summaries
    /// selected that turned out to be down or no longer matching.
    pub stale_answers: usize,
    /// Validated answers the global summaries selected — the
    /// summary-routing successes `stale_answers` is the failure side
    /// of. Excludes results recovered through §5.2.2 answer caches,
    /// which no summary vouched for; `stale / (stale + summary)` is
    /// therefore the stale-answer fraction of summary routing itself,
    /// the signal the adaptive control plane steers.
    pub summary_results: usize,
    /// Virtual seconds between posing the query and completing the
    /// lookup. Strictly positive under the latency message plane; 0.0
    /// in instantaneous mode and for synchronous probes.
    pub time_to_answer_s: f64,
}

impl MultiDomainOutcome {
    /// Network-wide recall of the query.
    pub fn recall(&self) -> f64 {
        if self.results_total == 0 {
            1.0
        } else {
            self.results as f64 / self.results_total as f64
        }
    }

    /// Network-wide false negatives: live matching peers the lookup
    /// never reached (stale summaries, unvisited domains, or an early
    /// partial-lookup stop).
    pub fn false_negatives(&self) -> usize {
        self.results_total.saturating_sub(self.results)
    }

    fn empty(results_total: usize) -> Self {
        Self {
            results: 0,
            results_total,
            domains_visited: 0,
            messages: 0,
            satisfied: false,
            stale_answers: 0,
            summary_results: 0,
            time_to_answer_s: 0.0,
        }
    }
}

/// Simulation events of the unified kernel.
#[derive(Debug, Clone)]
pub enum KernelEvent {
    /// A partner's local summary lifetime expired (data drifted).
    Drift(NodeId),
    /// A churn transition.
    Session(SessionEvent),
    /// An intra-domain workload query (single-domain mode).
    LocalQuery {
        /// Workload template index.
        template: usize,
    },
    /// An inter-domain lookup posed at a partner peer (networked mode).
    InterQuery {
        /// The originating partner.
        origin: NodeId,
        /// Workload template index.
        template: usize,
    },
    /// Latency mode: a protocol message reaches its destination — all
    /// effects of the message happen now, not at send time.
    Deliver {
        /// Sender (for query hits: the peer the answer is about).
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: Message,
        /// Conversation id (0 for fire-and-forget messages).
        conv: u64,
        /// Virtual send time (delivery latency = now − sent_at).
        sent_at: SimTime,
    },
    /// Latency mode: watchdog of a reconciliation ring — if the token
    /// was dropped at a churned-out member, the SP completes the pull
    /// with the snapshots gathered so far.
    RingTimeout {
        /// The ring conversation.
        conv: u64,
    },
    /// Latency mode: watchdog of an inter-domain lookup — records the
    /// outcome with whatever answers arrived.
    LookupTimeout {
        /// The lookup conversation.
        conv: u64,
    },
    /// A summary peer's session ends (§4.3): the domain dissolves and
    /// its partners re-home. Scheduled only when
    /// [`crate::config::SimConfig::sp_lifetime`] is set.
    SpDeparture {
        /// The departing summary peer.
        sp: NodeId,
    },
    /// Rebirth, step 1 (§4.3 completed): a dissolved domain elects a
    /// replacement SP from its live hub candidates —
    /// [`crate::construction::ElectionPolicy::LatencyAware`] on the
    /// message plane, degree order otherwise. Scheduled only when
    /// [`crate::config::SimConfig::rebirth`] is set, after the release
    /// transit (graceful departure) or the failure-detection timeout.
    SpElection {
        /// The dissolved domain slot.
        domain: usize,
    },
    /// Rebirth, step 2: the elected SP takes the domain over — the
    /// slot revives seeded from the retained member descriptions, the
    /// orphans re-home to the newborn SP, and (on the message plane)
    /// their `localsum` confirmations start a
    /// `routing::RebirthConversation`.
    SpTakeover {
        /// The reborn domain slot.
        domain: usize,
        /// The election winner.
        sp: NodeId,
    },
    /// Latency mode: watchdog of a rebirth hand-over — completes the
    /// conversation with whatever confirmations arrived.
    RebirthTimeout {
        /// The rebirth conversation.
        conv: u64,
    },
    /// One control epoch of the maintenance control plane
    /// ([`crate::control`]): every live domain's controller folds the
    /// epoch's measured feedback into its effective α. Scheduled
    /// recurring only under [`crate::control::ControlPolicy::Adaptive`],
    /// so fixed-α runs keep their event streams byte-identical. Draws
    /// no randomness.
    ControlTick,
}

/// The unified simulation state: peers + domains + (optionally) the
/// physical network, driven by one event loop.
pub struct SimKernel {
    pub(crate) cfg: SimConfig,
    bk: BackgroundKnowledge,
    templates: Vec<QueryTemplate>,
    reformulated: Vec<SummaryQuery>,
    sim: Simulator<KernelEvent>,
    pub(crate) peers: Vec<Option<PeerState>>,
    pub(crate) domains: Vec<DomainCore>,
    domain_of: Vec<Option<usize>>,
    sp_index: BTreeMap<NodeId, usize>,
    pub(crate) ledger: MessageLedger,
    outcomes: Vec<QueryOutcome>,
    inter_outcomes: Vec<(SimTime, MultiDomainOutcome)>,
    pub(crate) net: Option<Network>,
    pub(crate) topo: Option<Domains>,
    caches: Vec<QueryCache>,
    cache_hits: u64,
    target: LookupTarget,
    /// The latency plane, when enabled (`cfg.latency()` cached).
    lat: Option<LatencyConfig>,
    /// Conversation id source (0 is reserved for fire-and-forget).
    next_conv: u64,
    rings: BTreeMap<u64, RingConversation>,
    /// Active ring conversation per domain (at most one at a time).
    ring_of_domain: Vec<Option<u64>>,
    lookups: BTreeMap<u64, LookupConversation>,
    /// Messages currently in flight (latency mode).
    in_flight: u64,
    /// High-water mark of `in_flight`.
    peak_in_flight: u64,
    /// Domain-state errors swallowed by the event loop (impossible for
    /// well-formed configurations; counted instead of panicking).
    domain_errors: u64,
    /// The first such error, kept for diagnostics.
    first_error: Option<P2pError>,
    /// The maintenance control plane: one controller per domain slot
    /// holding that domain's effective α (fixed, or fed back each
    /// control epoch).
    ctl: AlphaController,
    /// Dissolved domains awaiting a rebirth election, keyed by slot:
    /// the retained membership, accumulator and CL flags the reborn
    /// domain is seeded from ([`crate::config::SimConfig::rebirth`]).
    pending_rebirths: BTreeMap<usize, RebirthSeed>,
    /// In-flight rebirth hand-over conversations (latency mode).
    rebirth_convs: BTreeMap<u64, RebirthConversation>,
    /// Summary peers that were promoted out of the partner pool by a
    /// rebirth. When such an SP's own session ends, its node returns
    /// to the network as a regular (down) peer and its next scheduled
    /// session join brings it back with a fresh database — without
    /// this the data population would drain by one peer per rebirth
    /// and no long horizon could be stationary.
    promoted_sps: BTreeSet<NodeId>,
    /// Completed SP rebirths over the run.
    rebirths: u64,
    /// `(virtual time, live domains)` samples: the initial point plus
    /// one per dissolution and per rebirth — the domain-count
    /// trajectory `BENCH_rebirth.json` plots. Recorded only when SP
    /// churn is on (empty otherwise).
    domain_trajectory: Vec<(SimTime, usize)>,
}

/// What a dissolved domain retains for its rebirth (§4.3 completed):
/// the membership at dissolution time, the accumulator of member
/// descriptions (descriptions persist until refreshed or expired —
/// §4.3; the newborn SP is seeded from them so its first GS build is a
/// delta hand-over), and the CL freshness flags so only the
/// already-stale subset needs the first pull.
struct RebirthSeed {
    members: Vec<NodeId>,
    acc: saintetiq::delta::GsAccumulator,
    flags: BTreeMap<NodeId, Freshness>,
    /// Set when an election ran and found nobody up: only then does a
    /// former member's rejoin re-trigger the election. Before that,
    /// the regularly scheduled [`KernelEvent::SpElection`] (which
    /// models the release-transit / failure-detection delay) is the
    /// one that must run first.
    stalled: bool,
}

/// The medical workload every kernel mode shares: the CBK plus the
/// query templates reformulated against it.
fn build_workload(
    cfg: &SimConfig,
) -> Result<(BackgroundKnowledge, Vec<QueryTemplate>, Vec<SummaryQuery>), P2pError> {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(cfg.template_count);
    let reformulated: Vec<SummaryQuery> = templates
        .iter()
        .map(|t| reformulate(&t.query, &bk))
        .collect::<Result<_, _>>()?;
    Ok((bk, templates, reformulated))
}

/// Query sample times: `(template, at)` pairs spread across
/// (10%..100%) of the horizon so the first samples already see
/// steady-state maintenance.
fn query_sample_times(cfg: &SimConfig, template_count: usize) -> Vec<(usize, SimTime)> {
    (0..cfg.query_count)
        .map(|i| {
            let frac = 0.1 + 0.9 * (i as f64 / cfg.query_count as f64);
            let at = SimTime::from_secs_f64(cfg.horizon.as_secs_f64() * frac);
            (i % template_count, at)
        })
        .collect()
}

impl SimKernel {
    /// Builds the single-domain simulation: one summary peer with every
    /// generated peer as partner, plus drift, churn and the intra-domain
    /// query workload scheduled across the horizon — the exact
    /// [`crate::domain::DomainSim`] semantics.
    pub fn single_domain(cfg: SimConfig) -> Result<Self, P2pError> {
        cfg.validate()?;
        let (bk, templates, reformulated) = build_workload(&cfg)?;

        let mut sim = Simulator::<KernelEvent>::new(cfg.seed);
        sim.set_horizon(cfg.horizon);

        let mut peers: Vec<Option<PeerState>> = Vec::with_capacity(cfg.n_peers);
        for p in 0..cfg.n_peers {
            let data = generate_peer_data(
                sim.rng(),
                p as u32,
                &bk,
                &templates,
                cfg.match_fraction,
                cfg.records_per_peer,
            )?;
            peers.push(Some(PeerState::new(data)));
        }

        let mut ledger = MessageLedger::new();
        let mut domain = DomainCore::new(None, (0..cfg.n_peers as u32).map(NodeId).collect());
        domain.enroll_all(&mut peers, &mut ledger)?;

        let mut this = Self {
            cfg,
            bk,
            templates,
            reformulated,
            sim,
            peers,
            domains: vec![domain],
            domain_of: vec![Some(0); cfg.n_peers],
            sp_index: BTreeMap::new(),
            ledger,
            outcomes: Vec::new(),
            inter_outcomes: Vec::new(),
            net: None,
            topo: None,
            caches: Vec::new(),
            cache_hits: 0,
            target: LookupTarget::Total,
            lat: cfg.latency(),
            next_conv: 1,
            rings: BTreeMap::new(),
            ring_of_domain: vec![None; 1],
            lookups: BTreeMap::new(),
            in_flight: 0,
            peak_in_flight: 0,
            domain_errors: 0,
            first_error: None,
            ctl: AlphaController::new(cfg.control_policy(), 1, cfg.alpha),
            pending_rebirths: BTreeMap::new(),
            rebirth_convs: BTreeMap::new(),
            promoted_sps: BTreeSet::new(),
            rebirths: 0,
            domain_trajectory: Vec::new(),
        };
        this.schedule_drift_all();
        this.schedule_churn();
        let zipf = this
            .cfg
            .zipf_exponent
            .map(|s| ZipfSampler::new(this.templates.len(), s));
        for (template, at) in query_sample_times(&this.cfg, this.templates.len()) {
            let template = match &zipf {
                Some(z) => z.sample(this.sim.rng()),
                None => template,
            };
            this.sim
                .schedule_at(at, KernelEvent::LocalQuery { template });
        }
        this.schedule_control();
        Ok(this)
    }

    /// Builds the networked multi-domain system: topology → SP election
    /// → domain construction → per-peer data + local summaries →
    /// per-domain global summaries → SP long-range links. With
    /// `dynamics`, additionally schedules drift, churn and sampled
    /// inter-domain lookups so maintenance and routing interleave in
    /// virtual time; without it the system is frozen at t = 0 (the
    /// static [`crate::system::MultiDomainSystem`] view).
    pub fn networked(
        cfg: SimConfig,
        domain_target: usize,
        dynamics: Option<LookupTarget>,
    ) -> Result<Self, P2pError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let topo_cfg = TopologyConfig {
            nodes: cfg.n_peers,
            m: cfg.topology_m,
            ..Default::default()
        };
        let mut net = Network::new(Graph::barabasi_albert(&topo_cfg, &mut rng));

        let sp_count = (cfg.n_peers / domain_target.max(2)).max(1);
        let superpeers = elect_superpeers(&net, sp_count);
        let topo = construct_domains(&mut net, &superpeers, cfg.sumpeer_ttl);

        let (bk, templates, reformulated) = build_workload(&cfg)?;

        let mut peers: Vec<Option<PeerState>> = vec![None; cfg.n_peers];
        for (i, assignment) in topo.assignment.iter().enumerate() {
            if assignment.is_some() {
                peers[i] = Some(PeerState::new(generate_peer_data(
                    &mut rng,
                    i as u32,
                    &bk,
                    &templates,
                    cfg.match_fraction,
                    cfg.records_per_peer,
                )?));
            }
        }

        let mut ledger = MessageLedger::new();
        let mut domains = Vec::with_capacity(superpeers.len());
        let mut sp_index = BTreeMap::new();
        let mut domain_of: Vec<Option<usize>> = vec![None; cfg.n_peers];
        for &sp in &superpeers {
            let members = topo.members(sp);
            for &m in &members {
                domain_of[m.index()] = Some(domains.len());
            }
            sp_index.insert(sp, domains.len());
            let mut core = DomainCore::new(Some(sp), members);
            core.enroll_all(&mut peers, &mut ledger)?;
            domains.push(core);
        }

        // Long-range SP links, sampled *without replacement* from a
        // shuffled candidate list so small SP sets still receive their
        // full k links, deterministically from the seeded RNG.
        let k = cfg.interdomain_k.round() as usize;
        let sp_ids: Vec<NodeId> = superpeers.clone();
        for core in &mut domains {
            let sp = core.sp.expect("networked domains have an SP");
            let mut candidates: Vec<NodeId> = sp_ids.iter().copied().filter(|&o| o != sp).collect();
            candidates.shuffle(&mut rng);
            candidates.truncate(k);
            candidates.sort_unstable_by_key(|n| n.0);
            core.long_links = candidates;
        }

        let caches = (0..cfg.n_peers).map(|_| QueryCache::new(8)).collect();
        // The event loop's RNG is decorrelated from the build RNG (both
        // derive from cfg.seed, so an XOR constant keeps their streams
        // distinct while staying reproducible).
        let mut sim = Simulator::<KernelEvent>::new(cfg.seed ^ 0x5D1F_77A3_9C24_E8B1);
        sim.set_horizon(cfg.horizon);

        let n_domains = domains.len();
        let mut this = Self {
            cfg,
            bk,
            templates,
            reformulated,
            sim,
            peers,
            domains,
            domain_of,
            sp_index,
            ledger,
            outcomes: Vec::new(),
            inter_outcomes: Vec::new(),
            net: Some(net),
            topo: Some(topo),
            caches,
            cache_hits: 0,
            target: dynamics.unwrap_or(LookupTarget::Total),
            lat: cfg.latency(),
            next_conv: 1,
            rings: BTreeMap::new(),
            ring_of_domain: vec![None; n_domains],
            lookups: BTreeMap::new(),
            in_flight: 0,
            peak_in_flight: 0,
            domain_errors: 0,
            first_error: None,
            ctl: AlphaController::new(cfg.control_policy(), n_domains, cfg.alpha),
            pending_rebirths: BTreeMap::new(),
            rebirth_convs: BTreeMap::new(),
            promoted_sps: BTreeSet::new(),
            rebirths: 0,
            domain_trajectory: Vec::new(),
        };

        if dynamics.is_some() {
            this.schedule_drift_all();
            this.schedule_churn();
            this.schedule_inter_queries();
            this.schedule_sp_sessions();
            this.schedule_control();
            this.record_domain_count();
        }
        Ok(this)
    }

    /// Schedules the first control epoch when the adaptive policy is
    /// on. Fixed-α runs schedule nothing, keeping their event streams
    /// byte-identical to the pre-control-plane kernel.
    fn schedule_control(&mut self) {
        if let Some(epoch) = self.ctl.epoch() {
            self.sim.schedule_in(epoch, KernelEvent::ControlTick);
        }
    }

    /// The current effective α of domain `d` — every α-gated decision
    /// of the kernel reads this instead of `cfg.alpha`.
    fn alpha_of(&self, d: usize) -> f64 {
        self.ctl.alpha(d)
    }

    /// Samples one drift interval for peer `p`, scaled by its domain's
    /// drift rate on the heterogeneous-drift axis
    /// ([`crate::config::SimConfig::drift_spread`]).
    fn drift_interval(&mut self, p: NodeId) -> SimTime {
        let dt = self.cfg.lifetime.sample(self.sim.rng());
        if self.cfg.drift_spread == 1.0 {
            return dt;
        }
        let rate = self.domain_drift_rate(p);
        SimTime::from_secs_f64(dt.as_secs_f64() / rate)
    }

    /// The per-domain drift-rate multiplier: log-spaced in
    /// `[1/spread, spread]` across domain indices (1.0 for orphans and
    /// single-domain runs).
    fn domain_drift_rate(&self, p: NodeId) -> f64 {
        let Some(d) = self.domain_of.get(p.index()).copied().flatten() else {
            return 1.0;
        };
        let n = self.domains.len();
        if n <= 1 {
            return 1.0;
        }
        let x = d as f64 / (n - 1) as f64;
        self.cfg.drift_spread.powf(2.0 * x - 1.0)
    }

    /// Schedules one departure per summary peer when SP churn is
    /// enabled (`cfg.sp_lifetime`). Disabled by default, so the event
    /// and RNG streams of existing configurations are untouched.
    fn schedule_sp_sessions(&mut self) {
        let Some(dist) = self.cfg.sp_lifetime else {
            return;
        };
        let sps: Vec<NodeId> = self.sp_index.keys().copied().collect();
        for sp in sps {
            let dt = dist.sample(self.sim.rng());
            self.sim.schedule_in(dt, KernelEvent::SpDeparture { sp });
        }
    }

    /// Schedules the first drift expiry of every (assigned) peer.
    fn schedule_drift_all(&mut self) {
        for p in 0..self.cfg.n_peers {
            if self.peers[p].is_some() {
                let dt = self.drift_interval(NodeId(p as u32));
                self.sim
                    .schedule_in(dt, KernelEvent::Drift(NodeId(p as u32)));
            }
        }
    }

    /// Schedules the churn session stream for every (assigned) peer.
    fn schedule_churn(&mut self) {
        let churn_cfg = ChurnConfig {
            lifetime: self.cfg.lifetime,
            mean_downtime_s: self.cfg.mean_downtime_s,
            failure_fraction: self.cfg.failure_fraction,
        };
        let partners: Vec<NodeId> = (0..self.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| self.peers[p.index()].is_some())
            .collect();
        let schedule =
            SessionSchedule::generate_for(&partners, self.cfg.horizon, &churn_cfg, self.sim.rng());
        for &(t, ev) in schedule.events() {
            self.sim.schedule_at(t, KernelEvent::Session(ev));
        }
    }

    /// Samples `query_count` inter-domain lookups across (10%..100%) of
    /// the horizon, from random assigned origins.
    fn schedule_inter_queries(&mut self) {
        let partners: Vec<NodeId> = (0..self.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| self.peers[p.index()].is_some())
            .collect();
        if partners.is_empty() {
            return;
        }
        let zipf = self
            .cfg
            .zipf_exponent
            .map(|s| ZipfSampler::new(self.templates.len(), s));
        for (template, at) in query_sample_times(&self.cfg, self.templates.len()) {
            let origin = partners[self.sim.rng().gen_range(0..partners.len())];
            let template = match &zipf {
                Some(z) => z.sample(self.sim.rng()),
                None => template,
            };
            self.sim
                .schedule_at(at, KernelEvent::InterQuery { origin, template });
        }
    }

    /// Processes one event.
    fn handle(&mut self, ev: KernelEvent) {
        match ev {
            KernelEvent::Drift(p) => {
                let idx = p.index();
                let up = self.peers[idx].as_ref().is_some_and(|s| s.up);
                if up {
                    // The data drifted: regenerate the database and its
                    // local summary, then push the stale flag. A
                    // generation failure (impossible for a config that
                    // built) keeps the previous data.
                    if let Ok(data) = generate_peer_data(
                        self.sim.rng(),
                        p.0,
                        &self.bk,
                        &self.templates,
                        self.cfg.match_fraction,
                        self.cfg.records_per_peer,
                    ) {
                        let st = self.peers[idx].as_mut().expect("up peer has state");
                        st.data = data;
                        // Stays set until the new summary is merged into
                        // an accumulator — the rebirth seeding signal
                        // for pushes lost to a dissolving domain.
                        st.dirty = true;
                    }
                    if let Some(d) = self.domain_of[idx] {
                        if self.lat.is_some() {
                            self.send_push(p, d, 1);
                        } else {
                            let alpha = self.alpha_of(d);
                            if let Err(e) = self.domains[d].on_drift(
                                p,
                                alpha,
                                &mut self.peers,
                                &mut self.ledger,
                            ) {
                                self.note_error(e);
                            }
                        }
                    }
                    let dt = self.drift_interval(p);
                    self.sim.schedule_in(dt, KernelEvent::Drift(p));
                } else if let Some(st) = self.peers[idx].as_mut() {
                    // While down: drift pauses; rejoin restarts it.
                    st.drift_scheduled = false;
                }
            }
            KernelEvent::Session(SessionEvent::Leave(p)) => {
                let idx = p.index();
                if self.peers[idx].as_ref().is_some_and(|s| s.up) {
                    // The graceful `v = 2` push leaves the peer's NIC
                    // just before it disconnects.
                    if let (Some(d), true) = (self.domain_of[idx], self.lat.is_some()) {
                        self.send_push(p, d, 2);
                    }
                    self.peers[idx].as_mut().expect("checked").up = false;
                    if let Some(net) = self.net.as_mut() {
                        net.take_down(p);
                    }
                    if self.lat.is_none() {
                        if let Some(d) = self.domain_of[idx] {
                            let alpha = self.alpha_of(d);
                            if let Err(e) = self.domains[d].on_leave(
                                p,
                                alpha,
                                &mut self.peers,
                                &mut self.ledger,
                            ) {
                                self.note_error(e);
                            }
                        }
                    }
                }
            }
            KernelEvent::Session(SessionEvent::Fail(p)) => {
                // Silent: no message, CL unchanged — the GS now carries
                // descriptions of unavailable data until reconciliation.
                if let Some(st) = self.peers[p.index()].as_mut() {
                    st.up = false;
                    if let Some(net) = self.net.as_mut() {
                        net.take_down(p);
                    }
                }
            }
            KernelEvent::Session(SessionEvent::Join(p)) => {
                let idx = p.index();
                if self.peers[idx].as_ref().is_some_and(|s| !s.up) {
                    self.peers[idx].as_mut().expect("checked").up = true;
                    if let Some(net) = self.net.as_mut() {
                        net.bring_up(p);
                    }
                    if let Some(d) = self.domain_of[idx] {
                        if self.lat.is_some() {
                            self.send_localsum(p, d, SimTime::ZERO, 0);
                        } else {
                            let alpha = self.alpha_of(d);
                            if let Err(e) =
                                self.domains[d].on_join(p, alpha, &mut self.peers, &mut self.ledger)
                            {
                                self.note_error(e);
                            }
                        }
                    } else if self.cfg.sp_lifetime.is_some() {
                        // A rejoiner whose former domain still awaits a
                        // replacement SP re-triggers the stalled
                        // election instead of walking away — it is a
                        // live candidate now, so the rebirth that found
                        // an all-down membership can finally proceed.
                        let pending = self
                            .cfg
                            .rebirth
                            .then(|| {
                                self.pending_rebirths
                                    .iter()
                                    .find(|(_, seed)| seed.stalled && seed.members.contains(&p))
                                    .map(|(&d, _)| d)
                            })
                            .flatten();
                        if let Some(d) = pending {
                            self.handle_sp_election(d);
                        }
                        // An orphan of a dissolved domain walks to a
                        // surviving one on rejoin (gated on SP churn so
                        // legacy event streams stay byte-identical).
                        else if let Some(d) = self.rehome_orphan(p) {
                            if self.lat.is_some() {
                                self.send_localsum(p, d, SimTime::ZERO, 0);
                            } else {
                                let bytes = self.peers[idx]
                                    .as_ref()
                                    .map(|s| s.data.summary.len())
                                    .unwrap_or(0);
                                self.ledger.count(&Message::LocalSum { bytes }, 1);
                                self.domains[d].apply_localsum(p);
                                let alpha = self.alpha_of(d);
                                if let Err(e) = self.domains[d].maybe_reconcile(
                                    alpha,
                                    &mut self.peers,
                                    &mut self.ledger,
                                ) {
                                    self.note_error(e);
                                }
                            }
                        }
                    }
                    let st = self.peers[idx].as_mut().expect("checked");
                    let restart_drift = !st.drift_scheduled;
                    st.drift_scheduled = true;
                    if restart_drift {
                        let dt = self.drift_interval(p);
                        self.sim.schedule_in(dt, KernelEvent::Drift(p));
                    }
                }
            }
            KernelEvent::LocalQuery { template } => {
                if self.lat.is_some() {
                    // The query travels to the (implicit) SP first; its
                    // processing happens at delivery time.
                    self.send_msg(
                        IMPLICIT_SP,
                        self.sp_node(0),
                        Message::Query { template },
                        0,
                        SimTime::ZERO,
                    );
                } else {
                    self.process_local_query(template, false);
                }
            }
            KernelEvent::InterQuery { origin, template } => {
                // Only live peers pose queries; a down origin's sample is
                // simply skipped (nobody is there to ask).
                if self.peers[origin.index()].as_ref().is_some_and(|s| s.up) {
                    if self.lat.is_some() {
                        self.start_lookup(origin, template);
                    } else {
                        let target = self.target;
                        let out = self.route_live(origin, template, target);
                        self.inter_outcomes.push((self.sim.now(), out));
                    }
                }
            }
            KernelEvent::Deliver {
                from,
                to,
                msg,
                conv,
                sent_at,
            } => self.deliver(from, to, msg, conv, sent_at),
            KernelEvent::RingTimeout { conv } => {
                if self.rings.get(&conv).is_some_and(|rc| !rc.done) {
                    self.finish_ring(conv);
                }
            }
            KernelEvent::LookupTimeout { conv } => {
                if self.lookups.get(&conv).is_some_and(|lc| !lc.done) {
                    self.finish_lookup(conv);
                }
            }
            KernelEvent::SpDeparture { sp } => self.handle_sp_departure_event(sp),
            KernelEvent::SpElection { domain } => self.handle_sp_election(domain),
            KernelEvent::SpTakeover { domain, sp } => self.handle_sp_takeover(domain, sp),
            KernelEvent::RebirthTimeout { conv } => {
                if self.rebirth_convs.get(&conv).is_some_and(|rc| rc.done) {
                    // Cancelled mid-flight (the reborn SP departed
                    // again): the watchdog is the last reference, so
                    // it reaps the entry.
                    self.rebirth_convs.remove(&conv);
                } else {
                    self.finish_rebirth(conv);
                }
            }
            KernelEvent::ControlTick => self.control_tick(),
        }
    }

    /// One control epoch: every live domain's controller folds the
    /// epoch's measured feedback (query staleness, pull cost) into its
    /// effective α, and a tightened α may arm a pull right away.
    fn control_tick(&mut self) {
        let Some(epoch) = self.ctl.epoch() else {
            return;
        };
        let now_s = self.sim.now().as_secs_f64();
        for d in 0..self.domains.len() {
            if self.domains[d].dissolved {
                continue;
            }
            let fallback = self.domains[d].cl.stale_fraction();
            let spent = self.domains[d].delta_bytes_total;
            let alpha = self.ctl.tick_domain(d, now_s, fallback, spent);
            if self.lat.is_some() {
                self.maybe_start_ring(d);
            } else if let Err(e) =
                self.domains[d].maybe_reconcile(alpha, &mut self.peers, &mut self.ledger)
            {
                self.note_error(e);
            }
        }
        self.sim.schedule_in(epoch, KernelEvent::ControlTick);
    }

    /// The intra-domain workload query body (shared by the synchronous
    /// path and the latency-mode delivery at the SP). `sp_hop_counted`
    /// is true on the delivery path, where `send_msg` already counted
    /// the client→SP query message.
    fn process_local_query(&mut self, template: usize, sp_hop_counted: bool) {
        let prop = &self.reformulated[template].proposition;
        let outcome = self.domains[0].route_local(prop, self.cfg.policy, &self.peers, template);
        let sp_hop = u64::from(!sp_hop_counted);
        self.ledger.count(
            &Message::Query { template },
            sp_hop + outcome.visited.len() as u64,
        );
        self.ledger
            .count(&Message::QueryHit { results: 1 }, outcome.answered as u64);
        self.ctl.record_query(0, outcome.answered, outcome.real_fp);
        self.outcomes.push(outcome);
    }

    // ------------------------------------------------------------------
    // The latency message plane: send / deliver plumbing.
    // ------------------------------------------------------------------

    /// The delivery-event node id of a domain's SP.
    fn sp_node(&self, d: usize) -> NodeId {
        self.domains[d].sp.unwrap_or(IMPLICIT_SP)
    }

    /// Base (propagation) latency of the `a → b` hop: the direct
    /// topology link when one exists, the construction broadcast-tree
    /// latency for partner↔SP hops, the configured default otherwise
    /// (implicit SP, long links, walk partners).
    fn hop_latency(&self, a: NodeId, b: NodeId) -> SimTime {
        let lat = self.lat.expect("latency mode");
        if a == IMPLICIT_SP || b == IMPLICIT_SP {
            return lat.default_hop;
        }
        if let Some(net) = &self.net {
            if let Some(l) = net.latency(a, b) {
                return l;
            }
            if let Some(topo) = &self.topo {
                for (p, sp) in [(a, b), (b, a)] {
                    if topo.assignment.get(p.index()).copied().flatten() == Some(sp) {
                        if let Some(t) = topo.join_time(p) {
                            return t;
                        }
                    }
                }
            }
        }
        lat.default_hop
    }

    /// Latency mode: counts the message in the ledger and schedules its
    /// delivery at `now + transit + extra`.
    fn send_msg(&mut self, from: NodeId, to: NodeId, msg: Message, conv: u64, extra: SimTime) {
        let lat = self.lat.expect("latency mode");
        let transit = msg.transit_time(self.hop_latency(from, to), &lat) + extra;
        self.ledger.count(&msg, 1);
        self.in_flight += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
        let sent_at = self.sim.now();
        self.sim.schedule_in(
            transit,
            KernelEvent::Deliver {
                from,
                to,
                msg,
                conv,
                sent_at,
            },
        );
    }

    /// Sends a freshness push from partner `p` to its domain's SP.
    fn send_push(&mut self, p: NodeId, d: usize, value: u8) {
        let to = self.sp_node(d);
        self.send_msg(p, to, Message::Push { value }, 0, SimTime::ZERO);
    }

    /// Sends a (re)joining partner's `localsum` to its domain's SP,
    /// `extra` late (release transit / failure detection for re-homes).
    /// `conv` is 0 for fire-and-forget sends; rebirth hand-overs pass
    /// their conversation id so arrivals confirm the re-home instead
    /// of re-entering the CL stale.
    fn send_localsum(&mut self, p: NodeId, d: usize, extra: SimTime, conv: u64) {
        let bytes = self.peers[p.index()]
            .as_ref()
            .map(|s| s.data.summary.len())
            .unwrap_or(0);
        let to = self.sp_node(d);
        self.send_msg(p, to, Message::LocalSum { bytes }, conv, extra);
    }

    /// Dispatches a delivered message — all protocol effects happen
    /// here, at delivery time.
    fn deliver(&mut self, from: NodeId, to: NodeId, msg: Message, conv: u64, sent_at: SimTime) {
        self.in_flight = self.in_flight.saturating_sub(1);
        let latency = self.sim.now().saturating_sub(sent_at);
        self.ledger.count_delivery(msg.class(), latency);
        match msg {
            Message::Push { value } => self.deliver_push(from, value),
            Message::LocalSum { .. } if conv != 0 && self.rebirth_convs.contains_key(&conv) => {
                self.deliver_rebirth_localsum(conv, from)
            }
            Message::LocalSum { .. } => self.deliver_localsum(from),
            Message::ReconciliationToken { .. } => self.deliver_token(conv, to),
            Message::Query { template } => {
                if self.net.is_none() {
                    // Single-domain mode: the implicit SP processes the
                    // workload query on arrival (its own hop was
                    // counted at send time).
                    self.process_local_query(template, true);
                } else {
                    self.deliver_query_at_sp(conv, to);
                }
            }
            Message::QueryHit { results } => self.deliver_hit(conv, from, results > 0),
            Message::FloodRequest { ttl } => self.deliver_flood(conv, to, ttl),
            // Construction-time and §4.3 control messages have no
            // delivery-time effect here (re-homing is driven off the
            // `localsum` the released partner sends).
            _ => {}
        }
    }

    /// A freshness push arrives at the SP.
    fn deliver_push(&mut self, from: NodeId, value: u8) {
        let Some(d) = self.domain_of.get(from.index()).copied().flatten() else {
            return;
        };
        let f = if value >= 2 {
            Freshness::Unavailable
        } else {
            Freshness::NeedsRefresh
        };
        if self.domains[d].apply_push(from, f) {
            self.maybe_start_ring(d);
        }
    }

    /// A (re)joining partner's `localsum` arrives at the SP.
    fn deliver_localsum(&mut self, from: NodeId) {
        let Some(d) = self.domain_of.get(from.index()).copied().flatten() else {
            return;
        };
        if self.domains[d].apply_localsum(from) {
            self.maybe_start_ring(d);
        }
    }

    // ------------------------------------------------------------------
    // Reconciliation rings as conversations.
    // ------------------------------------------------------------------

    /// Starts a ring conversation when α crossed and none is running.
    /// The route covers only the *stale* live members (§4.2.2's pull
    /// needs nothing from fresh ones — their contributions already sit
    /// in the SP's accumulator).
    fn maybe_start_ring(&mut self, d: usize) {
        let Some(lat) = self.lat else { return };
        if self.domains[d].dissolved
            || self.ring_of_domain[d].is_some()
            || !self.domains[d].cl.needs_reconciliation(self.alpha_of(d))
        {
            return;
        }
        let route = RingConversation::stale_route(&self.domains[d].cl, |m| {
            self.peers[m.index()].as_ref().is_some_and(|s| s.up)
        });
        if route.is_empty() {
            // Every stale entry is a departed member: nothing to pull,
            // just expire them and store the rebuilt view at once.
            if let Err(e) =
                self.domains[d].reconcile_from_snapshots(&[], &mut self.peers, &mut self.ledger)
            {
                self.note_error(e);
            }
            return;
        }
        let conv = self.next_conv;
        self.next_conv += 1;
        let mut rc = RingConversation::new(d, route);
        let first = rc.route.pop_front().expect("non-empty route");
        let bytes = rc.token_bytes();
        self.rings.insert(conv, rc);
        self.ring_of_domain[d] = Some(conv);
        let sp = self.sp_node(d);
        self.send_msg(
            sp,
            first,
            Message::ReconciliationToken { bytes },
            conv,
            SimTime::ZERO,
        );
        self.sim
            .schedule_in(lat.conversation_timeout, KernelEvent::RingTimeout { conv });
    }

    /// The token arrives at its next hop (or back at the SP).
    fn deliver_token(&mut self, conv: u64, to: NodeId) {
        let Some(rc) = self.rings.get(&conv) else {
            return;
        };
        if rc.done {
            return;
        }
        let d = rc.domain;
        let sp = self.sp_node(d);
        if to == sp {
            self.finish_ring(conv);
            return;
        }
        // The member must still be up to stamp the token; a hop landing
        // on a churned-out peer silently drops it — the SP's watchdog
        // completes the pull with what was gathered.
        let Some(st) = self.peers.get(to.index()).and_then(|s| s.as_ref()) else {
            return;
        };
        if !st.up {
            return;
        }
        let snap = SummarySnapshot {
            peer: to,
            summary: st.data.summary.clone(),
            match_bits: st.data.match_bits,
        };
        let rc = self.rings.get_mut(&conv).expect("checked above");
        rc.gathered.push(snap);
        let next = rc.route.pop_front();
        let bytes = rc.token_bytes();
        let target = next.unwrap_or(sp);
        self.send_msg(
            to,
            target,
            Message::ReconciliationToken { bytes },
            conv,
            SimTime::ZERO,
        );
    }

    /// Completes a ring (token returned, or watchdog): the SP stores
    /// `NewGS` from the gathered snapshots and resets the CL.
    fn finish_ring(&mut self, conv: u64) {
        let Some(rc) = self.rings.get_mut(&conv) else {
            return;
        };
        if rc.done {
            return;
        }
        rc.done = true;
        let d = rc.domain;
        let gathered = std::mem::take(&mut rc.gathered);
        self.rings.remove(&conv);
        if self.ring_of_domain[d] == Some(conv) {
            self.ring_of_domain[d] = None;
        }
        if !self.domains[d].dissolved {
            if let Err(e) = self.domains[d].reconcile_from_snapshots(
                &gathered,
                &mut self.peers,
                &mut self.ledger,
            ) {
                self.note_error(e);
            }
            // Members the token missed kept their stale flags, so α may
            // re-arm a follow-up ring immediately.
            self.maybe_start_ring(d);
        }
    }

    // ------------------------------------------------------------------
    // Inter-domain lookups as conversations.
    // ------------------------------------------------------------------

    /// Poses an inter-domain lookup on the message plane.
    fn start_lookup(&mut self, origin: NodeId, template: usize) {
        let Some(lat) = self.lat else { return };
        let Some(home) = self.domain_of.get(origin.index()).copied().flatten() else {
            return;
        };
        let results_total = self.true_matches(template).len();
        let need = match self.target {
            LookupTarget::Partial(ct) => ct,
            LookupTarget::Total => usize::MAX,
        };
        let conv = self.next_conv;
        self.next_conv += 1;
        let lc = LookupConversation::new(origin, template, need, self.sim.now(), results_total);
        self.lookups.insert(conv, lc);
        self.schedule_domain_query(conv, home, origin, SimTime::ZERO);
        self.sim.schedule_in(
            lat.conversation_timeout,
            KernelEvent::LookupTimeout { conv },
        );
    }

    /// Sends this lookup's query to one domain's SP (once per domain).
    fn schedule_domain_query(&mut self, conv: u64, d: usize, from: NodeId, extra: SimTime) {
        let template = {
            let Some(lc) = self.lookups.get_mut(&conv) else {
                return;
            };
            if lc.done || !lc.seen_domains.insert(d) {
                return;
            }
            lc.messages += 1;
            lc.branches += 1;
            lc.template
        };
        if let Some(net) = self.net.as_mut() {
            net.count_messages(MessageClass::Query, 1);
        }
        let sp = self.sp_node(d);
        self.send_msg(from, sp, Message::Query { template }, conv, extra);
    }

    /// A lookup's query arrives at a domain SP: the SP consults its
    /// GS/CL, forwards to the selected peers (whose answers travel as
    /// separate hit deliveries), floods, and follows long links.
    fn deliver_query_at_sp(&mut self, conv: u64, to: NodeId) {
        let d_opt = self.sp_index.get(&to).copied();
        let (template, origin, done) = {
            let Some(lc) = self.lookups.get_mut(&conv) else {
                return;
            };
            lc.branches = lc.branches.saturating_sub(1);
            (lc.template, lc.origin, lc.done)
        };
        let sp_up = self.net.as_ref().map(|n| n.is_up(to)).unwrap_or(false);
        let Some(d) = d_opt.filter(|&d| !done && !self.domains[d].dissolved && sp_up) else {
            // Dissolved domain, departed SP or finished lookup: the
            // branch dies here.
            self.finish_lookup_if_idle(conv);
            return;
        };
        let (answering, stale, msgs) = self.query_domain(d, template);
        // Controller feedback, part 1: peers the summary selected that
        // were already down or drifted at SP time. The answers now sent
        // in flight are judged at *arrival* (`deliver_hit`), so peers
        // that churn out mid-flight feed the controller as stale too —
        // keeping the control signal aligned with the per-outcome
        // stale-answer accounting.
        self.ctl.record_query(d, 0, stale);
        let forwards = msgs - answering.len() as u64;
        if let Some(net) = self.net.as_mut() {
            net.count_messages(MessageClass::Query, forwards);
        }
        {
            let lc = self.lookups.get_mut(&conv).expect("checked above");
            lc.visited_domains += 1;
            lc.messages += forwards;
            lc.stale_answers += stale;
        }
        // Group locality: the answering peers remember they answered
        // this template together.
        for &p in &answering {
            self.caches[p.index()].insert(template, answering.clone());
        }
        // Each answer travels SP → peer → originator; it is
        // re-validated on arrival (the peer may churn out in flight).
        let lat = self.lat.expect("latency mode");
        for &p in &answering {
            let fwd = Message::Query { template }.transit_time(self.hop_latency(to, p), &lat);
            {
                let lc = self.lookups.get_mut(&conv).expect("checked above");
                lc.branches += 1;
                lc.messages += 1;
            }
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::QueryResponse, 1);
            }
            self.send_msg(p, origin, Message::QueryHit { results: 1 }, conv, fwd);
        }
        // §5.2.2 flooding requests to the answering peers and — in its
        // home domain — the originator.
        let mut flooders = answering;
        if self.domain_of[origin.index()] == Some(d) {
            flooders.push(origin);
        }
        let ttl = self.cfg.flood_ttl;
        for f in flooders {
            {
                let lc = self.lookups.get_mut(&conv).expect("checked above");
                lc.branches += 1;
                lc.messages += 1;
            }
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Flood, 1);
            }
            self.send_msg(to, f, Message::FloodRequest { ttl }, conv, SimTime::ZERO);
        }
        // Long-range SP links fan the query out.
        let links = self.domains[d].long_links.clone();
        for sp2 in links {
            if let Some(&other) = self.sp_index.get(&sp2) {
                self.schedule_domain_query(conv, other, to, SimTime::ZERO);
            }
        }
        self.finish_lookup_if_idle(conv);
    }

    /// A flood request arrives at a flooder, which forwards outside its
    /// domain with the TTL: cached answers reply to the originator, and
    /// newly discovered domains receive the query.
    fn deliver_flood(&mut self, conv: u64, f: NodeId, ttl: u32) {
        let (template, origin, done) = {
            let Some(lc) = self.lookups.get_mut(&conv) else {
                return;
            };
            lc.branches = lc.branches.saturating_sub(1);
            (lc.template, lc.origin, lc.done)
        };
        let f_up = self
            .peers
            .get(f.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.up);
        if done || !f_up || self.net.is_none() {
            // A churned-out flooder drops the request.
            self.finish_lookup_if_idle(conv);
            return;
        }
        let reach = self
            .net
            .as_ref()
            .expect("checked above")
            .flood_reach_timed(f, ttl);
        for (reached, _hops, plat) in reach {
            {
                let lc = self.lookups.get_mut(&conv).expect("conv exists");
                lc.messages += 1;
            }
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Flood, 1);
            }
            // "Its neighbors may have cached answers to similar
            // queries": each cached candidate is re-validated when its
            // reply reaches the originator.
            if let Some(hit) = self.caches[reached.index()].lookup(template) {
                let cached = hit.answering.clone();
                self.cache_hits += 1;
                for q in cached {
                    {
                        let lc = self.lookups.get_mut(&conv).expect("conv exists");
                        lc.branches += 1;
                        lc.messages += 1;
                    }
                    if let Some(net) = self.net.as_mut() {
                        net.count_messages(MessageClass::QueryResponse, 1);
                    }
                    self.send_msg(q, origin, Message::QueryHit { results: 0 }, conv, plat);
                }
            }
            if let Some(other_d) = self.domain_of[reached.index()] {
                self.schedule_domain_query(conv, other_d, reached, plat);
            }
        }
        self.finish_lookup_if_idle(conv);
    }

    /// An answer about peer `q` reaches the originator and is validated
    /// against the world as it is *now* — peers that churned out or
    /// drifted while the answer was in flight do not count, and
    /// summary-selected ones surface as stale answers.
    fn deliver_hit(&mut self, conv: u64, q: NodeId, summary_selected: bool) {
        let (template, origin, done) = {
            let Some(lc) = self.lookups.get_mut(&conv) else {
                return;
            };
            lc.branches = lc.branches.saturating_sub(1);
            (lc.template, lc.origin, lc.done)
        };
        if done {
            self.finish_lookup_if_idle(conv);
            return;
        }
        let valid = self
            .peers
            .get(q.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.up && s.data.matches(template));
        // Controller feedback, part 2: the summary-selected answer's
        // verdict *as delivered* — a peer that churned out while its
        // answer was in flight counts as stale here, exactly as it does
        // in the lookup's outcome. Attributed to the peer's current
        // domain (gone only if it was orphaned mid-flight).
        if summary_selected {
            if let Some(dq) = self.domain_of.get(q.index()).copied().flatten() {
                self.ctl
                    .record_query(dq, usize::from(valid), usize::from(!valid));
            }
        }
        {
            let lc = self.lookups.get_mut(&conv).expect("checked above");
            if valid {
                lc.answered.insert(q);
                if summary_selected {
                    lc.summary_ok += 1;
                }
            } else if summary_selected {
                lc.stale_answers += 1;
            }
        }
        if valid {
            let answered: Vec<NodeId> = self.lookups[&conv].answered.iter().copied().collect();
            self.caches[origin.index()].insert(template, answered);
        }
        if self.lookups[&conv].satisfied() {
            self.finish_lookup(conv);
        } else {
            self.finish_lookup_if_idle(conv);
        }
    }

    /// Completes the lookup when no branch is left in flight.
    fn finish_lookup_if_idle(&mut self, conv: u64) {
        if self
            .lookups
            .get(&conv)
            .is_some_and(|lc| !lc.done && lc.branches == 0)
        {
            self.finish_lookup(conv);
        }
    }

    /// Records the lookup's outcome (target met, branches drained, or
    /// watchdog) at the current virtual time.
    fn finish_lookup(&mut self, conv: u64) {
        let now = self.sim.now();
        let Some(lc) = self.lookups.get_mut(&conv) else {
            return;
        };
        if lc.done {
            return;
        }
        lc.done = true;
        let started = lc.started;
        let out = lc.outcome(now);
        self.inter_outcomes.push((started, out));
    }

    // ------------------------------------------------------------------
    // Summary-peer churn (§4.3).
    // ------------------------------------------------------------------

    /// A summary peer's session ends: §4.3's release / detection runs
    /// on the physical network ([`handle_sp_departure`]), the domain
    /// dissolves, and every re-homed partner ships its `localsum` to
    /// its new SP — over the message plane when latency is enabled.
    /// With [`crate::config::SimConfig::rebirth`] the members are not
    /// scattered: the domain retains its member descriptions and a
    /// [`KernelEvent::SpElection`] is scheduled to re-elect a
    /// replacement SP from the orphaned membership.
    fn handle_sp_departure_event(&mut self, sp: NodeId) {
        let Some(&d) = self.sp_index.get(&sp) else {
            return;
        };
        if self.domains[d].dissolved {
            return;
        }
        let graceful = !self
            .sim
            .rng()
            .gen_bool(self.cfg.failure_fraction.clamp(0.0, 1.0));
        // Everyone whose home is this domain re-homes: the CL members
        // *and* peers whose re-home `localsum` is still in flight (in
        // the assignment map but not yet in the CL) — otherwise a
        // second SP departure would strand them pointing at a
        // dissolved domain forever.
        let mut members = self.topo.as_ref().expect("networked kernel").members(sp);
        for &m in &self.domains[d].members {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        // Cancel the domain's in-flight ring, if any.
        if let Some(conv) = self.ring_of_domain[d].take() {
            if let Some(rc) = self.rings.get_mut(&conv) {
                rc.done = true;
            }
        }
        // A reborn domain's SP can itself depart while the hand-over
        // confirmations are still in flight: cancel that conversation.
        for rc in self.rebirth_convs.values_mut() {
            if rc.domain == d {
                rc.done = true;
            }
        }
        if self.cfg.rebirth {
            self.dissolve_for_rebirth(d, sp, graceful, members);
            return;
        }
        {
            let (Some(net), Some(topo)) = (self.net.as_mut(), self.topo.as_mut()) else {
                return;
            };
            handle_sp_departure(net, topo, sp, graceful);
        }
        // Mirror the §4.3 control traffic in the ledger (the physical
        // counters live on the network).
        if graceful {
            self.ledger.count(&Message::Release, members.len() as u64);
        } else {
            self.ledger
                .count(&Message::Push { value: 1 }, members.len() as u64);
        }
        self.sp_index.remove(&sp);
        self.domains[d].dissolve();
        // The control plane follows the domain's lifecycle: the slot's
        // controller freezes at its final α (its trajectory ends here);
        // re-homed partners feed their new domains' controllers instead.
        self.ctl.on_dissolve(d);
        for dom in &mut self.domains {
            dom.long_links.retain(|&l| l != sp);
        }
        // Re-homes: graceful partners act on the release; failed-SP
        // partners discover the failure on their next (timed-out) push.
        let delay = match (graceful, self.lat) {
            (true, _) => SimTime::ZERO,
            (false, Some(lat)) => lat.conversation_timeout,
            (false, None) => SimTime::ZERO,
        };
        for m in members {
            let new_sp = self.topo.as_ref().expect("networked kernel").assignment[m.index()];
            match new_sp {
                Some(nsp) => {
                    let nd = self.sp_index[&nsp];
                    self.domain_of[m.index()] = Some(nd);
                    if self.lat.is_some() {
                        self.send_localsum(m, nd, delay, 0);
                    } else {
                        let bytes = self.peers[m.index()]
                            .as_ref()
                            .map(|s| s.data.summary.len())
                            .unwrap_or(0);
                        self.ledger.count(&Message::LocalSum { bytes }, 1);
                        self.domains[nd].apply_localsum(m);
                        let alpha = self.alpha_of(nd);
                        if let Err(e) = self.domains[nd].maybe_reconcile(
                            alpha,
                            &mut self.peers,
                            &mut self.ledger,
                        ) {
                            self.note_error(e);
                        }
                    }
                }
                None => {
                    self.domain_of[m.index()] = None;
                }
            }
        }
        self.record_domain_count();
    }

    /// The rebirth flavour of a §4.3 dissolution: the release /
    /// detection traffic is paid and the domain dissolves exactly as in
    /// the terminal path, but instead of walking the orphans to
    /// surviving domains the kernel retains the membership, the
    /// accumulator of member descriptions and the CL flags
    /// ([`RebirthSeed`]), and schedules a [`KernelEvent::SpElection`]
    /// — after the release transit when the departure was graceful, or
    /// after the failure-detection timeout when it was silent.
    fn dissolve_for_rebirth(&mut self, d: usize, sp: NodeId, graceful: bool, members: Vec<NodeId>) {
        // Move (not clone) the retained descriptions out — dissolve()
        // is about to discard the original anyway.
        let acc = std::mem::replace(&mut self.domains[d].acc, empty_accumulator());
        let flags: BTreeMap<NodeId, Freshness> = self.domains[d]
            .cl
            .partners()
            .map(|p| {
                (
                    p,
                    self.domains[d]
                        .cl
                        .freshness(p)
                        .unwrap_or(Freshness::NeedsRefresh),
                )
            })
            .collect();
        {
            let (Some(net), Some(topo)) = (self.net.as_mut(), self.topo.as_mut()) else {
                return;
            };
            dissolve_domain(net, topo, sp, graceful);
        }
        // Mirror the §4.3 control traffic in the ledger (the physical
        // counters live on the network).
        if graceful {
            self.ledger.count(&Message::Release, members.len() as u64);
        } else {
            self.ledger
                .count(&Message::Push { value: 1 }, members.len() as u64);
        }
        self.sp_index.remove(&sp);
        self.domains[d].dissolve();
        self.ctl.on_dissolve(d);
        for dom in &mut self.domains {
            dom.long_links.retain(|&l| l != sp);
        }
        for &m in &members {
            self.domain_of[m.index()] = None;
        }
        self.pending_rebirths.insert(
            d,
            RebirthSeed {
                members,
                acc,
                flags,
                stalled: false,
            },
        );
        // A promoted SP's session is over, but its node is not gone for
        // good: it re-enters the partner pool (down, with a fresh
        // database) and its next scheduled session join revives it —
        // otherwise every rebirth would permanently drain one peer.
        if self.promoted_sps.remove(&sp) {
            if let Ok(data) = generate_peer_data(
                self.sim.rng(),
                sp.0,
                &self.bk,
                &self.templates,
                self.cfg.match_fraction,
                self.cfg.records_per_peer,
            ) {
                let mut st = PeerState::new(data);
                st.up = false;
                st.merged_bits = 0;
                st.drift_scheduled = false;
                self.peers[sp.index()] = Some(st);
            }
        }
        // Graceful: the release names the hand-over, so the election
        // starts one hop later. Failed: partners first discover the
        // failure (their next push times out).
        let delay = match (graceful, self.lat) {
            (true, Some(lat)) => lat.default_hop,
            (false, Some(lat)) => lat.conversation_timeout,
            (_, None) => SimTime::ZERO,
        };
        self.sim
            .schedule_in(delay, KernelEvent::SpElection { domain: d });
        self.record_domain_count();
    }

    /// Rebirth, step 1: elect the replacement SP among the dissolved
    /// domain's live, still-unassigned members — latency-aware on the
    /// message plane (minimum expected partner round-trip on the
    /// candidate's broadcast tree), by degree order otherwise. With no
    /// live candidate the rebirth is abandoned: the domain stays
    /// dissolved and its members walk to surviving domains as they
    /// rejoin.
    fn handle_sp_election(&mut self, d: usize) {
        let Some(seed) = self.pending_rebirths.get(&d) else {
            return;
        };
        // Members that already walked into another domain during the
        // orphan window are out: stealing them back would leave two
        // cooperation lists claiming the same partner.
        let live: Vec<NodeId> = seed
            .members
            .iter()
            .copied()
            .filter(|&m| {
                self.peers[m.index()].as_ref().is_some_and(|s| s.up)
                    && self.domain_of[m.index()].is_none()
            })
            .collect();
        let policy = match self.lat {
            Some(lat) => ElectionPolicy::LatencyAware {
                ttl: self.cfg.sumpeer_ttl,
                default_hop: lat.default_hop,
            },
            None => ElectionPolicy::Degree,
        };
        let winner = {
            let net = self.net.as_ref().expect("networked kernel");
            elect_replacement_sp(net, &live, &live, policy)
        };
        let Some(ns) = winner else {
            // Nobody is up to take over right now. The seed stays
            // pending and is marked stalled: the next former member to
            // rejoin re-triggers the election (event-driven retry — no
            // polling), so a domain whose membership was momentarily
            // all-down is not lost forever.
            if let Some(seed) = self.pending_rebirths.get_mut(&d) {
                seed.stalled = true;
            }
            return;
        };
        if let Some(seed) = self.pending_rebirths.get_mut(&d) {
            seed.stalled = false;
        }
        // Election traffic: one candidacy/acknowledgement exchange per
        // live member (the §4.1 `find` vocabulary, construction class).
        self.ledger.count(&Message::Find, live.len() as u64);
        let delay = self.lat.map(|l| l.default_hop).unwrap_or(SimTime::ZERO);
        self.sim
            .schedule_in(delay, KernelEvent::SpTakeover { domain: d, sp: ns });
    }

    /// Rebirth, step 2: the election winner takes over. The winner is
    /// promoted out of the partner role (its database leaves the
    /// workload, like every construction-time SP), announces itself
    /// with a `sumpeer` broadcast whose tree latencies become the
    /// re-homed partners' distances, and the domain slot revives
    /// seeded from the retained descriptions — members whose push
    /// invariant survived the hand-over re-enter `Fresh`, everyone
    /// else stale, so the first α-gated pull is a delta. On the
    /// message plane the members' `localsum` confirmations run as a
    /// [`RebirthConversation`] with a watchdog; in instantaneous mode
    /// they apply (and may arm the first pull) on the spot.
    fn handle_sp_takeover(&mut self, d: usize, ns: NodeId) {
        let Some(seed) = self.pending_rebirths.remove(&d) else {
            return;
        };
        // The winner may have churned out (or walked into another
        // domain) between election and takeover: re-run the election
        // over the remaining candidates.
        if !self.peers[ns.index()].as_ref().is_some_and(|s| s.up)
            || self.domain_of[ns.index()].is_some()
        {
            self.pending_rebirths.insert(d, seed);
            self.handle_sp_election(d);
            return;
        }
        let now_s = self.sim.now().as_secs_f64();
        // Promotion: the newborn SP retires from the partner role
        // (until its own departure returns the node to the pool).
        self.peers[ns.index()] = None;
        self.domain_of[ns.index()] = None;
        self.promoted_sps.insert(ns);
        let tree_dist = {
            let (net, topo) = (
                self.net.as_mut().expect("networked kernel"),
                self.topo.as_mut().expect("networked kernel"),
            );
            rebirth_broadcast(net, topo, ns, self.cfg.sumpeer_ttl)
        };
        let live: Vec<NodeId> = seed
            .members
            .iter()
            .copied()
            .filter(|&m| {
                m != ns
                    && self.peers[m.index()].as_ref().is_some_and(|s| s.up)
                    && self.domain_of[m.index()].is_none()
            })
            .collect();
        let seeded: Vec<(NodeId, Freshness)> = live
            .iter()
            .map(|&m| {
                let old = seed
                    .flags
                    .get(&m)
                    .copied()
                    .unwrap_or(Freshness::NeedsRefresh);
                let dirty = self.peers[m.index()].as_ref().is_some_and(|s| s.dirty);
                // A member whose summary regenerated while its push had
                // nowhere to land must not be seeded fresh.
                let f = if dirty && !old.as_stale_bit() {
                    Freshness::NeedsRefresh
                } else {
                    old
                };
                (m, f)
            })
            .collect();
        self.domains[d].revive(ns, seeded, seed.acc);
        self.sp_index.insert(ns, d);
        self.ctl
            .on_rebirth(d, now_s, self.domains[d].delta_bytes_total);
        {
            let topo = self.topo.as_mut().expect("networked kernel");
            for &m in &live {
                topo.assignment[m.index()] = Some(ns);
                topo.distance[m.index()] = tree_dist[m.index()].unwrap_or(u64::MAX - 1);
                self.domain_of[m.index()] = Some(d);
            }
        }
        // Long-range links for the newborn SP: sampled without
        // replacement from the current SP roster, like construction.
        let k = self.cfg.interdomain_k.round() as usize;
        let mut candidates: Vec<NodeId> =
            self.sp_index.keys().copied().filter(|&o| o != ns).collect();
        candidates.shuffle(self.sim.rng());
        candidates.truncate(k);
        candidates.sort_unstable_by_key(|n| n.0);
        self.domains[d].long_links = candidates;
        // The newborn SP's own session will end too — that is what
        // keeps the domain population stationary instead of saved-once.
        if let Some(lifetimes) = self.cfg.sp_lifetime {
            let dt = lifetimes.sample(self.sim.rng());
            self.sim
                .schedule_in(dt, KernelEvent::SpDeparture { sp: ns });
        }
        self.rebirths += 1;
        self.record_domain_count();
        // Re-home confirmations: every live member ships its `localsum`
        // to the newborn SP.
        if let Some(lat) = self.lat {
            if !live.is_empty() {
                let conv = self.next_conv;
                self.next_conv += 1;
                self.rebirth_convs.insert(
                    conv,
                    RebirthConversation {
                        domain: d,
                        outstanding: live.len() as u64,
                        done: false,
                    },
                );
                for &m in &live {
                    self.send_localsum(m, d, SimTime::ZERO, conv);
                }
                self.sim.schedule_in(
                    lat.conversation_timeout,
                    KernelEvent::RebirthTimeout { conv },
                );
            }
        } else {
            for &m in &live {
                let bytes = self.peers[m.index()]
                    .as_ref()
                    .map(|s| s.data.summary.len())
                    .unwrap_or(0);
                self.ledger.count(&Message::LocalSum { bytes }, 1);
            }
            let alpha = self.alpha_of(d);
            if let Err(e) =
                self.domains[d].maybe_reconcile(alpha, &mut self.peers, &mut self.ledger)
            {
                self.note_error(e);
            }
        }
    }

    /// A rebirth hand-over `localsum` arrives at the newborn SP. The
    /// member was seeded at takeover; the arrival re-validates it — a
    /// member that churned out while its confirmation was in flight is
    /// flagged `Unavailable` so the next pull expires it.
    fn deliver_rebirth_localsum(&mut self, conv: u64, from: NodeId) {
        let Some(rc) = self.rebirth_convs.get_mut(&conv) else {
            return;
        };
        if rc.done {
            return;
        }
        rc.outstanding = rc.outstanding.saturating_sub(1);
        let d = rc.domain;
        let outstanding = rc.outstanding;
        let up = self.peers[from.index()].as_ref().is_some_and(|s| s.up);
        if !up && !self.domains[d].dissolved {
            self.domains[d]
                .cl
                .set_freshness(from, Freshness::Unavailable);
        }
        if outstanding == 0 {
            self.finish_rebirth(conv);
        }
    }

    /// Completes a rebirth hand-over (all confirmations in, or
    /// watchdog): the reborn domain's seeded staleness may arm its
    /// first — delta — pull immediately.
    fn finish_rebirth(&mut self, conv: u64) {
        let Some(rc) = self.rebirth_convs.get_mut(&conv) else {
            return;
        };
        if rc.done {
            return;
        }
        rc.done = true;
        let d = rc.domain;
        self.rebirth_convs.remove(&conv);
        if !self.domains[d].dissolved {
            self.maybe_start_ring(d);
        }
    }

    /// Samples the live-domain count into the trajectory
    /// (`BENCH_rebirth.json`'s stationarity evidence). Only meaningful
    /// under SP churn; a no-op otherwise so existing reports stay
    /// unchanged.
    fn record_domain_count(&mut self) {
        if self.cfg.sp_lifetime.is_none() || self.net.is_none() {
            return;
        }
        let live = self.live_domains();
        self.domain_trajectory.push((self.sim.now(), live));
    }

    /// Walks an orphaned rejoiner (§4.1's `find`) to the nearest
    /// surviving partner or SP and adopts that domain. Returns the new
    /// domain index, or `None` when the walk found nobody.
    fn rehome_orphan(&mut self, p: NodeId) -> Option<usize> {
        let sps: Vec<NodeId> = self.sp_index.keys().copied().collect();
        let (path, found) = {
            let net = self.net.as_ref()?;
            let topo = self.topo.as_ref()?;
            let max_hops = (net.len() as u32).min(64);
            net.selective_walk(p, max_hops, |v| {
                sps.contains(&v) || topo.assignment[v.index()].is_some()
            })
        };
        self.ledger.count(&Message::Find, path.len() as u64);
        if !found {
            return None;
        }
        let reached = *path.last().expect("found implies non-empty path");
        let sp = if sps.contains(&reached) {
            reached
        } else {
            self.topo.as_ref()?.assignment[reached.index()].expect("partner has an SP")
        };
        // Adopt the domain only if its SP is actually alive — never
        // leave the assignment pointing at a departed one.
        let d = *self.sp_index.get(&sp)?;
        let topo = self.topo.as_mut()?;
        topo.assignment[p.index()] = Some(sp);
        topo.distance[p.index()] = u64::MAX - 1;
        self.domain_of[p.index()] = Some(d);
        Some(d)
    }

    /// Completed SP rebirths so far
    /// ([`crate::config::SimConfig::rebirth`]).
    pub fn rebirths(&self) -> u64 {
        self.rebirths
    }

    /// Domains currently live (not dissolved).
    pub fn live_domains(&self) -> usize {
        self.domains.iter().filter(|d| !d.dissolved).count()
    }

    /// Debug / verification probe: checks every live domain's
    /// incrementally maintained GS against its from-scratch
    /// [`DomainCore::full_rebuild_oracle`], byte-for-byte. After a
    /// completed reconciliation round in instantaneous mode the two
    /// must agree — including for domains reborn from retained
    /// descriptions (the rebirth property tests rely on this probe).
    pub fn live_gs_matches_oracle(&self) -> Result<bool, P2pError> {
        for dom in &self.domains {
            if dom.dissolved {
                continue;
            }
            let oracle = dom.full_rebuild_oracle(&self.peers)?;
            if wire::encode(&dom.gs) != wire::encode(&oracle) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Messages currently in flight on the message plane.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// High-water mark of in-flight messages over the run.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Runs every scheduled event to the horizon.
    pub fn run_to_horizon(&mut self) {
        while let Some((_, ev)) = self.sim.next_event() {
            self.handle(ev);
        }
        if let (n, Some(e)) = self.error_status() {
            eprintln!("warning: {n} domain-state error(s) swallowed during the run; first: {e}");
        }
    }

    /// Processes events due at or before `t`, then advances the clock to
    /// `t` — the probe-in-the-middle entry the dynamic experiments use.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((_, ev)) = self.sim.next_event_before(t) {
            self.handle(ev);
        }
        self.sim.fast_forward(t);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Ground truth: all live peers currently matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|s| s.up && s.data.matches(template)))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Cache hits observed during inter-domain flooding so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Queries one domain's *live* GS/CL under the configured routing
    /// policy: (answering peers, stale answers, messages).
    fn query_domain(&self, d: usize, template: usize) -> (Vec<NodeId>, usize, u64) {
        let dom = &self.domains[d];
        let prop = &self.reformulated[template].proposition;
        // Only current partners are contacted: the CL is the membership
        // authority even when the GS still carries departed peers' cells.
        let pq: Vec<NodeId> = relevant_sources(&dom.gs, prop)
            .into_iter()
            .map(|s| NodeId(s.0))
            .filter(|p| dom.cl.contains(*p))
            .collect();
        let visited: Vec<NodeId> = match self.cfg.policy {
            RoutingPolicy::All => pq,
            RoutingPolicy::FreshOnly => pq
                .into_iter()
                .filter(|&p| {
                    dom.cl
                        .freshness(p)
                        .map(|f| !f.as_stale_bit())
                        .unwrap_or(false)
                })
                .collect(),
            RoutingPolicy::Extended => {
                let mut v = pq;
                v.extend(dom.cl.old_partners());
                v.sort_unstable_by_key(|p| p.0);
                v.dedup();
                v
            }
        };
        let mut answering = Vec::new();
        let mut stale = 0usize;
        for p in &visited {
            let live_match = self.peers[p.index()]
                .as_ref()
                .is_some_and(|s| s.up && s.data.matches(template));
            if live_match {
                answering.push(*p);
            } else {
                stale += 1;
            }
        }
        // 1 query to the SP happens at the caller; here: forwards + hits.
        let messages = visited.len() as u64 + answering.len() as u64;
        (answering, stale, messages)
    }

    /// Routes a query posed at `origin` through the network (§5.2.2),
    /// against the *current* per-domain GS/CL state — under churn this is
    /// where stale summaries become measurable network-wide.
    pub fn route_live(
        &mut self,
        origin: NodeId,
        template: usize,
        target: LookupTarget,
    ) -> MultiDomainOutcome {
        let results_total = self.true_matches(template).len();
        let need = match target {
            LookupTarget::Partial(ct) => ct,
            LookupTarget::Total => usize::MAX,
        };

        let Some(home) = self.domain_of.get(origin.index()).copied().flatten() else {
            return MultiDomainOutcome::empty(results_total);
        };
        // A down origin cannot pose a query (the scheduled InterQuery
        // path skips it for the same reason); probes get the same rule.
        if !self.peers[origin.index()].as_ref().is_some_and(|s| s.up) {
            return MultiDomainOutcome::empty(results_total);
        }

        let mut messages: u64 = 0;
        let mut stale_answers = 0usize;
        let mut summary_results = 0usize;
        let mut answered: BTreeSet<NodeId> = BTreeSet::new();
        let mut visited_domains: BTreeSet<usize> = BTreeSet::new();
        // Domains to process next: discovered through flooding/long links.
        let mut frontier: VecDeque<usize> = VecDeque::new();
        frontier.push_back(home);

        'domains: while let Some(d) = frontier.pop_front() {
            if !visited_domains.insert(d) {
                continue;
            }
            messages += 1; // the query message to this domain's SP
            let (answering, stale, msgs) = self.query_domain(d, template);
            self.ctl.record_query(d, answering.len(), stale);
            messages += msgs;
            stale_answers += stale;
            summary_results += answering.len();
            answered.extend(answering.iter().copied());
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Query, 1 + msgs);
            }
            // Group locality (§5.2.2): the originator and the answering
            // peers remember who answered this template. The originator
            // accumulates everyone seen so far — a later domain with no
            // answerers must not wipe the entry it already earned.
            if !answered.is_empty() {
                self.caches[origin.index()].insert(template, answered.iter().copied().collect());
            }
            for &p in &answering {
                self.caches[p.index()].insert(template, answering.clone());
            }
            if answered.len() >= need {
                break;
            }

            // §5.2.2: flood requests to the answering peers and the
            // originator, who forward the query outside their domain with
            // a limited TTL; plus the SP's long-range links.
            let mut flooders: Vec<NodeId> = answering;
            if self.domain_of[origin.index()] == Some(d) {
                flooders.push(origin);
            }
            if let Some(net) = self.net.as_mut() {
                net.count_messages(MessageClass::Flood, flooders.len() as u64);
            }
            messages += flooders.len() as u64;
            for f in flooders {
                let reach = self
                    .net
                    .as_ref()
                    .expect("networked kernel")
                    .flood_reach(f, self.cfg.flood_ttl);
                for (reached, _) in reach {
                    messages += 1; // each forward is a message
                                   // A reached neighbor with a cached answer for this
                                   // template replies immediately — "its neighbors may
                                   // have cached answers to similar queries".
                    if let Some(hit) = self.caches[reached.index()].lookup(template) {
                        let cached = hit.answering.clone();
                        self.cache_hits += 1;
                        messages += 1; // the cache-holder's reply
                        for q in cached {
                            // Validate against ground truth: stale cache
                            // entries (peer gone or drifted) add nothing.
                            let valid = self.peers[q.index()]
                                .as_ref()
                                .is_some_and(|s| s.up && s.data.matches(template));
                            if valid {
                                answered.insert(q);
                            }
                        }
                        if answered.len() >= need {
                            break 'domains;
                        }
                    }
                    if let Some(other) = self.domain_of[reached.index()] {
                        if !visited_domains.contains(&other) {
                            frontier.push_back(other);
                        }
                    }
                }
            }
            let links = self.domains[d].long_links.clone();
            for sp in links {
                messages += 1;
                // A link may point at an SP that departed since (§4.3).
                if let Some(&other) = self.sp_index.get(&sp) {
                    if !visited_domains.contains(&other) {
                        frontier.push_back(other);
                    }
                }
            }
        }

        MultiDomainOutcome {
            results: answered.len(),
            results_total,
            domains_visited: visited_domains.len(),
            messages,
            satisfied: answered.len() >= need.min(results_total),
            stale_answers,
            summary_results,
            time_to_answer_s: 0.0,
        }
    }

    /// Builds the single-domain report after a completed run.
    pub(crate) fn single_report(&self) -> DomainReport {
        let dom = &self.domains[0];
        let (approx_live, approx_with_departed) = self.approximate_coverage();
        let mut report = DomainReport::from_run(
            &self.cfg,
            &self.outcomes,
            self.ledger.counters(),
            self.ledger.byte_counters(),
            dom.reconciliations,
            dom.gs_bytes_last,
            dom.gs.leaf_count(),
            dom.gs.live_node_count(),
        );
        report.approx_weight_live = approx_live;
        report.approx_weight_with_departed = approx_with_departed;
        let work = self.ledger.reconcile_work();
        report.reconcile_merged_members = work.merged;
        report.reconcile_skipped_members = work.skipped;
        report.reconcile_delta_bytes = work.delta_bytes;
        report.final_alpha = self.ctl.alpha(0);
        report.alpha_trajectory = self.ctl.trajectory(0).to_vec();
        report
    }

    /// §4.3's two alternatives for departed peers' descriptions, made
    /// measurable: the approximate-answer weight per template from the
    /// current GS (alternative 2 — departed data expired, the paper's
    /// and this simulation's routing choice) versus a GS that *keeps*
    /// the last known summaries of down peers (alternative 1 — richer
    /// approximate answers at the price of describing unavailable data).
    fn approximate_coverage(&self) -> (Vec<f64>, Vec<f64>) {
        let gs = &self.domains[0].gs;
        let weight_of = |gs: &saintetiq::hierarchy::SummaryTree| -> Vec<f64> {
            self.reformulated
                .iter()
                .map(|sq| {
                    saintetiq::query::approx::approximate_answer(gs, sq)
                        .iter()
                        .map(|a| a.weight)
                        .sum()
                })
                .collect()
        };
        let live = weight_of(gs);
        let mut with_departed = gs.clone();
        let ecfg = EngineConfig::default();
        for peer in self.peers.iter().flatten() {
            if !peer.up && peer.merged_bits == 0 {
                // Down and absent from the GS: its last summary is the
                // description alternative 1 would have retained. A
                // summary that fails to decode (impossible for locally
                // encoded data) simply contributes nothing.
                let Ok(tree) = wire::decode(&peer.data.summary) else {
                    continue;
                };
                if saintetiq::merge::merge_into(&mut with_departed, &tree, &ecfg).is_err() {
                    continue;
                }
            }
        }
        (live, weight_of(&with_departed))
    }

    /// Builds the multi-domain report after a completed dynamic run.
    pub(crate) fn multi_report(&self) -> MultiDomainReport {
        let reconciliations = self.domains.iter().map(|d| d.reconciliations).sum();
        // Lookups posed close to the horizon never saw their remaining
        // deliveries (the simulator drops events past the horizon);
        // record them as cut off at the horizon instead of silently
        // discarding the tail — otherwise slow-link sweeps would
        // compare survivorship-biased query populations.
        let mut outcomes = self.inter_outcomes.clone();
        for lc in self.lookups.values() {
            if !lc.done {
                outcomes.push((lc.started, lc.outcome(self.cfg.horizon)));
            }
        }
        outcomes.sort_by_key(|o| o.0);
        let mut report = MultiDomainReport::from_run(
            &self.cfg,
            self.live_domains(),
            &outcomes,
            &self.ledger,
            reconciliations,
            self.cache_hits,
            self.peak_in_flight,
        );
        report.final_alphas = self.ctl.final_alphas();
        report.mean_final_alpha = if report.final_alphas.is_empty() {
            self.cfg.alpha
        } else {
            report.final_alphas.iter().sum::<f64>() / report.final_alphas.len() as f64
        };
        report.alpha_trajectories = (0..self.domains.len())
            .map(|d| self.ctl.trajectory(d).to_vec())
            .collect();
        report.rebirths = self.rebirths;
        report.domain_count_trajectory = self
            .domain_trajectory
            .iter()
            .map(|&(t, n)| (t.as_secs_f64(), n))
            .collect();
        report.initial_domains = self
            .domain_trajectory
            .first()
            .map(|&(_, n)| n)
            .unwrap_or(report.n_domains);
        report.min_live_domains = self
            .domain_trajectory
            .iter()
            .map(|&(_, n)| n)
            .min()
            .unwrap_or(report.n_domains);
        report
    }

    /// Forces a reconciliation round in every domain (used by probes and
    /// SP-initiated maintenance scenarios).
    pub fn reconcile_all(&mut self) {
        for d in 0..self.domains.len() {
            let result = {
                let (domains, peers, ledger) =
                    (&mut self.domains, &mut self.peers, &mut self.ledger);
                domains[d].reconcile(peers, ledger)
            };
            if let Err(e) = result {
                self.note_error(e);
            }
        }
    }

    /// Records a domain-state error the event loop swallowed. These are
    /// impossible for configurations that built successfully; counting
    /// them (instead of panicking mid-run) keeps release simulations
    /// total, while debug builds — the tests and CI — still fail loudly
    /// so a corrupted domain can never silently feed the reports.
    fn note_error(&mut self, e: P2pError) {
        debug_assert!(false, "domain-state error swallowed mid-run: {e}");
        self.domain_errors += 1;
        if self.first_error.is_none() {
            self.first_error = Some(e);
        }
    }

    /// Number of domain-state errors swallowed so far, and the first
    /// one — `(0, None)` on every healthy run.
    pub fn error_status(&self) -> (u64, Option<&P2pError>) {
        (self.domain_errors, self.first_error.as_ref())
    }

    /// Mean stale fraction across domains' cooperation lists.
    pub fn mean_stale_fraction(&self) -> f64 {
        if self.domains.is_empty() {
            return 0.0;
        }
        self.domains
            .iter()
            .map(|d| d.cl.stale_fraction())
            .sum::<f64>()
            / self.domains.len() as f64
    }

    /// Fraction of assigned peers currently live.
    pub fn live_fraction(&self) -> f64 {
        let assigned = self.peers.iter().flatten().count();
        if assigned == 0 {
            return 0.0;
        }
        let live = self.peers.iter().flatten().filter(|s| s.up).count();
        live as f64 / assigned as f64
    }
}

/// The dynamic multi-domain simulation: churn, drift and reconciliation
/// interleaved with inter-domain lookups — the network-scale experiment
/// the static [`crate::system::MultiDomainSystem`] cannot express.
pub struct MultiDomainSim {
    kernel: SimKernel,
}

impl MultiDomainSim {
    /// Builds the system and schedules its full dynamic event load.
    pub fn new(
        cfg: SimConfig,
        domain_target: usize,
        target: LookupTarget,
    ) -> Result<Self, P2pError> {
        Ok(Self {
            kernel: SimKernel::networked(cfg, domain_target, Some(target))?,
        })
    }

    /// Runs to the horizon and reports.
    pub fn run(mut self) -> MultiDomainReport {
        self.kernel.run_to_horizon();
        self.kernel.multi_report()
    }

    /// Processes events up to virtual time `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.kernel.run_until(t);
    }

    /// Routes one lookup right now, against the current (possibly stale)
    /// per-domain summaries.
    pub fn route_now(
        &mut self,
        origin: NodeId,
        template: usize,
        target: LookupTarget,
    ) -> MultiDomainOutcome {
        self.kernel.route_live(origin, template, target)
    }

    /// Forces a reconciliation round in every domain.
    pub fn reconcile_all(&mut self) {
        self.kernel.reconcile_all();
    }

    /// The domain construction map.
    pub fn domains(&self) -> &Domains {
        self.kernel
            .topo
            .as_ref()
            .expect("networked kernel has a topology")
    }

    /// Live assigned partners (candidate query origins).
    pub fn live_origins(&self) -> Vec<NodeId> {
        (0..self.kernel.cfg.n_peers as u32)
            .map(NodeId)
            .filter(|p| {
                self.kernel.peers[p.index()].as_ref().is_some_and(|s| s.up)
                    && self.kernel.domain_of[p.index()].is_some()
            })
            .collect()
    }

    /// Ground truth: live peers matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.kernel.true_matches(template)
    }

    /// Mean CL stale fraction across domains.
    pub fn mean_stale_fraction(&self) -> f64 {
        self.kernel.mean_stale_fraction()
    }

    /// Completed SP rebirths so far.
    pub fn rebirths(&self) -> u64 {
        self.kernel.rebirths()
    }

    /// Domains currently live (not dissolved).
    pub fn live_domains(&self) -> usize {
        self.kernel.live_domains()
    }

    /// Checks every live domain's GS against its from-scratch oracle
    /// (see [`SimKernel::live_gs_matches_oracle`]).
    pub fn gs_matches_oracle(&self) -> Result<bool, P2pError> {
        self.kernel.live_gs_matches_oracle()
    }

    /// Fraction of assigned peers currently live.
    pub fn live_fraction(&self) -> f64 {
        self.kernel.live_fraction()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.kernel.template_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, seed: u64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, 0.3);
        c.horizon = SimTime::from_hours(4);
        c.query_count = 30;
        c.records_per_peer = 10;
        c.seed = seed;
        c
    }

    #[test]
    fn single_domain_kernel_matches_domain_sim_shape() {
        let mut k = SimKernel::single_domain(cfg(24, 1)).unwrap();
        k.run_to_horizon();
        assert_eq!(k.error_status(), (0, None), "healthy run swallows nothing");
        let report = k.single_report();
        assert_eq!(report.queries, 30);
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn networked_static_build_has_live_domains() {
        let k = SimKernel::networked(cfg(200, 2), 30, None).unwrap();
        assert!(k.domains.len() >= 4);
        for dom in &k.domains {
            assert_eq!(dom.cl.len(), dom.members.len());
            assert_eq!(dom.cl.stale_fraction(), 0.0);
        }
        assert_eq!(k.live_fraction(), 1.0);
    }

    #[test]
    fn long_links_are_distinct_and_filled() {
        let k = SimKernel::networked(cfg(300, 3), 30, None).unwrap();
        let k_target = k.cfg.interdomain_k.round() as usize;
        let sp_count = k.domains.len();
        for dom in &k.domains {
            let links = &dom.long_links;
            let mut dedup = links.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), links.len(), "no duplicate links");
            assert!(!links.contains(&dom.sp.unwrap()), "no self-links");
            assert_eq!(
                links.len(),
                k_target.min(sp_count - 1),
                "k links even on small SP sets"
            );
        }
    }

    #[test]
    fn dynamic_run_produces_outcomes_under_churn() {
        let report = MultiDomainSim::new(cfg(150, 4), 25, LookupTarget::Total)
            .unwrap()
            .run();
        assert!(report.queries > 0, "live origins answered");
        assert!(report.mean_recall > 0.0);
        assert!(report.mean_recall <= 1.0 + 1e-12);
        assert!(
            report.push_messages > 0,
            "drift and leaves push under churn"
        );
    }

    #[test]
    fn probe_reconcile_restores_freshness() {
        let mut sim = MultiDomainSim::new(cfg(120, 5), 20, LookupTarget::Total).unwrap();
        sim.advance_to(SimTime::from_hours(2));
        sim.reconcile_all();
        assert_eq!(sim.mean_stale_fraction(), 0.0);
    }

    #[test]
    fn down_origin_probe_yields_empty_outcome() {
        let mut sim = MultiDomainSim::new(cfg(150, 7), 25, LookupTarget::Total).unwrap();
        sim.advance_to(SimTime::from_hours(2));
        let live = sim.live_origins();
        let down = sim
            .domains()
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .map(|(i, _)| NodeId(i as u32))
            .find(|p| !live.contains(p));
        let down = down.expect("two hours of churn took someone down");
        let out = sim.route_now(down, 0, LookupTarget::Total);
        assert_eq!(out.messages, 0, "nobody is there to ask");
        assert!(!out.satisfied);
    }

    #[test]
    fn latency_mode_records_positive_offsets_per_lookup() {
        use crate::config::{DeliveryMode, LatencyConfig};
        let mut c = cfg(120, 8);
        c.delivery = DeliveryMode::Latency(LatencyConfig::wan_default());
        let mut k = SimKernel::networked(c, 20, Some(LookupTarget::Total)).unwrap();
        k.run_to_horizon();
        assert_eq!(k.error_status(), (0, None), "healthy run swallows nothing");
        assert!(!k.inter_outcomes.is_empty(), "lookups completed");
        for (_, out) in &k.inter_outcomes {
            assert!(
                out.time_to_answer_s > 0.0,
                "every lookup takes virtual time: {out:?}"
            );
        }
        assert!(k.peak_in_flight() > 0);
        assert!(
            k.in_flight() <= k.peak_in_flight(),
            "deliveries dropped at the horizon stay bounded by the peak"
        );
    }

    #[test]
    fn latency_mode_ring_conversations_reconcile() {
        use crate::config::{DeliveryMode, LatencyConfig};
        let mut c = cfg(24, 9);
        c.delivery = DeliveryMode::Latency(LatencyConfig::wan_default());
        let mut k = SimKernel::single_domain(c).unwrap();
        k.run_to_horizon();
        assert!(k.domains[0].reconciliations > 0, "token rings completed");
        let report = k.single_report();
        assert_eq!(report.queries, 30, "all workload queries processed");
    }

    #[test]
    fn deterministic_dynamic_runs() {
        let a = MultiDomainSim::new(cfg(100, 6), 20, LookupTarget::Partial(5))
            .unwrap()
            .run();
        let b = MultiDomainSim::new(cfg(100, 6), 20, LookupTarget::Partial(5))
            .unwrap()
            .run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.push_messages, b.push_messages);
        assert!((a.mean_recall - b.mean_recall).abs() < 1e-12);
    }
}
