//! The comparison algorithms of §6.2.3.
//!
//! * **Pure flooding** — broadcast the query with TTL 3 ("very used in
//!   real life, due to their simplicity and the lack of complex state
//!   information at each peer"), measured on the simulated power-law
//!   topology: every forward is a message, matching reached peers
//!   respond.
//! * **Centralized index** — "the best results that can be expected from
//!   any query processing algorithm" when complete and consistent: one
//!   message to the index, one to each relevant peer, one response each.

use p2psim::network::{Network, NodeId};
use rand::Rng;

/// Result of one baseline query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineOutcome {
    /// Messages exchanged.
    pub messages: u64,
    /// Relevant peers reached (query recall numerator).
    pub hits_reached: usize,
    /// Total relevant peers in the network.
    pub hits_total: usize,
}

impl BaselineOutcome {
    /// Fraction of relevant peers actually reached.
    pub fn recall(&self) -> f64 {
        if self.hits_total == 0 {
            1.0
        } else {
            self.hits_reached as f64 / self.hits_total as f64
        }
    }
}

/// Pure flooding from `origin` with the given TTL. `matches(peer)` is
/// the ground truth; reached matching peers respond (one message each).
pub fn flood_query<F: Fn(NodeId) -> bool>(
    net: &Network,
    origin: NodeId,
    ttl: u32,
    matches: F,
) -> BaselineOutcome {
    let forwards = net.flood_message_count(origin, ttl);
    let reached = net.flood_reach(origin, ttl);
    let hits_total = (0..net.len() as u32)
        .map(NodeId)
        .filter(|&p| net.is_up(p) && matches(p))
        .count();
    let hits_reached = reached.iter().filter(|&&(p, _)| matches(p)).count()
        + usize::from(matches(origin) && net.is_up(origin));
    BaselineOutcome {
        messages: forwards + hits_reached as u64,
        hits_reached,
        hits_total,
    }
}

/// Centralized index: assumes a complete, consistent index. One query
/// message, one forward per relevant peer, one response per relevant
/// peer: `1 + 2·hits`.
pub fn centralized_query<F: Fn(NodeId) -> bool>(net: &Network, matches: F) -> BaselineOutcome {
    let hits = (0..net.len() as u32)
        .map(NodeId)
        .filter(|&p| net.is_up(p) && matches(p))
        .count();
    BaselineOutcome {
        messages: 1 + 2 * hits as u64,
        hits_reached: hits,
        hits_total: hits,
    }
}

/// Averages flooding cost/recall over `samples` random origins.
pub fn flood_query_averaged<R: Rng + ?Sized, F: Fn(NodeId) -> bool>(
    net: &Network,
    ttl: u32,
    samples: usize,
    rng: &mut R,
    matches: F,
) -> (f64, f64) {
    let mut msg_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut taken = 0usize;
    let mut guard = 0usize;
    while taken < samples && guard < samples * 20 {
        guard += 1;
        let origin = NodeId(rng.gen_range(0..net.len() as u32));
        if !net.is_up(origin) {
            continue;
        }
        let out = flood_query(net, origin, ttl, &matches);
        msg_sum += out.messages as f64;
        recall_sum += out.recall();
        taken += 1;
    }
    let n = taken.max(1) as f64;
    (msg_sum / n, recall_sum / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::time::SimTime;
    use p2psim::topology::{Graph, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn power_law_net(n: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TopologyConfig {
            nodes: n,
            ..Default::default()
        };
        Network::new(Graph::barabasi_albert(&cfg, &mut rng))
    }

    #[test]
    fn flooding_cost_explodes_with_ttl() {
        let net = power_law_net(1000, 1);
        let f1 = flood_query(&net, NodeId(0), 1, |_| false).messages;
        let f3 = flood_query(&net, NodeId(0), 3, |_| false).messages;
        assert!(f3 > 5 * f1, "TTL3 {f3} vs TTL1 {f1}");
    }

    #[test]
    fn flooding_recall_is_partial_on_large_networks() {
        let net = power_law_net(3000, 2);
        // 10% of peers match.
        let out = flood_query(&net, NodeId(5), 3, |p| p.0 % 10 == 0);
        assert!(out.hits_total >= 290);
        assert!(out.recall() < 1.0, "TTL-3 cannot cover 3000 peers");
        assert!(out.recall() > 0.0);
    }

    #[test]
    fn centralized_matches_closed_form() {
        let net = power_law_net(500, 3);
        let out = centralized_query(&net, |p| p.0 % 10 == 0);
        assert_eq!(out.hits_total, 50);
        assert_eq!(out.messages, 1 + 2 * 50);
        assert_eq!(out.recall(), 1.0);
        // Agrees with §6.2.3's formula 1 + 2·(0.1·n).
        assert_eq!(
            out.messages as f64,
            crate::costmodel::centralized_cost(500, 0.1)
        );
    }

    #[test]
    fn down_peers_neither_respond_nor_count() {
        let mut net = power_law_net(200, 4);
        for i in 0..100 {
            net.take_down(NodeId(i));
        }
        let out = centralized_query(&net, |p| p.0 % 10 == 0);
        assert_eq!(out.hits_total, 10, "only live matching peers");
    }

    #[test]
    fn ring_flood_is_exact() {
        let net = Network::new(Graph::ring(10, SimTime::from_millis(1)));
        // TTL=2 from node 0: forwards = 2 (hop1) + 4 (hop2: nodes 1,9
        // each forward to both neighbors, duplicates included).
        let out = flood_query(&net, NodeId(0), 2, |p| p.0 == 2);
        assert_eq!(out.hits_reached, 1);
        assert_eq!(out.messages, 2 + 4 + 1);
    }

    #[test]
    fn averaged_flooding_is_stable() {
        let net = power_law_net(800, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (msgs, recall) = flood_query_averaged(&net, 3, 25, &mut rng, |p| p.0 % 10 == 0);
        assert!(msgs > 100.0);
        assert!((0.0..=1.0).contains(&recall));
    }
}
