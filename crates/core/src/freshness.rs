//! Freshness values (§4.1, §4.3).
//!
//! Each cooperation-list element carries a 2-bit freshness value:
//!
//! * `0` — the descriptions are fresh relative to the original data;
//! * `1` — the descriptions need to be refreshed;
//! * `2` — the original data are not available (used while addressing
//!   peer volatility).
//!
//! §4.3 then adopts the *second alternative*: departed peers' data is
//! considered expired, collapsing the scheme to a 1-bit value where `1`
//! covers both expiration and unavailability. Both views are provided;
//! the simulation uses the collapsed one, like the paper.

/// A cooperation-list freshness value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Freshness {
    /// Value 0: descriptions are fresh.
    #[default]
    Fresh,
    /// Value 1: descriptions need to be refreshed.
    NeedsRefresh,
    /// Value 2: the original data is unavailable (peer departed).
    Unavailable,
}

impl Freshness {
    /// The 2-bit encoding of §4.1.
    pub fn as_u2(self) -> u8 {
        match self {
            Freshness::Fresh => 0,
            Freshness::NeedsRefresh => 1,
            Freshness::Unavailable => 2,
        }
    }

    /// Decodes the 2-bit value.
    pub fn from_u2(v: u8) -> Option<Self> {
        match v {
            0 => Some(Freshness::Fresh),
            1 => Some(Freshness::NeedsRefresh),
            2 => Some(Freshness::Unavailable),
            _ => None,
        }
    }

    /// The collapsed 1-bit view of §4.3 ("a value 0 to indicate the
    /// freshness of data descriptions, and a value 1 to indicate either
    /// their expiration or their unavailability").
    pub fn as_stale_bit(self) -> bool {
        !matches!(self, Freshness::Fresh)
    }

    /// True when the underlying data is gone (not merely drifted).
    pub fn is_unavailable(self) -> bool {
        matches!(self, Freshness::Unavailable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_roundtrip() {
        for f in [
            Freshness::Fresh,
            Freshness::NeedsRefresh,
            Freshness::Unavailable,
        ] {
            assert_eq!(Freshness::from_u2(f.as_u2()), Some(f));
        }
        assert_eq!(Freshness::from_u2(3), None);
    }

    #[test]
    fn collapsed_bit_matches_section_43() {
        assert!(!Freshness::Fresh.as_stale_bit());
        assert!(Freshness::NeedsRefresh.as_stale_bit());
        assert!(Freshness::Unavailable.as_stale_bit());
        assert!(Freshness::Unavailable.is_unavailable());
        assert!(!Freshness::NeedsRefresh.is_unavailable());
    }

    #[test]
    fn default_is_fresh() {
        // §4.1: "value 0 (initial value)".
        assert_eq!(Freshness::default(), Freshness::Fresh);
    }
}
