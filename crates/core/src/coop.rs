//! The cooperation list (§4.1): per-partner freshness bookkeeping
//! attached to a global summary.

use std::collections::BTreeMap;

use p2psim::network::NodeId;

use crate::freshness::Freshness;

/// The cooperation list `CL` of one global summary: an element per
/// partner peer holding its freshness value.
#[derive(Debug, Clone, Default)]
pub struct CooperationList {
    entries: BTreeMap<NodeId, Freshness>,
}

impl CooperationList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a partner with the given initial freshness (`Fresh` for
    /// construction-time partners, `NeedsRefresh` for §4.3's late
    /// joiners whose data awaits the next pull).
    pub fn add_partner(&mut self, peer: NodeId, freshness: Freshness) {
        self.entries.insert(peer, freshness);
    }

    /// Removes a partner (on `drop` messages or reconciliation cleanup).
    pub fn remove_partner(&mut self, peer: NodeId) -> bool {
        self.entries.remove(&peer).is_some()
    }

    /// True when the peer is a partner.
    pub fn contains(&self, peer: NodeId) -> bool {
        self.entries.contains_key(&peer)
    }

    /// The freshness of one partner.
    pub fn freshness(&self, peer: NodeId) -> Option<Freshness> {
        self.entries.get(&peer).copied()
    }

    /// Updates a partner's freshness (push messages); returns false when
    /// the peer is unknown.
    pub fn set_freshness(&mut self, peer: NodeId, freshness: Freshness) -> bool {
        match self.entries.get_mut(&peer) {
            Some(slot) => {
                *slot = freshness;
                true
            }
            None => false,
        }
    }

    /// Number of partners.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no partner is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All partners in id order.
    pub fn partners(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }

    /// `P_fresh`: partners whose descriptions are fresh (§6.1.2).
    pub fn fresh_partners(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(|(_, f)| !f.as_stale_bit())
            .map(|(&p, _)| p)
    }

    /// `P_old`: partners whose descriptions are considered old (§6.1.2).
    pub fn old_partners(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .iter()
            .filter(|(_, f)| f.as_stale_bit())
            .map(|(&p, _)| p)
    }

    /// The reconciliation trigger metric: `Σ v / |CL|` under the 1-bit
    /// view (§6.1.1's `Σ_{v∈CL} v / |CL| ≥ α`).
    pub fn stale_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let stale = self.entries.values().filter(|f| f.as_stale_bit()).count();
        stale as f64 / self.entries.len() as f64
    }

    /// True when reconciliation must fire.
    pub fn needs_reconciliation(&self, alpha: f64) -> bool {
        !self.is_empty() && self.stale_fraction() >= alpha
    }

    /// Post-reconciliation reset (§4.2.2: "all the freshness values in CL
    /// are reset to zero"); `retain` keeps only the peers that took part
    /// (departed partners are dropped, since the rebuilt GS omits them).
    pub fn reconcile<F: Fn(NodeId) -> bool>(&mut self, retain: F) {
        self.entries.retain(|&p, _| retain(p));
        for f in self.entries.values_mut() {
            *f = Freshness::Fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_set_remove() {
        let mut cl = CooperationList::new();
        cl.add_partner(peer(1), Freshness::Fresh);
        cl.add_partner(peer(2), Freshness::NeedsRefresh);
        assert_eq!(cl.len(), 2);
        assert!(cl.contains(peer(1)));
        assert_eq!(cl.freshness(peer(2)), Some(Freshness::NeedsRefresh));
        assert!(cl.set_freshness(peer(1), Freshness::Unavailable));
        assert!(!cl.set_freshness(peer(9), Freshness::Fresh));
        assert!(cl.remove_partner(peer(1)));
        assert!(!cl.remove_partner(peer(1)));
        assert_eq!(cl.len(), 1);
    }

    #[test]
    fn fresh_and_old_partitions() {
        let mut cl = CooperationList::new();
        cl.add_partner(peer(1), Freshness::Fresh);
        cl.add_partner(peer(2), Freshness::NeedsRefresh);
        cl.add_partner(peer(3), Freshness::Unavailable);
        cl.add_partner(peer(4), Freshness::Fresh);
        let fresh: Vec<NodeId> = cl.fresh_partners().collect();
        let old: Vec<NodeId> = cl.old_partners().collect();
        assert_eq!(fresh, vec![peer(1), peer(4)]);
        assert_eq!(old, vec![peer(2), peer(3)]);
    }

    #[test]
    fn stale_fraction_and_trigger() {
        let mut cl = CooperationList::new();
        assert_eq!(cl.stale_fraction(), 0.0);
        assert!(!cl.needs_reconciliation(0.0), "empty list never triggers");
        for i in 0..10 {
            cl.add_partner(peer(i), Freshness::Fresh);
        }
        assert_eq!(cl.stale_fraction(), 0.0);
        for i in 0..3 {
            cl.set_freshness(peer(i), Freshness::NeedsRefresh);
        }
        assert!((cl.stale_fraction() - 0.3).abs() < 1e-12);
        assert!(cl.needs_reconciliation(0.3));
        assert!(!cl.needs_reconciliation(0.31));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The stale fraction always equals |old| / |all|, and the
            /// fresh/old partitions are complementary.
            #[test]
            fn partitions_are_exact(states in prop::collection::vec(0u8..3, 1..120)) {
                let mut cl = CooperationList::new();
                for (i, &s) in states.iter().enumerate() {
                    cl.add_partner(NodeId(i as u32), Freshness::from_u2(s).unwrap());
                }
                let fresh = cl.fresh_partners().count();
                let old = cl.old_partners().count();
                prop_assert_eq!(fresh + old, cl.len());
                let expect = old as f64 / cl.len() as f64;
                prop_assert!((cl.stale_fraction() - expect).abs() < 1e-12);
                // Trigger is exactly the threshold comparison.
                prop_assert_eq!(cl.needs_reconciliation(expect), !cl.is_empty());
                if old < cl.len() {
                    prop_assert!(!cl.needs_reconciliation(expect + 0.01));
                }
            }

            /// After reconcile, no stale entries remain and only retained
            /// peers survive.
            #[test]
            fn reconcile_postconditions(
                states in prop::collection::vec(0u8..3, 1..120),
                keep_mod in 2u32..5,
            ) {
                let mut cl = CooperationList::new();
                for (i, &s) in states.iter().enumerate() {
                    cl.add_partner(NodeId(i as u32), Freshness::from_u2(s).unwrap());
                }
                cl.reconcile(|p| p.0 % keep_mod == 0);
                prop_assert_eq!(cl.stale_fraction(), 0.0);
                for p in cl.partners() {
                    prop_assert_eq!(p.0 % keep_mod, 0);
                    prop_assert_eq!(cl.freshness(p), Some(Freshness::Fresh));
                }
            }
        }
    }

    #[test]
    fn reconcile_resets_and_retains() {
        let mut cl = CooperationList::new();
        cl.add_partner(peer(1), Freshness::NeedsRefresh);
        cl.add_partner(peer(2), Freshness::Unavailable);
        cl.add_partner(peer(3), Freshness::NeedsRefresh);
        // Peer 2 departed: drop it, refresh the rest.
        cl.reconcile(|p| p != peer(2));
        assert_eq!(cl.len(), 2);
        assert!(!cl.contains(peer(2)));
        assert_eq!(cl.stale_fraction(), 0.0);
        assert_eq!(cl.freshness(peer(1)), Some(Freshness::Fresh));
    }
}
