//! Aggregated experiment reports.

use std::collections::BTreeMap;

use p2psim::network::MessageClass;
use p2psim::time::SimTime;

use crate::config::SimConfig;
use crate::kernel::MultiDomainOutcome;
use crate::peerstate::MessageLedger;
use crate::routing::QueryOutcome;

/// The aggregate of one domain run — everything Figures 4–6 plot.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// Domain size.
    pub n_peers: usize,
    /// Freshness threshold.
    pub alpha: f64,
    /// Horizon in seconds.
    pub horizon_s: f64,
    /// Number of queries sampled.
    pub queries: usize,
    /// Mean |P_Q| over queries.
    pub mean_pq: f64,
    /// Mean ground-truth |QS| over queries.
    pub mean_qs: f64,
    /// Mean worst-case stale-flagged peers in P_Q (Figure 4's FP side).
    pub mean_stale_selected: f64,
    /// Mean worst-case stale-flagged peers outside P_Q (FN side).
    pub mean_stale_unselected: f64,
    /// Mean real false positives per query.
    pub mean_real_fp: f64,
    /// Mean real false negatives per query.
    pub mean_real_fn: f64,
    /// Mean answered (true positives) per query.
    pub mean_answered: f64,
    /// Push messages over the horizon.
    pub push_messages: u64,
    /// Reconciliation messages over the horizon.
    pub reconciliation_messages: u64,
    /// Construction messages (initial localsums + rejoins).
    pub construction_messages: u64,
    /// Query + response messages.
    pub query_messages: u64,
    /// Number of reconciliation rounds.
    pub reconciliations: u64,
    /// Wire bytes of push traffic.
    pub push_bytes: u64,
    /// Wire bytes of reconciliation tokens (per-hop upper bound).
    pub reconciliation_bytes: u64,
    /// Wire bytes of construction traffic (localsum payloads).
    pub construction_bytes: u64,
    /// Encoded size of the GS after the last rebuild, bytes.
    pub gs_bytes: usize,
    /// Distinct cells in the final GS.
    pub gs_cells: usize,
    /// Live nodes in the final GS hierarchy.
    pub gs_nodes: usize,
    /// Member summaries decoded + folded by reconciliation rounds —
    /// with the incremental accumulator this scales with the stale
    /// subsets, not with membership × rounds.
    pub reconcile_merged_members: u64,
    /// Live members reconciliation rounds skipped (fresh contribution
    /// reused from the accumulator).
    pub reconcile_skipped_members: u64,
    /// Encoded bytes of the summaries reconciliation actually pulled.
    pub reconcile_delta_bytes: u64,
    /// Final approximate-answer weight per template from the live GS
    /// (§4.3's alternative 2, the paper's choice).
    pub approx_weight_live: Vec<f64>,
    /// The same weights when departed peers' last descriptions are kept
    /// (§4.3's alternative 1).
    pub approx_weight_with_departed: Vec<f64>,
    /// The domain's effective α at the end of the run — equals
    /// [`DomainReport::alpha`] under the fixed policy, the converged
    /// value under [`crate::control::ControlPolicy::Adaptive`].
    pub final_alpha: f64,
    /// `(virtual seconds, α)` trajectory of the domain's controller:
    /// the initial point plus one sample per control epoch (just the
    /// initial point under the fixed policy).
    pub alpha_trajectory: Vec<(f64, f64)>,
}

impl DomainReport {
    /// Builds the report from raw run artifacts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_run(
        cfg: &SimConfig,
        outcomes: &[QueryOutcome],
        counters: &BTreeMap<MessageClass, u64>,
        byte_counters: &BTreeMap<MessageClass, u64>,
        reconciliations: u64,
        gs_bytes: usize,
        gs_cells: usize,
        gs_nodes: usize,
    ) -> Self {
        let q = outcomes.len().max(1) as f64;
        let mean =
            |f: &dyn Fn(&QueryOutcome) -> f64| -> f64 { outcomes.iter().map(f).sum::<f64>() / q };
        Self {
            n_peers: cfg.n_peers,
            alpha: cfg.alpha,
            horizon_s: cfg.horizon.as_secs_f64(),
            queries: outcomes.len(),
            mean_pq: mean(&|o| o.pq.len() as f64),
            mean_qs: mean(&|o| o.qs_size as f64),
            mean_stale_selected: mean(&|o| o.stale_selected as f64),
            mean_stale_unselected: mean(&|o| o.stale_unselected as f64),
            mean_real_fp: mean(&|o| o.real_fp as f64),
            mean_real_fn: mean(&|o| o.real_fn as f64),
            mean_answered: mean(&|o| o.answered as f64),
            push_messages: counters.get(&MessageClass::Push).copied().unwrap_or(0),
            reconciliation_messages: counters
                .get(&MessageClass::Reconciliation)
                .copied()
                .unwrap_or(0),
            construction_messages: counters
                .get(&MessageClass::Construction)
                .copied()
                .unwrap_or(0),
            query_messages: counters.get(&MessageClass::Query).copied().unwrap_or(0)
                + counters
                    .get(&MessageClass::QueryResponse)
                    .copied()
                    .unwrap_or(0),
            reconciliations,
            push_bytes: byte_counters.get(&MessageClass::Push).copied().unwrap_or(0),
            reconciliation_bytes: byte_counters
                .get(&MessageClass::Reconciliation)
                .copied()
                .unwrap_or(0),
            construction_bytes: byte_counters
                .get(&MessageClass::Construction)
                .copied()
                .unwrap_or(0),
            gs_bytes,
            gs_cells,
            gs_nodes,
            reconcile_merged_members: 0,
            reconcile_skipped_members: 0,
            reconcile_delta_bytes: 0,
            approx_weight_live: Vec::new(),
            approx_weight_with_departed: Vec::new(),
            final_alpha: cfg.alpha,
            alpha_trajectory: Vec::new(),
        }
    }

    /// Total update traffic in wire bytes (push + reconciliation).
    pub fn update_bytes(&self) -> u64 {
        self.push_bytes + self.reconciliation_bytes
    }

    /// Figure 4's y-axis: the worst-case fraction of stale answers — all
    /// stale-flagged partners (FP if selected, FN otherwise) over the
    /// domain size.
    pub fn worst_stale_fraction(&self) -> f64 {
        (self.mean_stale_selected + self.mean_stale_unselected) / self.n_peers as f64
    }

    /// Figure 5's y-axis: the real false-negative fraction over the
    /// domain size.
    pub fn real_fn_fraction(&self) -> f64 {
        self.mean_real_fn / self.n_peers as f64
    }

    /// Mean real-FN per query normalized by ground truth (a recall-style
    /// miss rate).
    pub fn mean_real_fn_fraction(&self) -> f64 {
        if self.mean_qs == 0.0 {
            0.0
        } else {
            self.mean_real_fn / self.mean_qs
        }
    }

    /// Recall: answered / ground truth.
    pub fn mean_recall(&self) -> f64 {
        if self.mean_qs == 0.0 {
            1.0
        } else {
            self.mean_answered / self.mean_qs
        }
    }

    /// Precision: answered / visited.
    pub fn mean_precision(&self) -> f64 {
        let visited = self.mean_answered + self.mean_real_fp;
        if visited == 0.0 {
            1.0
        } else {
            self.mean_answered / visited
        }
    }

    /// Figure 6's y-axis: update messages (push + reconciliation), with
    /// every token *hop* counted — the physical-traffic view.
    pub fn update_messages(&self) -> u64 {
        self.push_messages + self.reconciliation_messages
    }

    /// The paper's §6.1.1 accounting: "during reconciliation, only one
    /// message is propagated among all partner peers" — each round counts
    /// once. The two views bracket Figure 6's reading; EXPERIMENTS.md
    /// discusses the gap.
    pub fn update_messages_token_counted(&self) -> u64 {
        self.push_messages + self.reconciliations
    }

    /// Update messages per node per second — eq. (1)'s measured
    /// counterpart.
    pub fn update_messages_per_node_s(&self) -> f64 {
        self.update_messages() as f64 / (self.n_peers as f64 * self.horizon_s)
    }

    /// All messages of the run.
    pub fn total_messages(&self) -> u64 {
        self.push_messages
            + self.reconciliation_messages
            + self.construction_messages
            + self.query_messages
    }
}

/// The aggregate of one *dynamic* multi-domain run: inter-domain lookups
/// routed while churn, drift and reconciliation were live.
#[derive(Debug, Clone)]
pub struct MultiDomainReport {
    /// Network size.
    pub n_peers: usize,
    /// Number of constructed domains.
    pub n_domains: usize,
    /// Freshness threshold.
    pub alpha: f64,
    /// Horizon in seconds.
    pub horizon_s: f64,
    /// Inter-domain lookups actually posed (down origins skip theirs).
    pub queries: usize,
    /// Mean network-wide recall over the lookups.
    pub mean_recall: f64,
    /// Mean stale answers per lookup (summary-selected peers that were
    /// down or no longer matching).
    pub mean_stale_answers: f64,
    /// Mean per-lookup stale-answer *fraction* of summary routing:
    /// `stale / (stale + summary_results)` averaged over the lookups in
    /// which the summaries selected anybody at all (summary-free
    /// lookups — down origins, cache-only answers — are excluded, not
    /// averaged in as zeros). Cache-recovered answers are excluded
    /// too — no summary vouched for them — so this is exactly the
    /// network-wide form of the per-domain signal the adaptive control
    /// plane steers toward its target.
    pub mean_stale_answer_fraction: f64,
    /// Mean network-wide false negatives per lookup.
    pub mean_false_negatives: f64,
    /// Mean messages per lookup.
    pub mean_messages: f64,
    /// Mean domains visited per lookup.
    pub mean_domains_visited: f64,
    /// Fraction of lookups that met their target.
    pub satisfied_fraction: f64,
    /// Reconciliation rounds summed over all domains.
    pub reconciliations: u64,
    /// Push messages over the horizon (all domains).
    pub push_messages: u64,
    /// Reconciliation token hops over the horizon (all domains).
    pub reconciliation_messages: u64,
    /// Construction messages (initial localsums + rejoins).
    pub construction_messages: u64,
    /// Member summaries decoded + folded by reconciliation rounds
    /// across all domains (scales with the stale subsets under
    /// incremental GS maintenance).
    pub reconcile_merged_members: u64,
    /// Live members reconciliation rounds skipped network-wide.
    pub reconcile_skipped_members: u64,
    /// Encoded bytes of the summaries reconciliation actually pulled.
    pub reconcile_delta_bytes: u64,
    /// Cache hits observed during inter-domain flooding.
    pub cache_hits: u64,
    /// Mean virtual seconds between posing a lookup and completing it.
    /// Strictly positive under the latency message plane; 0.0 in
    /// instantaneous mode.
    pub mean_time_to_answer_s: f64,
    /// High-water mark of messages simultaneously in flight on the
    /// message plane (0 in instantaneous mode).
    pub peak_in_flight: u64,
    /// Per-class delivery-latency distribution: `(class, deliveries,
    /// mean in-flight seconds)`, for every class that saw latency-mode
    /// deliveries. Empty in instantaneous mode.
    pub latency_by_class: Vec<(MessageClass, u64, f64)>,
    /// Per-lookup `(virtual time in seconds, recall)` samples, in query
    /// order — the raw series behind recall-over-time analyses.
    pub samples: Vec<(f64, f64)>,
    /// Final effective α of every non-dissolved domain — the converged
    /// α distribution under the adaptive policy, a constant vector
    /// under the fixed one.
    pub final_alphas: Vec<f64>,
    /// Mean of [`MultiDomainReport::final_alphas`] (the configured α
    /// when no domain survived).
    pub mean_final_alpha: f64,
    /// Per-domain-slot `(virtual seconds, α)` controller trajectories,
    /// indexed by domain slot (dissolved slots keep the trajectory they
    /// had at dissolution time).
    pub alpha_trajectories: Vec<Vec<(f64, f64)>>,
    /// Completed SP rebirths over the run
    /// ([`crate::config::SimConfig::rebirth`]; 0 when disabled).
    pub rebirths: u64,
    /// `(virtual seconds, live domains)` trajectory: the initial point
    /// plus one sample per dissolution and per rebirth. Empty unless
    /// SP churn ([`crate::config::SimConfig::sp_lifetime`]) is on.
    /// With rebirth enabled this stays near its initial value over
    /// long horizons; without it the count decays monotonically —
    /// `BENCH_rebirth.json`'s stationarity evidence.
    pub domain_count_trajectory: Vec<(f64, usize)>,
    /// Live domains at t = 0 (equals [`MultiDomainReport::n_domains`]
    /// when no SP ever departed).
    pub initial_domains: usize,
    /// Minimum live-domain count ever sampled over the run.
    pub min_live_domains: usize,
}

impl MultiDomainReport {
    /// Builds the report from a finished kernel run.
    #[allow(clippy::too_many_arguments)]
    pub fn from_run(
        cfg: &SimConfig,
        n_domains: usize,
        outcomes: &[(SimTime, MultiDomainOutcome)],
        ledger: &MessageLedger,
        reconciliations: u64,
        cache_hits: u64,
        peak_in_flight: u64,
    ) -> Self {
        let q = outcomes.len().max(1) as f64;
        let mean = |f: &dyn Fn(&MultiDomainOutcome) -> f64| -> f64 {
            outcomes.iter().map(|(_, o)| f(o)).sum::<f64>() / q
        };
        Self {
            n_peers: cfg.n_peers,
            n_domains,
            alpha: cfg.alpha,
            horizon_s: cfg.horizon.as_secs_f64(),
            queries: outcomes.len(),
            mean_recall: mean(&|o| o.recall()),
            mean_stale_answers: mean(&|o| o.stale_answers as f64),
            mean_stale_answer_fraction: {
                let (sum, cnt) = outcomes.iter().fold((0.0f64, 0usize), |(s, c), (_, o)| {
                    let total = o.stale_answers + o.summary_results;
                    if total == 0 {
                        (s, c)
                    } else {
                        (s + o.stale_answers as f64 / total as f64, c + 1)
                    }
                });
                if cnt == 0 {
                    0.0
                } else {
                    sum / cnt as f64
                }
            },
            mean_false_negatives: mean(&|o| o.false_negatives() as f64),
            mean_messages: mean(&|o| o.messages as f64),
            mean_domains_visited: mean(&|o| o.domains_visited as f64),
            satisfied_fraction: mean(&|o| if o.satisfied { 1.0 } else { 0.0 }),
            reconciliations,
            push_messages: ledger.sent(MessageClass::Push),
            reconciliation_messages: ledger.sent(MessageClass::Reconciliation),
            construction_messages: ledger.sent(MessageClass::Construction),
            reconcile_merged_members: ledger.reconcile_work().merged,
            reconcile_skipped_members: ledger.reconcile_work().skipped,
            reconcile_delta_bytes: ledger.reconcile_work().delta_bytes,
            cache_hits,
            mean_time_to_answer_s: mean(&|o| o.time_to_answer_s),
            peak_in_flight,
            latency_by_class: ledger
                .latency_counters()
                .iter()
                .map(|(&class, &(n, total_us))| {
                    (class, n, total_us as f64 / n.max(1) as f64 / 1_000_000.0)
                })
                .collect(),
            samples: outcomes
                .iter()
                .map(|(t, o)| (t.as_secs_f64(), o.recall()))
                .collect(),
            final_alphas: Vec::new(),
            mean_final_alpha: cfg.alpha,
            alpha_trajectories: Vec::new(),
            rebirths: 0,
            domain_count_trajectory: Vec::new(),
            initial_domains: n_domains,
            min_live_domains: n_domains,
        }
    }

    /// Time-weighted mean of the live-domain count over the trajectory
    /// (each sample holds until the next; the last holds to the
    /// horizon). Falls back to the final count when SP churn never
    /// sampled a trajectory. The `BENCH_rebirth.json` stationarity
    /// check compares this against [`MultiDomainReport::initial_domains`].
    pub fn mean_live_domains(&self) -> f64 {
        if self.domain_count_trajectory.is_empty() {
            return self.n_domains as f64;
        }
        let mut weighted = 0.0;
        let mut last_t = 0.0;
        let mut last_n = self.domain_count_trajectory[0].1 as f64;
        for &(t, n) in &self.domain_count_trajectory {
            weighted += last_n * (t - last_t).max(0.0);
            last_t = t;
            last_n = n as f64;
        }
        weighted += last_n * (self.horizon_s - last_t).max(0.0);
        if self.horizon_s > 0.0 {
            weighted / self.horizon_s
        } else {
            last_n
        }
    }

    /// Mean recall of the lookups posed strictly before `t_s` seconds
    /// (1.0 when none were).
    pub fn recall_before(&self, t_s: f64) -> f64 {
        Self::mean_recall_of(self.samples.iter().filter(|(t, _)| *t < t_s))
    }

    /// Mean recall of the lookups posed at or after `t_s` seconds.
    pub fn recall_after(&self, t_s: f64) -> f64 {
        Self::mean_recall_of(self.samples.iter().filter(|(t, _)| *t >= t_s))
    }

    fn mean_recall_of<'a>(it: impl Iterator<Item = &'a (f64, f64)>) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for (_, r) in it {
            sum += r;
            n += 1;
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::network::NodeId;

    fn outcome(pq: usize, stale_sel: usize, stale_unsel: usize, fns: usize) -> QueryOutcome {
        QueryOutcome {
            pq: (0..pq as u32).map(NodeId).collect(),
            visited: (0..pq as u32).map(NodeId).collect(),
            answered: pq.saturating_sub(1),
            qs_size: pq,
            stale_selected: stale_sel,
            stale_unselected: stale_unsel,
            real_fp: 1,
            real_fn: fns,
            messages: 1 + 2 * pq as u64,
        }
    }

    fn report(outcomes: &[QueryOutcome]) -> DomainReport {
        let cfg = SimConfig::paper_defaults(100, 0.3);
        let mut counters = BTreeMap::new();
        counters.insert(MessageClass::Push, 50u64);
        counters.insert(MessageClass::Reconciliation, 30u64);
        counters.insert(MessageClass::Query, 200u64);
        let mut bytes = BTreeMap::new();
        bytes.insert(MessageClass::Push, 50u64 * 41);
        bytes.insert(MessageClass::Reconciliation, 30u64 * 2048);
        DomainReport::from_run(&cfg, outcomes, &counters, &bytes, 3, 4096, 40, 70)
    }

    #[test]
    fn fractions_and_messages() {
        let outs = vec![outcome(10, 2, 8, 1), outcome(10, 4, 6, 3)];
        let r = report(&outs);
        assert_eq!(r.queries, 2);
        assert!((r.mean_pq - 10.0).abs() < 1e-12);
        // (3 + 7) / 100.
        assert!((r.worst_stale_fraction() - 0.10).abs() < 1e-12);
        assert!((r.real_fn_fraction() - 0.02).abs() < 1e-12);
        assert_eq!(r.update_messages(), 80);
        let per_node_s = r.update_messages_per_node_s();
        assert!((per_node_s - 80.0 / (100.0 * r.horizon_s)).abs() < 1e-15);
        assert_eq!(r.total_messages(), 50 + 30 + 200);
    }

    #[test]
    fn recall_precision() {
        let outs = vec![outcome(10, 0, 0, 1)];
        let r = report(&outs);
        // answered 9 of qs 10.
        assert!((r.mean_recall() - 0.9).abs() < 1e-12);
        assert!((r.mean_precision() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let r = report(&[]);
        assert_eq!(r.queries, 0);
        assert_eq!(r.worst_stale_fraction(), 0.0);
        assert_eq!(r.mean_recall(), 1.0);
        assert_eq!(r.mean_precision(), 1.0);
    }
}
