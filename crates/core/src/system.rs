//! The full multi-domain system facade: §5.2.2's inter-domain query
//! routing with partial- and total-lookup termination.
//!
//! When a domain `d_i` answers fewer than the `C_t` results the user
//! requires, the paper floods outward exploiting *group locality*: the
//! summary peer sends a flooding request to the peers that answered
//! (`P_i`) **and** to the originator; each of them forwards the query to
//! its neighbors *outside its domain* with a limited TTL, stopping when a
//! new domain is reached. The SP additionally contacts the summary peers
//! it knows through long-range links, "accelerating covering a large
//! number of domains". Routing terminates when enough results are
//! gathered (*partial lookup*) or the network is covered (*total
//! lookup*).
//!
//! The protocol itself lives in the unified kernel
//! ([`crate::kernel::SimKernel::route_live`]) and always runs against the
//! *live* per-domain GS/CL state. [`MultiDomainSystem`] is the frozen
//! t = 0 view (construction + fresh global summaries, no churn) the
//! static experiments and tests use; for routing *under* churn see
//! [`crate::kernel::MultiDomainSim`].

use p2psim::network::{Network, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::construction::Domains;
use crate::error::P2pError;
use crate::kernel::SimKernel;
pub use crate::kernel::{LookupTarget, MultiDomainOutcome};

/// A constructed multi-domain summary-management system over a power-law
/// topology: the static-network view of the whole paper (construction +
/// global summaries + inter-domain query processing).
pub struct MultiDomainSystem {
    kernel: SimKernel,
}

impl MultiDomainSystem {
    /// Builds the system: topology → SP election → domain construction →
    /// per-peer data + local summaries → per-domain global summaries →
    /// SP long-range links.
    pub fn build(cfg: &SimConfig, domain_target: usize) -> Result<Self, P2pError> {
        Ok(Self {
            kernel: SimKernel::networked(*cfg, domain_target, None)?,
        })
    }

    /// Cache hits observed during flooding so far.
    pub fn cache_hits(&self) -> u64 {
        self.kernel.cache_hits()
    }

    /// The underlying network (counters, topology).
    pub fn network(&self) -> &Network {
        self.kernel.net.as_ref().expect("networked kernel")
    }

    /// The domain map.
    pub fn domains(&self) -> &Domains {
        self.kernel.topo.as_ref().expect("networked kernel")
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.kernel.template_count()
    }

    /// Ground truth: all peers currently matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.kernel.true_matches(template)
    }

    /// Routes a query posed at `origin` through the network (§5.2.2).
    pub fn route(
        &mut self,
        origin: NodeId,
        template: usize,
        target: LookupTarget,
    ) -> MultiDomainOutcome {
        self.kernel.route_live(origin, template, target)
    }

    /// Convenience: average outcome over `samples` random origins.
    pub fn route_averaged(
        &mut self,
        template: usize,
        target: LookupTarget,
        samples: usize,
        seed: u64,
    ) -> (f64, f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.network().len() as u32;
        let mut msgs = 0.0;
        let mut recall = 0.0;
        let mut domains = 0.0;
        let mut taken = 0usize;
        let mut guard = 0usize;
        while taken < samples && guard < samples * 50 {
            guard += 1;
            let origin = NodeId(rng.gen_range(0..n));
            if self.domains().assignment[origin.index()].is_none() {
                continue;
            }
            let out = self.route(origin, template, target);
            msgs += out.messages as f64;
            recall += out.recall();
            domains += out.domains_visited as f64;
            taken += 1;
        }
        let k = taken.max(1) as f64;
        (msgs / k, recall / k, domains / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::time::SimTime;

    fn cfg(n: usize, seed: u64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, 0.3);
        c.horizon = SimTime::from_hours(1);
        c.records_per_peer = 10;
        c.seed = seed;
        c
    }

    #[test]
    fn build_covers_network_with_domains() {
        let sys = MultiDomainSystem::build(&cfg(300, 1), 40).unwrap();
        assert!(sys.domains().superpeers.len() >= 6);
        let assigned = sys.domains().assigned_count();
        assert!(assigned as f64 > 0.9 * (300 - sys.domains().superpeers.len()) as f64);
    }

    #[test]
    fn total_lookup_finds_everything() {
        let mut sys = MultiDomainSystem::build(&cfg(250, 2), 30).unwrap();
        let matches = sys.true_matches(0);
        assert!(!matches.is_empty(), "workload guarantees ~10% matches");
        // From several origins, total lookup reaches full recall: the GS
        // layer is exact on crisp predicates, and the SP long links +
        // flooding cover all domains.
        let origin = NodeId(
            (0..250u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        let out = sys.route(origin, 0, LookupTarget::Total);
        assert_eq!(out.results, out.results_total, "total lookup recall");
        assert!(out.satisfied);
        assert!(out.domains_visited >= 2, "must have crossed domains");
        assert_eq!(
            out.stale_answers, 0,
            "fresh static system has no stale answers"
        );
    }

    #[test]
    fn partial_lookup_stops_early() {
        let mut sys = MultiDomainSystem::build(&cfg(250, 3), 30).unwrap();
        let origin = NodeId(
            (0..250u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        let total = sys.route(origin, 0, LookupTarget::Total);
        let partial = sys.route(origin, 0, LookupTarget::Partial(2));
        assert!(partial.results >= 2.min(partial.results_total));
        assert!(
            partial.messages <= total.messages,
            "partial {} must not exceed total {}",
            partial.messages,
            total.messages
        );
        assert!(partial.domains_visited <= total.domains_visited);
    }

    #[test]
    fn partial_lookup_message_cost_grows_with_ct() {
        let mut sys = MultiDomainSystem::build(&cfg(300, 4), 30).unwrap();
        let (m1, _, d1) = sys.route_averaged(0, LookupTarget::Partial(1), 10, 9);
        let (m8, _, d8) = sys.route_averaged(0, LookupTarget::Partial(8), 10, 9);
        assert!(m8 >= m1, "more results need more messages: {m8} vs {m1}");
        assert!(d8 >= d1, "and more domains: {d8} vs {d1}");
    }

    #[test]
    fn flood_ttl_is_respected_not_clamped() {
        // The configured TTL must reach the routing layer as-is (the old
        // implementation silently clamped it to 2).
        let mut base = cfg(250, 6);
        base.flood_ttl = 1;
        let mut narrow = MultiDomainSystem::build(&base, 30).unwrap();
        base.flood_ttl = 4;
        let mut wide = MultiDomainSystem::build(&base, 30).unwrap();
        let origin = NodeId(
            (0..250u32)
                .find(|&i| narrow.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        let out_narrow = narrow.route(origin, 0, LookupTarget::Total);
        let out_wide = wide.route(origin, 0, LookupTarget::Total);
        // A wider flood forwards strictly more messages on the same
        // topology and query load.
        assert!(
            out_wide.messages > out_narrow.messages,
            "TTL 4 ({}) must out-message TTL 1 ({})",
            out_wide.messages,
            out_narrow.messages
        );
    }

    #[test]
    fn caches_warm_up_and_cut_costs() {
        let mut sys = MultiDomainSystem::build(&cfg(300, 8), 30).unwrap();
        let origin = NodeId(
            (0..300u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        // Warm the caches with a total lookup, then measure a partial
        // lookup: cached neighbors let it satisfy `C_t` with fewer (or at
        // worst equal) domain visits than the cold system needed.
        let need = sys.true_matches(0).len().clamp(2, 10);
        let mut cold_sys = MultiDomainSystem::build(&cfg(300, 8), 30).unwrap();
        let cold = cold_sys.route(origin, 0, LookupTarget::Partial(need));

        let _ = sys.route(origin, 0, LookupTarget::Total); // warm-up
        let warm = sys.route(origin, 0, LookupTarget::Partial(need));
        assert!(
            warm.domains_visited <= cold.domains_visited,
            "warm visited {} domains vs cold {}",
            warm.domains_visited,
            cold.domains_visited
        );
        assert!(warm.satisfied);
        assert!(sys.cache_hits() > 0, "flooded neighbors served from cache");
        // Total-lookup recall is unaffected by caching.
        let total_warm = sys.route(origin, 0, LookupTarget::Total);
        assert_eq!(total_warm.results, total_warm.results_total);
    }

    #[test]
    fn cached_answers_never_inflate_results() {
        // Cache entries are validated against ground truth, so results
        // never exceed the true match count.
        let mut sys = MultiDomainSystem::build(&cfg(200, 9), 25).unwrap();
        for i in 0..10u32 {
            let origin = NodeId(i * 7 % 200);
            if sys.domains().assignment[origin.index()].is_none() {
                continue;
            }
            let out = sys.route(origin, 0, LookupTarget::Total);
            assert!(out.results <= out.results_total);
        }
    }

    #[test]
    fn unassigned_origin_yields_empty_outcome() {
        let mut sys = MultiDomainSystem::build(&cfg(100, 5), 20).unwrap();
        // A superpeer is not a partner: route from it directly is not
        // defined by §5 (queries are posed at client peers).
        let sp = sys.domains().superpeers[0];
        let out = sys.route(sp, 0, LookupTarget::Partial(1));
        assert_eq!(out.messages, 0);
        assert!(!out.satisfied);
    }

    #[test]
    fn deterministic_construction() {
        let a = MultiDomainSystem::build(&cfg(150, 7), 25).unwrap();
        let b = MultiDomainSystem::build(&cfg(150, 7), 25).unwrap();
        assert_eq!(a.domains().superpeers, b.domains().superpeers);
        assert_eq!(a.domains().assignment, b.domains().assignment);
        assert_eq!(a.true_matches(0), b.true_matches(0));
    }
}
