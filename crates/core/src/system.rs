//! The full multi-domain system: §5.2.2's inter-domain query routing
//! with partial- and total-lookup termination.
//!
//! When a domain `d_i` answers fewer than the `C_t` results the user
//! requires, the paper floods outward exploiting *group locality*: the
//! summary peer sends a flooding request to the peers that answered
//! (`P_i`) **and** to the originator; each of them forwards the query to
//! its neighbors *outside its domain* with a limited TTL, stopping when a
//! new domain is reached. The SP additionally contacts the summary peers
//! it knows through long-range links, "accelerating covering a large
//! number of domains". Routing terminates when enough results are
//! gathered (*partial lookup*) or the network is covered (*total
//! lookup*).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use fuzzy::bk::BackgroundKnowledge;
use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::{reformulate, SummaryQuery};
use saintetiq::query::relevant_sources;
use saintetiq::wire;

use crate::cache::QueryCache;
use crate::config::SimConfig;
use crate::construction::{construct_domains, elect_superpeers, Domains};
use crate::coop::CooperationList;
use crate::error::P2pError;
use crate::freshness::Freshness;
use crate::workload::{generate_peer_data, make_templates, PeerData, QueryTemplate};

/// How many results a query needs (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupTarget {
    /// `C_t` result tuples suffice.
    Partial(usize),
    /// Every result in the network is wanted.
    Total,
}

/// Per-summary-peer state.
#[derive(Debug)]
struct SpState {
    gs: SummaryTree,
    cl: CooperationList,
    /// Long-range links to other summary peers (average degree k).
    long_links: Vec<NodeId>,
}

/// Outcome of one multi-domain query.
#[derive(Debug, Clone)]
pub struct MultiDomainOutcome {
    /// Result tuples gathered (one per answering peer — the paper's
    /// high-selectivity assumption).
    pub results: usize,
    /// Ground-truth result count network-wide.
    pub results_total: usize,
    /// Domains whose GS was queried.
    pub domains_visited: usize,
    /// Total messages (intra-domain + flooding + responses).
    pub messages: u64,
    /// Whether the lookup target was met.
    pub satisfied: bool,
}

impl MultiDomainOutcome {
    /// Network-wide recall of the query.
    pub fn recall(&self) -> f64 {
        if self.results_total == 0 {
            1.0
        } else {
            self.results as f64 / self.results_total as f64
        }
    }
}

/// A constructed multi-domain summary-management system over a power-law
/// topology: the static-network view of the whole paper (construction +
/// global summaries + inter-domain query processing).
pub struct MultiDomainSystem {
    net: Network,
    domains: Domains,
    templates: Vec<QueryTemplate>,
    reformulated: Vec<SummaryQuery>,
    peers: Vec<Option<PeerData>>,
    sps: BTreeMap<NodeId, SpState>,
    flood_ttl: u32,
    /// §5.2.2 group locality: per-peer answer caches consulted by the
    /// inter-domain flood before paying for a domain visit.
    caches: Vec<QueryCache>,
    /// Cache hits observed across routed queries (metrics).
    cache_hits: u64,
}

impl MultiDomainSystem {
    /// Builds the system: topology → SP election → domain construction →
    /// per-peer data + local summaries → per-domain global summaries →
    /// SP long-range links.
    pub fn build(cfg: &SimConfig, domain_target: usize) -> Result<Self, P2pError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let topo = TopologyConfig { nodes: cfg.n_peers, m: cfg.topology_m, ..Default::default() };
        let mut net = Network::new(Graph::barabasi_albert(&topo, &mut rng));

        let sp_count = (cfg.n_peers / domain_target.max(2)).max(1);
        let superpeers = elect_superpeers(&net, sp_count);
        let domains = construct_domains(&mut net, &superpeers, cfg.sumpeer_ttl);

        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(cfg.template_count);
        let reformulated: Vec<SummaryQuery> = templates
            .iter()
            .map(|t| reformulate(&t.query, &bk))
            .collect::<Result<_, _>>()?;

        // Peer data for every partner.
        let mut peers: Vec<Option<PeerData>> = vec![None; cfg.n_peers];
        for (i, assignment) in domains.assignment.iter().enumerate() {
            if assignment.is_some() {
                peers[i] = Some(generate_peer_data(
                    &mut rng,
                    i as u32,
                    &bk,
                    &templates,
                    cfg.match_fraction,
                    cfg.records_per_peer,
                ));
            }
        }

        // Global summaries per SP.
        let mut sps = BTreeMap::new();
        for &sp in &superpeers {
            let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
            let mut cl = CooperationList::new();
            for member in domains.members(sp) {
                if let Some(data) = &peers[member.index()] {
                    let tree =
                        wire::decode(&data.summary).expect("locally encoded summaries decode");
                    saintetiq::merge::merge_into(&mut gs, &tree, &EngineConfig::default())
                        .expect("same CBK");
                    cl.add_partner(member, Freshness::Fresh);
                }
            }
            sps.insert(sp, SpState { gs, cl, long_links: Vec::new() });
        }

        // Long-range SP links: each SP knows ~k random other SPs.
        let sp_ids: Vec<NodeId> = superpeers.clone();
        let k = cfg.interdomain_k.round() as usize;
        for &sp in &sp_ids {
            let mut links = BTreeSet::new();
            let mut guard = 0;
            while links.len() < k.min(sp_ids.len().saturating_sub(1)) && guard < 100 {
                guard += 1;
                let other = sp_ids[rng.gen_range(0..sp_ids.len())];
                if other != sp {
                    links.insert(other);
                }
            }
            sps.get_mut(&sp).expect("sp registered").long_links = links.into_iter().collect();
        }

        let caches = (0..cfg.n_peers).map(|_| QueryCache::new(8)).collect();
        Ok(Self {
            net,
            domains,
            templates,
            reformulated,
            peers,
            sps,
            flood_ttl: cfg.flood_ttl.min(2),
            caches,
            cache_hits: 0,
        })
    }

    /// Cache hits observed during flooding so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The underlying network (counters, topology).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The domain map.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// Number of query templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Ground truth: all peers currently matching `template`.
    pub fn true_matches(&self, template: usize) -> Vec<NodeId> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, d)| d.as_ref().map(|d| d.matches(template)).unwrap_or(false))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Queries one domain's GS: relevant peers, answers, messages.
    fn query_domain(&self, sp: NodeId, template: usize) -> (Vec<NodeId>, usize, u64) {
        let state = &self.sps[&sp];
        let prop = &self.reformulated[template].proposition;
        // Only current partners are contacted: the CL is the membership
        // authority even when the GS still carries departed peers' cells.
        let pq: Vec<NodeId> = relevant_sources(&state.gs, prop)
            .into_iter()
            .map(|s| NodeId(s.0))
            .filter(|p| state.cl.contains(*p))
            .collect();
        let answering: Vec<NodeId> = pq
            .iter()
            .copied()
            .filter(|p| {
                self.peers[p.index()]
                    .as_ref()
                    .map(|d| d.matches(template))
                    .unwrap_or(false)
            })
            .collect();
        // 1 query to the SP happens at the caller; here: forwards + hits.
        let found = answering.len();
        let messages = pq.len() as u64 + found as u64;
        (answering, found, messages)
    }

    /// Routes a query posed at `origin` through the network (§5.2.2).
    pub fn route(&mut self, origin: NodeId, template: usize, target: LookupTarget) -> MultiDomainOutcome {
        let results_total = self.true_matches(template).len();
        let need = match target {
            LookupTarget::Partial(ct) => ct,
            LookupTarget::Total => usize::MAX,
        };

        let mut messages: u64 = 0;
        let mut answered: BTreeSet<NodeId> = BTreeSet::new();
        let mut visited_domains: BTreeSet<NodeId> = BTreeSet::new();
        // Domains to process next: discovered through flooding/long links.
        let mut frontier: VecDeque<NodeId> = VecDeque::new();

        let Some(home_sp) = self.domains.assignment[origin.index()] else {
            return MultiDomainOutcome {
                results: 0,
                results_total,
                domains_visited: 0,
                messages: 0,
                satisfied: false,
            };
        };
        frontier.push_back(home_sp);

        'domains: while let Some(sp) = frontier.pop_front() {
            if !visited_domains.insert(sp) {
                continue;
            }
            messages += 1; // the query message to this domain's SP
            let (answering, _found, msgs) = self.query_domain(sp, template);
            messages += msgs;
            answered.extend(answering.iter().copied());
            self.net.count_messages(MessageClass::Query, 1 + msgs);
            // Group locality (§5.2.2): the originator and the answering
            // peers remember who answered this template.
            self.caches[origin.index()].insert(template, answering.clone());
            for &p in &answering {
                self.caches[p.index()].insert(template, answering.clone());
            }
            if answered.len() >= need {
                break;
            }

            // §5.2.2: flood requests to the answering peers and the
            // originator, who forward the query outside their domain with
            // a limited TTL; plus the SP's long-range links.
            let mut flooders: Vec<NodeId> = answering;
            if self.domains.assignment[origin.index()] == Some(sp) {
                flooders.push(origin);
            }
            self.net
                .count_messages(MessageClass::Flood, flooders.len() as u64);
            messages += flooders.len() as u64;
            for f in flooders {
                for (reached, _) in self.net.flood_reach(f, self.flood_ttl) {
                    messages += 1; // each forward is a message
                    // A reached neighbor with a cached answer for this
                    // template replies immediately — "its neighbors may
                    // have cached answers to similar queries".
                    if let Some(hit) = self.caches[reached.index()].lookup(template) {
                        let cached = hit.answering.clone();
                        self.cache_hits += 1;
                        messages += 1; // the cache-holder's reply
                        for q in cached {
                            // Validate against ground truth: stale cache
                            // entries (peer gone or drifted) add nothing.
                            let valid = self.peers[q.index()]
                                .as_ref()
                                .map(|d| d.matches(template))
                                .unwrap_or(false);
                            if valid {
                                answered.insert(q);
                            }
                        }
                        if answered.len() >= need {
                            break 'domains;
                        }
                    }
                    if let Some(other_sp) = self.domains.assignment[reached.index()] {
                        if !visited_domains.contains(&other_sp) {
                            frontier.push_back(other_sp);
                        }
                    }
                }
            }
            let links = self.sps[&sp].long_links.clone();
            for other in links {
                messages += 1;
                if !visited_domains.contains(&other) {
                    frontier.push_back(other);
                }
            }
        }

        MultiDomainOutcome {
            results: answered.len(),
            results_total,
            domains_visited: visited_domains.len(),
            messages,
            satisfied: answered.len() >= need.min(results_total),
        }
    }

    /// Convenience: average outcome over `samples` random origins.
    pub fn route_averaged(
        &mut self,
        template: usize,
        target: LookupTarget,
        samples: usize,
        seed: u64,
    ) -> (f64, f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut msgs = 0.0;
        let mut recall = 0.0;
        let mut domains = 0.0;
        let mut taken = 0usize;
        let mut guard = 0usize;
        while taken < samples && guard < samples * 50 {
            guard += 1;
            let origin = NodeId(rng.gen_range(0..self.net.len() as u32));
            if self.domains.assignment[origin.index()].is_none() {
                continue;
            }
            let out = self.route(origin, template, target);
            msgs += out.messages as f64;
            recall += out.recall();
            domains += out.domains_visited as f64;
            taken += 1;
        }
        let n = taken.max(1) as f64;
        (msgs / n, recall / n, domains / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::time::SimTime;

    fn cfg(n: usize, seed: u64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, 0.3);
        c.horizon = SimTime::from_hours(1);
        c.records_per_peer = 10;
        c.seed = seed;
        c
    }

    #[test]
    fn build_covers_network_with_domains() {
        let sys = MultiDomainSystem::build(&cfg(300, 1), 40).unwrap();
        assert!(sys.domains().superpeers.len() >= 6);
        let assigned = sys.domains().assigned_count();
        assert!(assigned as f64 > 0.9 * (300 - sys.domains().superpeers.len()) as f64);
    }

    #[test]
    fn total_lookup_finds_everything() {
        let mut sys = MultiDomainSystem::build(&cfg(250, 2), 30).unwrap();
        let matches = sys.true_matches(0);
        assert!(!matches.is_empty(), "workload guarantees ~10% matches");
        // From several origins, total lookup reaches full recall: the GS
        // layer is exact on crisp predicates, and the SP long links +
        // flooding cover all domains.
        let origin = NodeId(
            (0..250u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        let out = sys.route(origin, 0, LookupTarget::Total);
        assert_eq!(out.results, out.results_total, "total lookup recall");
        assert!(out.satisfied);
        assert!(out.domains_visited >= 2, "must have crossed domains");
    }

    #[test]
    fn partial_lookup_stops_early() {
        let mut sys = MultiDomainSystem::build(&cfg(250, 3), 30).unwrap();
        let origin = NodeId(
            (0..250u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        let total = sys.route(origin, 0, LookupTarget::Total);
        let partial = sys.route(origin, 0, LookupTarget::Partial(2));
        assert!(partial.results >= 2.min(partial.results_total));
        assert!(
            partial.messages <= total.messages,
            "partial {} must not exceed total {}",
            partial.messages,
            total.messages
        );
        assert!(partial.domains_visited <= total.domains_visited);
    }

    #[test]
    fn partial_lookup_message_cost_grows_with_ct() {
        let mut sys = MultiDomainSystem::build(&cfg(300, 4), 30).unwrap();
        let (m1, _, d1) = sys.route_averaged(0, LookupTarget::Partial(1), 10, 9);
        let (m8, _, d8) = sys.route_averaged(0, LookupTarget::Partial(8), 10, 9);
        assert!(m8 >= m1, "more results need more messages: {m8} vs {m1}");
        assert!(d8 >= d1, "and more domains: {d8} vs {d1}");
    }

    #[test]
    fn caches_warm_up_and_cut_costs() {
        let mut sys = MultiDomainSystem::build(&cfg(300, 8), 30).unwrap();
        let origin = NodeId(
            (0..300u32)
                .find(|&i| sys.domains().assignment[i as usize].is_some())
                .expect("some partner"),
        );
        // Warm the caches with a total lookup, then measure a partial
        // lookup: cached neighbors let it satisfy `C_t` with fewer (or at
        // worst equal) domain visits than the cold system needed.
        let need = sys.true_matches(0).len().min(10).max(2);
        let mut cold_sys = MultiDomainSystem::build(&cfg(300, 8), 30).unwrap();
        let cold = cold_sys.route(origin, 0, LookupTarget::Partial(need));

        let _ = sys.route(origin, 0, LookupTarget::Total); // warm-up
        let warm = sys.route(origin, 0, LookupTarget::Partial(need));
        assert!(
            warm.domains_visited <= cold.domains_visited,
            "warm visited {} domains vs cold {}",
            warm.domains_visited,
            cold.domains_visited
        );
        assert!(warm.satisfied);
        assert!(sys.cache_hits() > 0, "flooded neighbors served from cache");
        // Total-lookup recall is unaffected by caching.
        let total_warm = sys.route(origin, 0, LookupTarget::Total);
        assert_eq!(total_warm.results, total_warm.results_total);
    }

    #[test]
    fn cached_answers_never_inflate_results() {
        // Cache entries are validated against ground truth, so results
        // never exceed the true match count.
        let mut sys = MultiDomainSystem::build(&cfg(200, 9), 25).unwrap();
        for i in 0..10u32 {
            let origin = NodeId(i * 7 % 200);
            if sys.domains().assignment[origin.index()].is_none() {
                continue;
            }
            let out = sys.route(origin, 0, LookupTarget::Total);
            assert!(out.results <= out.results_total);
        }
    }

    #[test]
    fn unassigned_origin_yields_empty_outcome() {
        let mut sys = MultiDomainSystem::build(&cfg(100, 5), 20).unwrap();
        // A superpeer is not a partner: route from it directly is not
        // defined by §5 (queries are posed at client peers).
        let sp = sys.domains().superpeers[0];
        let out = sys.route(sp, 0, LookupTarget::Partial(1));
        assert_eq!(out.messages, 0);
        assert!(!out.satisfied);
    }

    #[test]
    fn deterministic_construction() {
        let a = MultiDomainSystem::build(&cfg(150, 7), 25).unwrap();
        let b = MultiDomainSystem::build(&cfg(150, 7), 25).unwrap();
        assert_eq!(a.domains().superpeers, b.domains().superpeers);
        assert_eq!(a.domains().assignment, b.domains().assignment);
        assert_eq!(a.true_matches(0), b.true_matches(0));
    }
}
