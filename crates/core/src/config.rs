//! Simulation parameters — the paper's Table 3 as a typed configuration.
//!
//! | parameter | paper value |
//! |---|---|
//! | local summary lifetime `L` | skewed, mean 3 h / median 1 h |
//! | number of peers `n` | 16 – 5000 |
//! | number of queries `q` | 200 |
//! | matching nodes / query hits | 10 % |
//! | freshness threshold `α` | 0.1 – 0.8 |
//!
//! plus §6.2.1's network and workload constants: a power-law topology of
//! average degree 4, a query rate of 0.00083 queries/node/s (one query per
//! node per 20 minutes, after Yang & Garcia-Molina \[5\]), TTL 3 for the
//! flooding baseline, and `k = 3.5` long-range links between summary peers
//! in the inter-domain cost term.
//!
//! ## Defaults and determinism
//!
//! [`SimConfig::paper_defaults`] reproduces Table 3 at a given domain
//! size and α: lognormal lifetimes (mean 3 h / median 1 h), 30 min
//! mean downtime, 30 % silent failures, 200 queries over a 12 h
//! horizon, 10 % match fraction, `flood_ttl` 3, `interdomain_k` 3.5,
//! `sumpeer_ttl` 2, `topology_m` 2, seed 42 — and every *optional*
//! subsystem off:
//!
//! | knob | default | when enabled |
//! |---|---|---|
//! | [`SimConfig::delivery`] | [`DeliveryMode::Instantaneous`] | [`DeliveryMode::Latency`] schedules every message as a virtual-time delivery event |
//! | [`SimConfig::sp_lifetime`] | `None` (immortal SPs) | `Some(dist)` schedules §4.3 SP departures |
//! | [`SimConfig::rebirth`] | `false` (terminal dissolutions) | `true` re-elects a replacement SP per dissolved domain |
//! | [`SimConfig::control`] | `None` ⇒ fixed α | `Adaptive { .. }` runs the per-domain feedback control plane |
//! | [`SimConfig::drift_spread`] | `1.0` (homogeneous) | `> 1` gives domains log-spaced drift rates |
//! | [`SimConfig::zipf_exponent`] | `None` (round-robin) | `Some(s)` draws templates from a Zipf(s) law |
//!
//! The determinism contract: every run is reproducible per
//! [`SimConfig::seed`] in both delivery modes, and each disabled
//! subsystem schedules **no** events and draws **no** randomness — so
//! turning one on never perturbs the event/RNG streams of
//! configurations that leave it off. The seed figure pipelines (and
//! the byte-identity tests) depend on this.

use p2psim::churn::LifetimeDistribution;
use p2psim::time::SimTime;

use crate::control::ControlPolicy;
use crate::error::P2pError;
use crate::routing::RoutingPolicy;

/// How protocol messages move through virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeliveryMode {
    /// Messages apply synchronously inside the sending event — the seed
    /// semantics every Figure 4–7 driver uses. Counts and bytes are
    /// accounted, but no virtual time elapses between send and effect.
    Instantaneous,
    /// Every message becomes a scheduled delivery event whose firing
    /// time is drawn from topology link latencies: reconciliation rings,
    /// floods and §5.2.2 lookups take virtual time, and peers that churn
    /// out mid-conversation actually drop tokens.
    Latency(LatencyConfig),
}

/// Tunables of the latency-aware message plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConfig {
    /// Fallback one-way latency for hops with no known topology link
    /// (the implicit SP of the single-domain simulation, SP long-range
    /// links, selective-walk partners).
    pub default_hop: SimTime,
    /// Multiplier applied to topology link latencies (1.0 = the
    /// topology's euclidean-embedding latencies verbatim).
    pub scale: f64,
    /// Serialization rate in wire bytes per second: transit time is
    /// propagation + `wire_bytes / bandwidth`.
    pub bandwidth_bytes_per_s: u64,
    /// Watchdog for multi-event conversations (reconciliation rings,
    /// inter-domain lookups): a conversation whose token or branches
    /// went silent for this long completes with what it gathered.
    pub conversation_timeout: SimTime,
}

impl LatencyConfig {
    /// A WAN-flavoured default: 50 ms hops, 10 Mbit/s serialization and
    /// a 10-minute conversation watchdog.
    pub fn wan_default() -> Self {
        Self {
            default_hop: SimTime::from_millis(50),
            scale: 1.0,
            bandwidth_bytes_per_s: 1_250_000,
            conversation_timeout: SimTime::from_mins(10),
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), P2pError> {
        if self.default_hop == SimTime::ZERO {
            // `SimTime` is unsigned microseconds, so negative and
            // non-finite hops cannot be represented; zero is the one
            // degenerate value left and it would let "unknown" hops
            // (implicit SP, long links, walks) transit for free.
            return Err(P2pError::BadConfig(
                "latency default_hop must be positive".into(),
            ));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(P2pError::BadConfig(format!(
                "latency scale {} must be finite and positive",
                self.scale
            )));
        }
        if self.bandwidth_bytes_per_s == 0 {
            return Err(P2pError::BadConfig(
                "latency bandwidth must be positive".into(),
            ));
        }
        if self.conversation_timeout == SimTime::ZERO {
            return Err(P2pError::BadConfig(
                "conversation timeout must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// All tunables of a summary-management experiment.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Domain / network size (Table 3: 16–5000).
    pub n_peers: usize,
    /// Freshness threshold α gating reconciliation (Table 3: 0.1–0.8).
    pub alpha: f64,
    /// Local-summary lifetime distribution (Table 3's skewed L).
    pub lifetime: LifetimeDistribution,
    /// Mean downtime between sessions, seconds.
    pub mean_downtime_s: f64,
    /// Fraction of departures that are silent failures (§4.3).
    pub failure_fraction: f64,
    /// Number of query samples (Table 3: 200).
    pub query_count: usize,
    /// Fraction of peers matching each query (Table 3: 10 %).
    pub match_fraction: f64,
    /// Number of distinct query templates in the workload.
    pub template_count: usize,
    /// Records per peer database.
    pub records_per_peer: usize,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Routing policy (worst-case `All` for Figure 4; `FreshOnly` for
    /// Figure 5).
    pub policy: RoutingPolicy,
    /// TTL of the pure-flooding baseline (§6.2.3: 3).
    pub flood_ttl: u32,
    /// Average long-range degree between summary peers (`k = 3.5`).
    pub interdomain_k: f64,
    /// TTL of the `sumpeer` construction broadcast (§4.1's example: 2).
    pub sumpeer_ttl: u32,
    /// Barabási–Albert attachment parameter (m = 2 → average degree 4).
    pub topology_m: usize,
    /// Message delivery mode: [`DeliveryMode::Instantaneous`] reproduces
    /// the seed figures byte-identically; [`DeliveryMode::Latency`]
    /// routes every message through virtual-time delivery events.
    pub delivery: DeliveryMode,
    /// Summary-peer session lifetimes. `None` (the default) keeps SPs
    /// immortal; `Some(dist)` schedules one departure per SP from the
    /// distribution, mid-run (§4.3's release + re-home protocol).
    pub sp_lifetime: Option<LifetimeDistribution>,
    /// Summary-peer *rebirth* (§4.3 completed): `true` re-elects a
    /// replacement SP from a dissolved domain's live hub candidates —
    /// latency-aware on the message plane
    /// ([`crate::construction::ElectionPolicy::LatencyAware`]), by
    /// degree order in instantaneous mode — re-homes the orphaned
    /// partners to the newborn SP, and seeds its global summary from
    /// the retained member descriptions so the first pull is a delta,
    /// not a from-scratch rebuild. `false` (the default) keeps today's
    /// terminal dissolution: departed SPs never return, domain counts
    /// decay monotonically, and — critically — the kernel schedules no
    /// election/takeover events and draws no extra randomness, so
    /// event and RNG streams stay byte-identical to the pre-rebirth
    /// binaries in both delivery modes. Only meaningful together with
    /// [`SimConfig::sp_lifetime`].
    pub rebirth: bool,
    /// How the per-domain effective α is chosen. `None` (the default)
    /// resolves to [`ControlPolicy::Fixed`] at [`SimConfig::alpha`] —
    /// today's single-threshold behavior, byte-identical event and RNG
    /// streams. `Some(policy)` overrides: an explicit `Fixed(α)` pins a
    /// different threshold, `Adaptive { .. }` turns on the per-domain
    /// feedback control plane ([`crate::control`]).
    pub control: Option<ControlPolicy>,
    /// Heterogeneous per-domain drift: domain `d` of `D` drifts at a
    /// rate scaled by `drift_spread^(2d/(D−1) − 1)` — log-spaced rates
    /// in `[1/spread, spread]` across domains. `1.0` (the default)
    /// keeps every domain on Table 3's homogeneous lifetime `L` and the
    /// legacy event streams byte-identical. This is the scenario axis
    /// adaptive α has something to find on.
    pub drift_spread: f64,
    /// Zipf-distributed query-template popularity: `Some(s)` draws each
    /// scheduled query's template with probability ∝ `1/(rank+1)^s`
    /// instead of round-robin. `None` (the default) keeps the legacy
    /// round-robin schedule and its RNG stream untouched.
    pub zipf_exponent: Option<f64>,
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
}

/// Validates one lifetime distribution's parameters: positive, finite,
/// and (for the lognormal) mean ≥ median — `lognormal_mean_median`
/// takes `√(2·ln(mean/median))`, which is NaN for mean < median.
fn validate_lifetime(dist: &LifetimeDistribution, what: &str) -> Result<(), P2pError> {
    let ok = |x: f64| x.is_finite() && x > 0.0;
    let valid = match *dist {
        LifetimeDistribution::LogNormalMeanMedian { mean_s, median_s } => {
            ok(mean_s) && ok(median_s) && mean_s >= median_s
        }
        LifetimeDistribution::Exponential { mean_s } => ok(mean_s),
        LifetimeDistribution::Weibull { shape, scale_s } => ok(shape) && ok(scale_s),
    };
    if valid {
        Ok(())
    } else {
        Err(P2pError::BadConfig(format!(
            "{what} parameters must be finite and positive \
             (lognormal additionally needs mean >= median): {dist:?}"
        )))
    }
}

impl SimConfig {
    /// Table 3 defaults at a given domain size and α.
    pub fn paper_defaults(n_peers: usize, alpha: f64) -> Self {
        Self {
            n_peers,
            alpha,
            lifetime: LifetimeDistribution::paper_default(),
            mean_downtime_s: 1800.0,
            failure_fraction: 0.3,
            query_count: 200,
            match_fraction: 0.10,
            template_count: 3,
            records_per_peer: 24,
            horizon: SimTime::from_hours(12),
            policy: RoutingPolicy::All,
            flood_ttl: 3,
            interdomain_k: 3.5,
            sumpeer_ttl: 2,
            topology_m: 2,
            delivery: DeliveryMode::Instantaneous,
            sp_lifetime: None,
            rebirth: false,
            control: None,
            drift_spread: 1.0,
            zipf_exponent: None,
            seed: 42,
        }
    }

    /// The effective control policy: the configured one, or
    /// [`ControlPolicy::Fixed`] at [`SimConfig::alpha`] when none is
    /// set.
    pub fn control_policy(&self) -> ControlPolicy {
        self.control.unwrap_or(ControlPolicy::Fixed(self.alpha))
    }

    /// The latency configuration when the message plane is enabled.
    pub fn latency(&self) -> Option<LatencyConfig> {
        match self.delivery {
            DeliveryMode::Instantaneous => None,
            DeliveryMode::Latency(lat) => Some(lat),
        }
    }

    /// The paper's query rate: 0.00083 queries per node per second
    /// ("1 query per node per 20 mns").
    pub const QUERY_RATE_PER_NODE_S: f64 = 0.00083;

    /// The domain sizes the figures sweep.
    pub const DOMAIN_SIZES: [usize; 7] = [16, 50, 100, 500, 1000, 2000, 5000];

    /// The α values of Figure 4.
    pub const ALPHAS: [f64; 4] = [0.1, 0.3, 0.5, 0.8];

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), P2pError> {
        if self.n_peers == 0 {
            return Err(P2pError::BadConfig("n_peers must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(P2pError::BadConfig(format!(
                "alpha {} not in [0,1]",
                self.alpha
            )));
        }
        if !(0.0..=1.0).contains(&self.match_fraction) {
            return Err(P2pError::BadConfig("match_fraction not in [0,1]".into()));
        }
        if !(0.0..=1.0).contains(&self.failure_fraction) {
            return Err(P2pError::BadConfig("failure_fraction not in [0,1]".into()));
        }
        if self.template_count == 0 || self.template_count > 3 {
            // The medical CBK reserves 3 diseases for templates and the
            // rest as background noise (see `workload`).
            return Err(P2pError::BadConfig("template_count must be 1..=3".into()));
        }
        if self.query_count == 0 {
            return Err(P2pError::BadConfig("query_count must be >= 1".into()));
        }
        if !(1..=8).contains(&self.flood_ttl) {
            // The routing layer honors the configured TTL verbatim (no
            // silent clamping), so out-of-range values are rejected here:
            // 0 never leaves the domain, and beyond ~8 a degree-4
            // power-law flood covers any Table 3 network many times over.
            return Err(P2pError::BadConfig(format!(
                "flood_ttl {} not in 1..=8",
                self.flood_ttl
            )));
        }
        if self.sumpeer_ttl == 0 {
            return Err(P2pError::BadConfig("sumpeer_ttl must be >= 1".into()));
        }
        if let DeliveryMode::Latency(lat) = self.delivery {
            lat.validate()?;
        }
        validate_lifetime(&self.lifetime, "lifetime")?;
        if let Some(dist) = &self.sp_lifetime {
            validate_lifetime(dist, "sp_lifetime")?;
        }
        if let Some(policy) = &self.control {
            policy.validate()?;
        }
        if !(self.drift_spread.is_finite() && self.drift_spread >= 1.0) {
            return Err(P2pError::BadConfig(format!(
                "drift_spread {} must be finite and >= 1",
                self.drift_spread
            )));
        }
        if let Some(s) = self.zipf_exponent {
            if !(s.is_finite() && s >= 0.0) {
                return Err(P2pError::BadConfig(format!(
                    "zipf_exponent {s} must be finite and non-negative"
                )));
            }
        }
        Ok(())
    }

    /// Derived: expected number of peers matching one query.
    pub fn expected_hits(&self) -> f64 {
        self.match_fraction * self.n_peers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = SimConfig::paper_defaults(500, 0.3);
        assert_eq!(c.n_peers, 500);
        assert_eq!(c.alpha, 0.3);
        assert_eq!(c.query_count, 200);
        assert_eq!(c.match_fraction, 0.10);
        assert_eq!(c.flood_ttl, 3);
        assert_eq!(c.interdomain_k, 3.5);
        assert_eq!(c.sumpeer_ttl, 2);
        assert_eq!(c.topology_m, 2, "average degree 4");
        c.validate().unwrap();
        match c.lifetime {
            LifetimeDistribution::LogNormalMeanMedian { mean_s, median_s } => {
                assert_eq!(mean_s, 3.0 * 3600.0);
                assert_eq!(median_s, 3600.0);
            }
            other => panic!("wrong lifetime distribution {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.alpha = 1.5;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.n_peers = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.template_count = 9;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.match_fraction = -0.1;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.flood_ttl = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.flood_ttl = 9;
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.flood_ttl = 4;
        c.validate().unwrap();
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.sumpeer_ttl = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_bounds_lifetimes() {
        // Main lifetime: degenerate lognormal parameters are rejected
        // (mean < median yields a NaN sigma at sampling time).
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.lifetime = LifetimeDistribution::LogNormalMeanMedian {
            mean_s: 100.0,
            median_s: 3600.0,
        };
        assert!(c.validate().is_err());

        // sp_lifetime: zero / negative / non-finite parameters rejected.
        for bad in [
            LifetimeDistribution::Exponential { mean_s: 0.0 },
            LifetimeDistribution::Exponential { mean_s: -5.0 },
            LifetimeDistribution::Exponential { mean_s: f64::NAN },
            LifetimeDistribution::Weibull {
                shape: 0.0,
                scale_s: 100.0,
            },
            LifetimeDistribution::LogNormalMeanMedian {
                mean_s: f64::INFINITY,
                median_s: 3600.0,
            },
        ] {
            let mut c = SimConfig::paper_defaults(100, 0.3);
            c.sp_lifetime = Some(bad);
            assert!(c.validate().is_err(), "{bad:?} must be rejected");
        }
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.sp_lifetime = Some(LifetimeDistribution::Exponential { mean_s: 7200.0 });
        c.validate().unwrap();
    }

    #[test]
    fn validation_bounds_latency_default_hop() {
        let mut c = SimConfig::paper_defaults(100, 0.3);
        let mut bad = LatencyConfig::wan_default();
        bad.default_hop = SimTime::ZERO;
        c.delivery = DeliveryMode::Latency(bad);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_bounds_control_knobs() {
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.control = Some(crate::control::ControlPolicy::Fixed(2.0));
        assert!(c.validate().is_err());
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.control = Some(crate::control::ControlPolicy::adaptive_default(0.2));
        c.validate().unwrap();
        assert_eq!(
            c.control_policy(),
            crate::control::ControlPolicy::adaptive_default(0.2)
        );

        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.drift_spread = 0.5;
        assert!(c.validate().is_err());
        c.drift_spread = f64::NAN;
        assert!(c.validate().is_err());
        c.drift_spread = 4.0;
        c.validate().unwrap();

        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.zipf_exponent = Some(-1.0);
        assert!(c.validate().is_err());
        c.zipf_exponent = Some(1.2);
        c.validate().unwrap();
    }

    #[test]
    fn default_control_policy_is_fixed_at_alpha() {
        let c = SimConfig::paper_defaults(100, 0.3);
        assert!(c.control.is_none());
        assert_eq!(
            c.control_policy(),
            crate::control::ControlPolicy::Fixed(0.3)
        );
        assert_eq!(c.drift_spread, 1.0);
        assert!(c.zipf_exponent.is_none());
    }

    #[test]
    fn expected_hits() {
        let c = SimConfig::paper_defaults(2000, 0.3);
        assert!((c.expected_hits() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn delivery_defaults_to_instantaneous() {
        // The escape hatch the figure drivers rely on: unless asked for,
        // the message plane is off and PR 1 semantics apply verbatim.
        let c = SimConfig::paper_defaults(100, 0.3);
        assert_eq!(c.delivery, DeliveryMode::Instantaneous);
        assert!(c.latency().is_none());
        assert!(c.sp_lifetime.is_none());
        assert!(!c.rebirth, "SP rebirth is opt-in");
    }

    #[test]
    fn latency_config_is_validated() {
        let mut c = SimConfig::paper_defaults(100, 0.3);
        c.delivery = DeliveryMode::Latency(LatencyConfig::wan_default());
        c.validate().unwrap();
        assert!(c.latency().is_some());

        let mut bad = LatencyConfig::wan_default();
        bad.scale = 0.0;
        c.delivery = DeliveryMode::Latency(bad);
        assert!(c.validate().is_err());

        let mut bad = LatencyConfig::wan_default();
        bad.bandwidth_bytes_per_s = 0;
        c.delivery = DeliveryMode::Latency(bad);
        assert!(c.validate().is_err());

        let mut bad = LatencyConfig::wan_default();
        bad.conversation_timeout = SimTime::ZERO;
        c.delivery = DeliveryMode::Latency(bad);
        assert!(c.validate().is_err());
    }
}
