#![warn(missing_docs)]

//! `summary_p2p` — the primary contribution of *Summary Management in P2P
//! Systems* (Hayek, Raschia, Valduriez, Mouaddib; EDBT 2008).
//!
//! Peers in a superpeer network summarize their relational databases with
//! SaintEtiQ (crate `saintetiq`) and share the summaries as **semantic
//! indexes**: a *domain* is one superpeer (the **summary peer**, SP) plus
//! its client partners; the SP materializes a **global summary** (GS) — the
//! merge of its partners' local summaries — annotated with a **cooperation
//! list** (CL) of per-partner freshness flags. Queries are routed by
//! matching them against the GS (peer localization) or answered
//! approximately straight from it.
//!
//! ## Architecture: one simulation kernel, two facades
//!
//! Every dynamic process of the paper — summary drift, churn sessions,
//! α-gated reconciliation rings, intra-domain workload queries and
//! §5.2.2's inter-domain lookups — runs as interleaved events of a
//! single deterministic event loop:
//!
//! * [`peerstate`] — the shared state machine: [`peerstate::PeerState`]
//!   (one partner's liveness + generated data), [`peerstate::DomainCore`]
//!   (one domain's GS/CL and its push/pull transitions) and
//!   [`peerstate::MessageLedger`] (the §6.1 message/byte accounting);
//! * [`kernel`] — [`kernel::SimKernel`] drives N domains in one
//!   `p2psim::Simulator` loop and rebuilds multi-domain routing on the
//!   *live* per-domain GS/CL state, so recall, stale answers and false
//!   negatives are measurable network-wide while maintenance runs;
//!   [`kernel::MultiDomainSim`] is the dynamic entry point. Under
//!   [`config::DeliveryMode::Latency`] the kernel routes every protocol
//!   message through virtual-time delivery events (the *message plane*):
//!   reconciliation rings and §5.2.2 lookups become multi-event
//!   conversations with genuine time-to-answer, while the default
//!   [`config::DeliveryMode::Instantaneous`] reproduces the figure
//!   pipelines byte-identically;
//! * [`domain`] — [`domain::DomainSim`], the single-domain facade the
//!   Figure 4–6 drivers use (one `DomainCore`, intra-domain queries);
//! * [`system`] — [`system::MultiDomainSystem`], the frozen t = 0 facade
//!   (construction + fresh global summaries) of §5.2.2's static view.
//!
//! ## Supporting modules, following the paper's structure
//!
//! * [`config`] — Table 3's simulation parameters as a typed config;
//! * [`control`] — the maintenance control plane: per-domain effective
//!   α, fixed ([`control::ControlPolicy::Fixed`], the default — the
//!   paper's single global threshold) or fed back each control epoch
//!   from measured stale-answer fractions and reconciliation cost
//!   ([`control::ControlPolicy::Adaptive`]);
//! * [`freshness`] / [`coop`] — the 2-bit freshness values and the
//!   cooperation list (§4.1, §4.3);
//! * [`messages`] — the protocol vocabulary (`sumpeer`, `localsum`,
//!   `drop`, `find`, `push`, `reconciliation`, `release`, queries);
//! * [`construction`] — domain construction over the physical topology
//!   (§4.1): TTL-limited `sumpeer` broadcast, closest-SP partnership,
//!   selective-walk `find`;
//! * [`routing`] — query processing (§5): reformulation, GS evaluation,
//!   the recall/precision policies over `P_fresh`/`P_old`, and stale
//!   answer accounting;
//! * [`cache`] — §5.2.2's group-locality answer caches;
//! * [`workload`] — the Table 3 workload: query templates matched by a
//!   configurable fraction of peers, with exact ground truth;
//! * [`costmodel`] — the closed-form cost model of §6.1 (equations (1)
//!   and (2));
//! * [`baselines`] — §6.2.3's comparators: pure TTL-3 flooding and a
//!   centralized index;
//! * [`metrics`] — accuracy/traffic reports for both facades;
//! * [`scenario`] — the experiment drivers regenerating Figures 4–7 plus
//!   [`scenario::figure_multidomain_churn`], the unified kernel's
//!   churn-under-routing experiment.

pub mod baselines;
pub mod cache;
pub mod config;
pub mod construction;
pub mod control;
pub mod coop;
pub mod costmodel;
pub mod domain;
pub mod error;
pub mod freshness;
pub mod kernel;
pub mod messages;
pub mod metrics;
pub mod peerstate;
pub mod routing;
pub mod scenario;
pub mod system;
pub mod workload;

pub use config::{DeliveryMode, LatencyConfig, SimConfig};
pub use control::{AlphaController, ControlPolicy};
pub use coop::CooperationList;
pub use domain::DomainSim;
pub use error::P2pError;
pub use freshness::Freshness;
pub use kernel::{LookupTarget, MultiDomainOutcome, MultiDomainSim, SimKernel};
pub use routing::RoutingPolicy;
