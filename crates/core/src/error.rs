//! Error type for the P2P summary-management layer.

use std::fmt;

/// Errors raised by protocol state machines and experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum P2pError {
    /// A peer id is out of range for the network.
    UnknownPeer(u32),
    /// An operation targeted a peer that is not a summary peer.
    NotASummaryPeer(u32),
    /// An operation targeted a peer that is not a partner of the domain.
    NotAPartner(u32),
    /// The underlying summarization layer failed.
    Summary(saintetiq::SummaryError),
    /// The relational layer rejected generated workload data.
    Relation(relation::RelationError),
    /// A configuration value is out of its legal range.
    BadConfig(String),
}

impl fmt::Display for P2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2pError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            P2pError::NotASummaryPeer(p) => write!(f, "peer {p} is not a summary peer"),
            P2pError::NotAPartner(p) => write!(f, "peer {p} is not a partner of this domain"),
            P2pError::Summary(e) => write!(f, "summarization error: {e}"),
            P2pError::Relation(e) => write!(f, "relational error: {e}"),
            P2pError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for P2pError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            P2pError::Summary(e) => Some(e),
            P2pError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<saintetiq::SummaryError> for P2pError {
    fn from(e: saintetiq::SummaryError) -> Self {
        P2pError::Summary(e)
    }
}

impl From<relation::RelationError> for P2pError {
    fn from(e: relation::RelationError) -> Self {
        P2pError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = P2pError::BadConfig("alpha out of range".into());
        assert!(e.to_string().contains("alpha"));
        let e: P2pError = saintetiq::SummaryError::Codec("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
