//! Query processing in a domain (§5, §6.1.2).
//!
//! A query posed at a peer is sent to the domain's summary peer, matched
//! against the global summary (peer localization: `P_Q`), and forwarded
//! according to a **routing policy** built on the cooperation list:
//!
//! * [`RoutingPolicy::All`] — visit all of `P_Q` (the paper's default
//!   and Figure 4's worst-case accounting);
//! * [`RoutingPolicy::FreshOnly`] — visit `P_Q ∩ P_fresh`: maximum
//!   precision, possible false negatives (Figure 5);
//! * [`RoutingPolicy::Extended`] — visit `P_Q ∪ P_old`: maximum recall,
//!   possible false positives.
//!
//! The outcome carries both the paper's **worst-case** accounting (every
//! stale-flagged peer counts as wrong) and the **real** accounting
//! against exact ground truth.

use std::collections::{BTreeSet, VecDeque};

use p2psim::network::NodeId;
use p2psim::time::SimTime;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::Proposition;
use saintetiq::query::relevant_sources;

use crate::coop::CooperationList;
use crate::kernel::MultiDomainOutcome;
use crate::peerstate::SummarySnapshot;

/// Which subset of the localized peers a query visits (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// `V = P_Q`.
    #[default]
    All,
    /// `V = P_Q ∩ P_fresh` — no stale-flag false positives, FN risk.
    FreshOnly,
    /// `V = P_Q ∪ P_old` — no false negatives from stale flags, FP risk.
    Extended,
}

/// Everything measured about one routed query.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Peer localization result `P_Q` (from the global summary).
    pub pq: Vec<NodeId>,
    /// Peers actually visited under the policy (`V`).
    pub visited: Vec<NodeId>,
    /// Peers that answered (up and truly matching).
    pub answered: usize,
    /// Ground-truth query scope size `|QS|` (up peers with matching data).
    pub qs_size: usize,
    /// Worst-case accounting (Figure 4): stale-flagged peers inside `P_Q`.
    pub stale_selected: usize,
    /// Worst-case accounting: stale-flagged peers outside `P_Q`.
    pub stale_unselected: usize,
    /// Real false positives: visited peers that are down or don't match.
    pub real_fp: usize,
    /// Real false negatives: up, matching peers that were not visited.
    pub real_fn: usize,
    /// Messages: 1 (query to SP) + |V| (forwards) + answers (§6.1.2's
    /// `Cd = 1 + |P_Q| + (1 − FP)·|P_Q|`).
    pub messages: u64,
}

/// State of one latency-mode reconciliation ring (§4.2.2 as a
/// multi-event conversation): the token hops from *stale* live member
/// to stale live member as scheduled deliveries, gathering summary
/// snapshots — fresh members are not visited at all, since their
/// contributions already sit in the SP's accumulator (incremental GS
/// maintenance; see [`crate::peerstate`]). A hop that lands on a
/// churned-out peer silently drops the token; the SP's watchdog then
/// completes the pull with whatever was gathered.
#[derive(Debug)]
pub(crate) struct RingConversation {
    /// The domain running the ring.
    pub domain: usize,
    /// Members the token has not visited yet, in ring order.
    pub route: VecDeque<NodeId>,
    /// Snapshots collected so far, in visit order.
    pub gathered: Vec<SummarySnapshot>,
    /// Set once the SP stored `NewGS` (completion or watchdog): late
    /// token deliveries and the unfired watchdog become no-ops.
    pub done: bool,
}

impl RingConversation {
    /// A ring over the given hop order.
    pub fn new(domain: usize, route: Vec<NodeId>) -> Self {
        Self {
            domain,
            route: route.into(),
            gathered: Vec::new(),
            done: false,
        }
    }

    /// The incremental pull route: live partners whose cooperation-list
    /// entries are flagged stale (`NeedsRefresh` / `Unavailable`), in
    /// id order. Fresh partners are skipped — §4.2.2's pull only needs
    /// what changed since the last round.
    pub fn stale_route<F: Fn(NodeId) -> bool>(cl: &CooperationList, up: F) -> Vec<NodeId> {
        cl.old_partners().filter(|&p| up(p)).collect()
    }

    /// Current token payload size: the gathered summaries (`NewGS`
    /// grows along the ring), floored at one header's worth.
    pub fn token_bytes(&self) -> usize {
        self.gathered
            .iter()
            .map(|s| s.summary.len())
            .sum::<usize>()
            .max(64)
    }
}

/// State of one latency-mode SP-rebirth hand-over (§4.3 rebirth as a
/// multi-event conversation): at takeover every live member of the
/// reborn domain ships a `localsum` confirmation to the newborn SP as
/// a scheduled delivery. The domain is already seeded (descriptions
/// were retained across the dissolution), so each arrival only
/// re-validates the member — one that churned out while its
/// confirmation was in flight is flagged `Unavailable` for the next
/// pull. The conversation completes when every confirmation landed or
/// the watchdog fires; completion re-checks α so a stale-seeded
/// membership can arm the reborn domain's first (delta) pull at once.
#[derive(Debug)]
pub(crate) struct RebirthConversation {
    /// The reborn domain slot.
    pub domain: usize,
    /// `localsum` confirmations still in flight.
    pub outstanding: u64,
    /// Set once completion ran: late deliveries and the unfired
    /// watchdog become no-ops.
    pub done: bool,
}

/// State of one latency-mode inter-domain lookup (§5.2.2 as a
/// multi-event conversation): query deliveries fan out to domain SPs,
/// per-peer answers and flood discoveries come back as further
/// deliveries, and the lookup completes when its target is met, every
/// branch has drained, or the watchdog fires.
#[derive(Debug)]
pub(crate) struct LookupConversation {
    /// The partner that posed the query.
    pub origin: NodeId,
    /// Workload template index.
    pub template: usize,
    /// Results needed (`C_t`, or `usize::MAX` for a total lookup).
    pub need: usize,
    /// Virtual time the query was posed.
    pub started: SimTime,
    /// Ground-truth matches network-wide when the query was posed.
    pub results_total: usize,
    /// Peers whose (re-validated) answers reached the originator.
    pub answered: BTreeSet<NodeId>,
    /// Domains already queried *or* with a query in flight — dedup at
    /// schedule time so a domain is contacted once per lookup.
    pub seen_domains: BTreeSet<usize>,
    /// Domains whose SP actually processed the query.
    pub visited_domains: usize,
    /// Summary-selected peers that turned out down or drifted —
    /// including those that churned out while the answer was in flight.
    pub stale_answers: usize,
    /// Summary-selected peers whose answers validated on arrival (the
    /// success side of `stale_answers`; cache-recovered answers are
    /// not counted here).
    pub summary_ok: usize,
    /// Messages attributed to this lookup.
    pub messages: u64,
    /// Outstanding scheduled deliveries of this conversation.
    pub branches: u64,
    /// Set once the outcome was recorded: late deliveries are no-ops.
    pub done: bool,
}

impl LookupConversation {
    /// A fresh conversation.
    pub fn new(
        origin: NodeId,
        template: usize,
        need: usize,
        started: SimTime,
        results_total: usize,
    ) -> Self {
        Self {
            origin,
            template,
            need,
            started,
            results_total,
            answered: BTreeSet::new(),
            seen_domains: BTreeSet::new(),
            visited_domains: 0,
            stale_answers: 0,
            summary_ok: 0,
            messages: 0,
            branches: 0,
            done: false,
        }
    }

    /// True once enough answers arrived.
    pub fn satisfied(&self) -> bool {
        self.answered.len() >= self.need
    }

    /// The recorded outcome when the conversation completes at
    /// `finished` virtual time.
    pub fn outcome(&self, finished: SimTime) -> MultiDomainOutcome {
        MultiDomainOutcome {
            results: self.answered.len(),
            results_total: self.results_total,
            domains_visited: self.visited_domains,
            messages: self.messages,
            satisfied: self.answered.len() >= self.need.min(self.results_total),
            stale_answers: self.stale_answers,
            summary_results: self.summary_ok,
            time_to_answer_s: finished.saturating_sub(self.started).as_secs_f64(),
        }
    }
}

/// Routes one query inside a domain and scores it against ground truth.
///
/// `truth(peer)` returns `(is_up, currently_matches)` — the exact state
/// the paper's accounting compares against. The domain's peers are
/// `NodeId(0..domain_size)`; use [`route_query_scoped`] when the domain
/// holds an arbitrary subset of a larger network's ids.
pub fn route_query<F: Fn(NodeId) -> (bool, bool)>(
    gs: &SummaryTree,
    cl: &CooperationList,
    prop: &Proposition,
    policy: RoutingPolicy,
    domain_size: usize,
    truth: F,
) -> QueryOutcome {
    let members: Vec<NodeId> = (0..domain_size as u32).map(NodeId).collect();
    route_query_scoped(gs, cl, prop, policy, &members, truth)
}

/// [`route_query`] over an explicit member set: the shared-kernel entry
/// point, where a domain's peers carry network-global ids.
pub fn route_query_scoped<F: Fn(NodeId) -> (bool, bool)>(
    gs: &SummaryTree,
    cl: &CooperationList,
    prop: &Proposition,
    policy: RoutingPolicy,
    members: &[NodeId],
    truth: F,
) -> QueryOutcome {
    let pq: Vec<NodeId> = relevant_sources(gs, prop)
        .into_iter()
        .map(|s| NodeId(s.0))
        .collect();

    let visited: Vec<NodeId> = match policy {
        RoutingPolicy::All => pq.clone(),
        RoutingPolicy::FreshOnly => pq
            .iter()
            .copied()
            .filter(|&p| cl.freshness(p).map(|f| !f.as_stale_bit()).unwrap_or(false))
            .collect(),
        RoutingPolicy::Extended => {
            let mut v = pq.clone();
            for p in cl.old_partners() {
                if !v.contains(&p) {
                    v.push(p);
                }
            }
            v.sort_unstable_by_key(|p| p.0);
            v.dedup();
            v
        }
    };

    let mut out = QueryOutcome {
        pq: pq.clone(),
        visited: visited.clone(),
        ..Default::default()
    };

    // Worst-case stale accounting (Figure 4): every stale-flagged partner
    // is assumed wrong — FP if selected, FN otherwise.
    for p in cl.old_partners() {
        if pq.contains(&p) {
            out.stale_selected += 1;
        } else {
            out.stale_unselected += 1;
        }
    }

    // Real accounting against exact ground truth.
    let mut truly_matching: Vec<NodeId> = Vec::new();
    for &p in members {
        let (up, matches) = truth(p);
        if up && matches {
            truly_matching.push(p);
        }
    }
    out.qs_size = truly_matching.len();
    for &p in &visited {
        let (up, matches) = truth(p);
        if up && matches {
            out.answered += 1;
        } else {
            out.real_fp += 1;
        }
    }
    out.real_fn = truly_matching
        .iter()
        .filter(|p| !visited.contains(p))
        .count();

    out.messages = 1 + visited.len() as u64 + out.answered as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freshness::Freshness;
    use fuzzy::descriptor::{DescriptorSet, LabelId};
    use saintetiq::cell::{CellKey, SourceId};
    use saintetiq::engine::{incorporate_cell, EngineConfig};
    use saintetiq::query::proposition::Clause;

    /// Builds a GS where peers 0..4 own cell (0,0) and peers 5..9 own
    /// (1,1); query selects attr0 = 0.
    fn setup() -> (SummaryTree, CooperationList, Proposition) {
        let mut gs = SummaryTree::new("bk", vec![2, 2]);
        let cfg = EngineConfig::default();
        for p in 0..5u32 {
            incorporate_cell(
                &mut gs,
                &cfg,
                &CellKey(vec![LabelId(0), LabelId(0)]),
                SourceId(p),
                1.0,
                &[1.0, 1.0],
                None,
            );
        }
        for p in 5..10u32 {
            incorporate_cell(
                &mut gs,
                &cfg,
                &CellKey(vec![LabelId(1), LabelId(1)]),
                SourceId(p),
                1.0,
                &[1.0, 1.0],
                None,
            );
        }
        let mut cl = CooperationList::new();
        for p in 0..10 {
            cl.add_partner(NodeId(p), Freshness::Fresh);
        }
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::singleton(LabelId(0)),
            }],
        };
        (gs, cl, prop)
    }

    #[test]
    fn all_policy_visits_pq() {
        let (gs, cl, prop) = setup();
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::All, 10, |p| (true, p.0 < 5));
        assert_eq!(out.pq.len(), 5);
        assert_eq!(out.visited.len(), 5);
        assert_eq!(out.answered, 5);
        assert_eq!(out.qs_size, 5);
        assert_eq!(out.real_fp, 0);
        assert_eq!(out.real_fn, 0);
        // Cd = 1 + 5 + 5.
        assert_eq!(out.messages, 11);
    }

    #[test]
    fn fresh_only_skips_stale_flags() {
        let (gs, mut cl, prop) = setup();
        cl.set_freshness(NodeId(0), Freshness::NeedsRefresh);
        cl.set_freshness(NodeId(1), Freshness::Unavailable);
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::FreshOnly, 10, |p| {
            (true, p.0 < 5)
        });
        assert_eq!(out.visited.len(), 3, "two stale P_Q members skipped");
        // Those two still match in truth → real FNs.
        assert_eq!(out.real_fn, 2);
        assert_eq!(out.real_fp, 0);
        assert_eq!(out.stale_selected, 2, "stale & in P_Q");
    }

    #[test]
    fn extended_policy_adds_old_partners() {
        let (gs, mut cl, prop) = setup();
        // Peer 7 is flagged old (not in P_Q): Extended must visit it too.
        cl.set_freshness(NodeId(7), Freshness::NeedsRefresh);
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::Extended, 10, |p| {
            (true, p.0 < 5 || p.0 == 7) // 7 now matches: drifted data!
        });
        assert!(out.visited.contains(&NodeId(7)));
        assert_eq!(out.real_fn, 0, "extension recovered the drifted peer");
        assert_eq!(out.answered, 6);
    }

    #[test]
    fn down_peers_count_as_real_fp() {
        let (gs, cl, prop) = setup();
        // Peers 3 and 4 silently failed: still in GS/CL as fresh.
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::All, 10, |p| {
            (p.0 != 3 && p.0 != 4, p.0 < 5)
        });
        assert_eq!(out.real_fp, 2, "failed peers yield stale answers");
        assert_eq!(out.answered, 3);
        assert_eq!(out.qs_size, 3);
    }

    #[test]
    fn worst_case_accounting_counts_all_stale_flags() {
        let (gs, mut cl, prop) = setup();
        cl.set_freshness(NodeId(2), Freshness::NeedsRefresh); // in P_Q
        cl.set_freshness(NodeId(8), Freshness::NeedsRefresh); // not in P_Q
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::All, 10, |p| (true, p.0 < 5));
        assert_eq!(out.stale_selected, 1);
        assert_eq!(out.stale_unselected, 1);
    }

    #[test]
    fn messages_follow_cd_formula() {
        let (gs, cl, prop) = setup();
        // 2 of the 5 matching peers are down → answers = 3.
        let out = route_query(&gs, &cl, &prop, RoutingPolicy::All, 10, |p| {
            (p.0 > 1, p.0 < 5)
        });
        // 1 + |V| + answered = 1 + 5 + 3.
        assert_eq!(out.messages, 9);
    }
}
