//! Experiment drivers: one function per figure of §6.2, each returning
//! printable rows, plus [`figure_multidomain_churn`] — the unified
//! kernel's network-scale experiment (inter-domain lookups routed while
//! churn and reconciliation run). The `sumq-bench` binaries call these
//! at paper scale; integration tests call them at reduced scale.

use std::time::Instant;

use fuzzy::bk::BackgroundKnowledge;
use p2psim::churn::LifetimeDistribution;
use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::time::SimTime;
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saintetiq::wire;

use crate::baselines;
use crate::config::{DeliveryMode, LatencyConfig, SimConfig};
use crate::control::ControlPolicy;
use crate::costmodel;
use crate::domain::DomainSim;
use crate::error::P2pError;
use crate::freshness::Freshness;
use crate::kernel::{LookupTarget, MultiDomainSim};
use crate::metrics::{DomainReport, MultiDomainReport};
use crate::peerstate::{DomainCore, MessageLedger, PeerState};
use crate::routing::RoutingPolicy;
use crate::workload::{generate_peer_data, make_templates};

/// One point of Figure 4 / Figure 5.
#[derive(Debug, Clone)]
pub struct StalePoint {
    /// Domain size.
    pub n: usize,
    /// Freshness threshold.
    pub alpha: f64,
    /// Figure 4: worst-case stale-answer fraction.
    pub worst_stale: f64,
    /// Figure 5: real false-negative fraction (FreshOnly policy).
    pub real_fn: f64,
    /// Full report for deeper inspection.
    pub report: DomainReport,
}

/// Figure 4: stale answers (worst case) vs domain size, per α.
pub fn figure4(
    sizes: &[usize],
    alphas: &[f64],
    base: &SimConfig,
) -> Result<Vec<StalePoint>, P2pError> {
    let mut out = Vec::new();
    for &alpha in alphas {
        for &n in sizes {
            let mut cfg = *base;
            cfg.n_peers = n;
            cfg.alpha = alpha;
            cfg.policy = RoutingPolicy::All;
            let report = DomainSim::new(cfg)?.run();
            out.push(StalePoint {
                n,
                alpha,
                worst_stale: report.worst_stale_fraction(),
                real_fn: report.real_fn_fraction(),
                report,
            });
        }
    }
    Ok(out)
}

/// Figure 5: real false negatives vs domain size under the fresh-only
/// policy (the paper's "real case", accounting for whether the database
/// modification actually affects the query).
pub fn figure5(sizes: &[usize], base: &SimConfig) -> Result<Vec<StalePoint>, P2pError> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut cfg = *base;
        cfg.n_peers = n;
        cfg.policy = RoutingPolicy::FreshOnly;
        let report = DomainSim::new(cfg)?.run();
        out.push(StalePoint {
            n,
            alpha: cfg.alpha,
            worst_stale: report.worst_stale_fraction(),
            real_fn: report.real_fn_fraction(),
            report,
        });
    }
    Ok(out)
}

/// One point of Figure 6.
#[derive(Debug, Clone)]
pub struct UpdateCostPoint {
    /// Domain size.
    pub n: usize,
    /// Freshness threshold.
    pub alpha: f64,
    /// Total update messages (push + reconciliation hops) over the
    /// horizon — the physical-traffic view.
    pub total_messages: u64,
    /// Update messages under the paper's token-counted view (push +
    /// one message per reconciliation round).
    pub token_counted: u64,
    /// Messages per node per second (eq. (1) measured).
    pub per_node_s: f64,
    /// Reconciliation rounds.
    pub reconciliations: u64,
}

/// Figure 6: update cost vs domain size for the given α values.
pub fn figure6(
    sizes: &[usize],
    alphas: &[f64],
    base: &SimConfig,
) -> Result<Vec<UpdateCostPoint>, P2pError> {
    let mut out = Vec::new();
    for &alpha in alphas {
        for &n in sizes {
            let mut cfg = *base;
            cfg.n_peers = n;
            cfg.alpha = alpha;
            cfg.query_count = 1; // update cost is query-independent
            let report = DomainSim::new(cfg)?.run();
            out.push(UpdateCostPoint {
                n,
                alpha,
                total_messages: report.update_messages(),
                token_counted: report.update_messages_token_counted(),
                per_node_s: report.update_messages_per_node_s(),
                reconciliations: report.reconciliations,
            });
        }
    }
    Ok(out)
}

/// One point of Figure 7.
#[derive(Debug, Clone)]
pub struct QueryCostPoint {
    /// Network size.
    pub n: usize,
    /// Centralized-index cost (closed form, §6.2.3).
    pub centralized: f64,
    /// Summary-querying cost `C_Q = 10·C_d + 9·C_f` (§6.2.3, with the
    /// worst-case FP of Figure 4 at α = 0.3).
    pub summary_querying: f64,
    /// Pure-flooding cost normalized to full recall: raw messages divided
    /// by measured recall. A TTL-3 flood on a degree-4 power-law graph
    /// reaches only part of a large network, so its raw message count
    /// understates what it costs flooding to deliver the result set the
    /// other algorithms deliver; this is the comparable series (see
    /// EXPERIMENTS.md for the discussion).
    pub flooding: f64,
    /// Raw measured flooding messages (TTL 3, duplicates included).
    pub flooding_raw: f64,
    /// Measured flooding recall (how much of the 10 % it actually finds).
    pub flooding_recall: f64,
}

/// Figure 7: query cost vs number of peers for the three algorithms.
///
/// `fp` is the stale-answer fraction injected into the SQ cost model —
/// the paper uses Figure 4's worst case at α = 0.3 (≈ 0.11).
pub fn figure7(
    sizes: &[usize],
    fp: f64,
    base: &SimConfig,
    flood_samples: usize,
) -> Vec<QueryCostPoint> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(base.seed ^ (n as u64).wrapping_mul(0x9E3779B9));
        let topo = TopologyConfig {
            nodes: n,
            m: base.topology_m,
            ..Default::default()
        };
        let net = Network::new(Graph::barabasi_albert(&topo, &mut rng));

        // Ground truth: exactly ⌈10 %⌉ of peers match.
        let hits = ((base.match_fraction * n as f64).round() as usize).max(1);
        let mut matching = vec![false; n];
        let mut chosen = 0usize;
        while chosen < hits {
            let i = rng.gen_range(0..n);
            if !matching[i] {
                matching[i] = true;
                chosen += 1;
            }
        }
        let matching = std::sync::Arc::new(matching);
        let m2 = matching.clone();
        let (flood_msgs, flood_recall) = baselines::flood_query_averaged(
            &net,
            base.flood_ttl,
            flood_samples,
            &mut rng,
            move |p| m2[p.index()],
        );

        out.push(QueryCostPoint {
            n,
            centralized: costmodel::centralized_cost(n, base.match_fraction),
            summary_querying: costmodel::figure7_sq_cost(n, fp, base.interdomain_k),
            flooding: flood_msgs / flood_recall.max(0.01),
            flooding_raw: flood_msgs,
            flooding_recall: flood_recall,
        });
    }
    out
}

/// One point of the multi-domain churn experiment.
#[derive(Debug, Clone)]
pub struct MultiChurnPoint {
    /// Churn intensity multiplier applied to the base configuration
    /// (sessions and summary lifetimes shortened by this factor).
    pub churn_scale: f64,
    /// Mean network-wide recall over the sampled lookups.
    pub mean_recall: f64,
    /// Mean stale answers per lookup.
    pub mean_stale_answers: f64,
    /// Mean network-wide false negatives per lookup.
    pub mean_false_negatives: f64,
    /// Mean messages per lookup.
    pub mean_messages: f64,
    /// Mean virtual time-to-answer per lookup (seconds; 0.0 in
    /// instantaneous mode).
    pub mean_time_to_answer_s: f64,
    /// Reconciliation rounds across all domains.
    pub reconciliations: u64,
    /// Full report for deeper inspection.
    pub report: MultiDomainReport,
}

/// Scales every churn clock of `cfg` by `scale`: session lifetimes,
/// summary lifetimes (the same Table 3 `L`) and downtimes all shrink by
/// the factor, so turnover and drift accelerate while the steady-state
/// live fraction stays put.
pub fn scale_churn(cfg: &SimConfig, scale: f64) -> SimConfig {
    assert!(scale > 0.0, "churn scale must be positive");
    let mut out = *cfg;
    out.lifetime = match cfg.lifetime {
        LifetimeDistribution::LogNormalMeanMedian { mean_s, median_s } => {
            LifetimeDistribution::LogNormalMeanMedian {
                mean_s: mean_s / scale,
                median_s: median_s / scale,
            }
        }
        LifetimeDistribution::Exponential { mean_s } => LifetimeDistribution::Exponential {
            mean_s: mean_s / scale,
        },
        LifetimeDistribution::Weibull { shape, scale_s } => LifetimeDistribution::Weibull {
            shape,
            scale_s: scale_s / scale,
        },
    };
    out.mean_downtime_s = cfg.mean_downtime_s / scale;
    out
}

/// The unified-kernel experiment the static system could not express:
/// inter-domain lookups sampled across the horizon *while* churn, drift
/// and α-gated reconciliation mutate every domain's GS/CL. One row per
/// churn scale; recall degrades as the scale grows and recovers with
/// reconciliation (lower α ⇒ higher recall at equal churn).
pub fn figure_multidomain_churn(
    churn_scales: &[f64],
    base: &SimConfig,
    domain_target: usize,
    target: LookupTarget,
) -> Result<Vec<MultiChurnPoint>, P2pError> {
    let mut out = Vec::new();
    for &scale in churn_scales {
        let cfg = scale_churn(base, scale);
        let report = MultiDomainSim::new(cfg, domain_target, target)?.run();
        out.push(MultiChurnPoint {
            churn_scale: scale,
            mean_recall: report.mean_recall,
            mean_stale_answers: report.mean_stale_answers,
            mean_false_negatives: report.mean_false_negatives,
            mean_messages: report.mean_messages,
            mean_time_to_answer_s: report.mean_time_to_answer_s,
            reconciliations: report.reconciliations,
            report,
        });
    }
    Ok(out)
}

/// One point of the latency sweep.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Default hop latency in milliseconds.
    pub hop_ms: u64,
    /// Mean virtual time-to-answer per lookup, seconds.
    pub mean_time_to_answer_s: f64,
    /// Mean network-wide recall.
    pub mean_recall: f64,
    /// Mean stale answers per lookup.
    pub mean_stale_answers: f64,
    /// Mean messages per lookup.
    pub mean_messages: f64,
    /// Peak messages simultaneously in flight.
    pub peak_in_flight: u64,
    /// Full report for deeper inspection.
    pub report: MultiDomainReport,
}

/// Enables the message plane on a configuration with the given default
/// hop latency (other latency knobs at their WAN defaults).
pub fn with_latency(cfg: &SimConfig, hop: SimTime) -> SimConfig {
    let mut out = *cfg;
    out.delivery = DeliveryMode::Latency(LatencyConfig {
        default_hop: hop,
        ..LatencyConfig::wan_default()
    });
    out
}

/// The message-plane experiment: the same dynamic multi-domain run at
/// increasing hop latencies. Time-to-answer grows with the hop latency;
/// recall degrades once rings and lookups are slow enough that answers
/// arrive about peers that already churned away.
pub fn figure_latency_sweep(
    hop_ms: &[u64],
    base: &SimConfig,
    domain_target: usize,
    target: LookupTarget,
) -> Result<Vec<LatencyPoint>, P2pError> {
    let mut out = Vec::new();
    for &ms in hop_ms {
        let cfg = with_latency(base, SimTime::from_millis(ms));
        let report = MultiDomainSim::new(cfg, domain_target, target)?.run();
        out.push(LatencyPoint {
            hop_ms: ms,
            mean_time_to_answer_s: report.mean_time_to_answer_s,
            mean_recall: report.mean_recall,
            mean_stale_answers: report.mean_stale_answers,
            mean_messages: report.mean_messages,
            peak_in_flight: report.peak_in_flight,
            report,
        });
    }
    Ok(out)
}

/// One point of the adaptive-α frontier experiment
/// ([`figure_alpha_adaptive`]): one full dynamic multi-domain run at a
/// fixed α, or under the adaptive control plane.
#[derive(Debug, Clone)]
pub struct AlphaAdaptivePoint {
    /// Row label: `fixed-0.30`-style, or `adaptive`.
    pub label: String,
    /// The pinned α (`None` for the adaptive row).
    pub fixed_alpha: Option<f64>,
    /// Network-wide mean stale-answer fraction over the lookups.
    pub stale_answer_fraction: f64,
    /// Mean network-wide recall.
    pub mean_recall: f64,
    /// Reconciliation delta payload bytes spent over the run — the
    /// bandwidth side of the staleness/bandwidth frontier.
    pub reconcile_delta_bytes: u64,
    /// Reconciliation rounds across all domains.
    pub reconciliations: u64,
    /// Mean final effective α across surviving domains.
    pub mean_final_alpha: f64,
    /// The converged per-domain α distribution.
    pub final_alphas: Vec<f64>,
    /// Full report for deeper inspection.
    pub report: MultiDomainReport,
}

impl AlphaAdaptivePoint {
    fn from_report(label: String, fixed_alpha: Option<f64>, report: MultiDomainReport) -> Self {
        Self {
            label,
            fixed_alpha,
            stale_answer_fraction: report.mean_stale_answer_fraction,
            mean_recall: report.mean_recall,
            reconcile_delta_bytes: report.reconcile_delta_bytes,
            reconciliations: report.reconciliations,
            mean_final_alpha: report.mean_final_alpha,
            final_alphas: report.final_alphas.clone(),
            report,
        }
    }
}

/// Gives the configuration a heterogeneous per-domain drift profile:
/// domains drift at log-spaced rates in `[1/spread, spread]` — the
/// scenario axis on which a single global α cannot sit right for every
/// domain, so per-domain adaptation has something to find.
pub fn with_heterogeneous_drift(cfg: &SimConfig, spread: f64) -> SimConfig {
    let mut out = *cfg;
    out.drift_spread = spread;
    out
}

/// The staleness/bandwidth frontier: the same heterogeneous-drift
/// dynamic multi-domain run once per fixed α, then once under
/// [`ControlPolicy::Adaptive`]. Fixed rows trace the frontier a single
/// global threshold can reach; the adaptive row shows where per-domain
/// feedback control lands — holding the network-wide stale-answer
/// fraction near the policy's target while spending no more pull
/// bandwidth than the cheapest fixed α of comparable staleness
/// (`BENCH_alpha.json` reports the comparison).
pub fn figure_alpha_adaptive(
    fixed_alphas: &[f64],
    adaptive: ControlPolicy,
    base: &SimConfig,
    domain_target: usize,
    target: LookupTarget,
) -> Result<Vec<AlphaAdaptivePoint>, P2pError> {
    let mut out = Vec::new();
    for &alpha in fixed_alphas {
        let mut cfg = *base;
        cfg.alpha = alpha;
        cfg.control = None;
        let report = MultiDomainSim::new(cfg, domain_target, target)?.run();
        out.push(AlphaAdaptivePoint::from_report(
            format!("fixed-{alpha:.2}"),
            Some(alpha),
            report,
        ));
    }
    let mut cfg = *base;
    cfg.control = Some(adaptive);
    let report = MultiDomainSim::new(cfg, domain_target, target)?.run();
    out.push(AlphaAdaptivePoint::from_report(
        "adaptive".into(),
        None,
        report,
    ));
    Ok(out)
}

/// One row of the SP-rebirth stationarity experiment
/// ([`figure_rebirth`]): one long-horizon SP-churn run with rebirth
/// off (terminal dissolutions, monotone domain decay) or on
/// (latency-aware re-election keeps the population stationary).
#[derive(Debug, Clone)]
pub struct RebirthPoint {
    /// Whether SP rebirth was enabled for this run.
    pub rebirth: bool,
    /// Live domains at t = 0.
    pub initial_domains: usize,
    /// Live domains at the horizon.
    pub final_domains: usize,
    /// Minimum live-domain count ever sampled.
    pub min_live_domains: usize,
    /// Time-weighted mean live-domain count over the horizon.
    pub mean_live_domains: f64,
    /// Completed SP rebirths.
    pub rebirths: u64,
    /// Mean network-wide recall over the sampled lookups.
    pub mean_recall: f64,
    /// Mean stale answers per lookup.
    pub mean_stale_answers: f64,
    /// Reconciliation rounds across all domains.
    pub reconciliations: u64,
    /// Full report (carries `domain_count_trajectory`).
    pub report: MultiDomainReport,
}

/// Enables summary-peer churn on a configuration: every SP's session
/// ends after an exponential lifetime of the given mean, triggering
/// §4.3 dissolution (and, with [`SimConfig::rebirth`], re-election).
pub fn with_sp_churn(cfg: &SimConfig, mean_lifetime_s: f64) -> SimConfig {
    let mut out = *cfg;
    out.sp_lifetime = Some(LifetimeDistribution::Exponential {
        mean_s: mean_lifetime_s,
    });
    out
}

/// The SP-rebirth experiment: the same long-horizon SP-churn run twice
/// — rebirth off, then on. Without rebirth every departure is terminal
/// and the live-domain count decays monotonically toward zero; with it
/// each dissolved domain re-elects a replacement SP from its own live
/// hubs (latency-aware on the message plane) and the count stays near
/// its initial value — the stationarity `BENCH_rebirth.json` checks
/// (time-weighted mean within ±10% of the initial count).
pub fn figure_rebirth(
    base: &SimConfig,
    sp_mean_lifetime_s: f64,
    domain_target: usize,
    target: LookupTarget,
) -> Result<Vec<RebirthPoint>, P2pError> {
    let mut out = Vec::new();
    for enabled in [false, true] {
        let mut cfg = with_sp_churn(base, sp_mean_lifetime_s);
        cfg.rebirth = enabled;
        let report = MultiDomainSim::new(cfg, domain_target, target)?.run();
        out.push(RebirthPoint {
            rebirth: enabled,
            initial_domains: report.initial_domains,
            final_domains: report.n_domains,
            min_live_domains: report.min_live_domains,
            mean_live_domains: report.mean_live_domains(),
            rebirths: report.rebirths,
            mean_recall: report.mean_recall,
            mean_stale_answers: report.mean_stale_answers,
            reconciliations: report.reconciliations,
            report,
        });
    }
    Ok(out)
}

/// One point of the full-vs-incremental reconciliation cost sweep
/// ([`reconcile_cost_sweep`]): a single α-gated pull over a domain of
/// `n` members of which `stale_members` drifted, measured both ways.
#[derive(Debug, Clone)]
pub struct ReconcilePoint {
    /// Domain size.
    pub n: usize,
    /// Fraction of members drifted before the round.
    pub drift_fraction: f64,
    /// Members actually flagged stale (⌈fraction·n⌉, at least 1).
    pub stale_members: usize,
    /// Member summaries the incremental round decoded + folded.
    pub incr_merged: u64,
    /// Live members the incremental round skipped.
    pub incr_skipped: u64,
    /// Delta payload bytes the incremental round pulled.
    pub incr_delta_bytes: u64,
    /// Token hops of the incremental round (stale members + store).
    pub incr_token_hops: u64,
    /// Wall-clock microseconds of the incremental round.
    pub incr_micros: u64,
    /// Member summaries a from-scratch rebuild decodes + folds (every
    /// live member).
    pub full_merged: u64,
    /// Wall-clock microseconds of the from-scratch oracle rebuild.
    pub full_micros: u64,
    /// Encoded GS size after the round.
    pub gs_bytes: usize,
    /// Whether the incremental GS matched the oracle byte-for-byte.
    pub equivalent: bool,
}

/// Measures one reconciliation round full-scratch vs incrementally, per
/// domain size and drift fraction: builds a domain, enrolls everyone,
/// drifts `fraction` of the members (regenerated data + stale flag),
/// then runs the incremental pull and times the from-scratch oracle on
/// the same state. The `BENCH_reconcile.json` emitted by
/// `multidomain_churn --reconcile` is this sweep; its headline claim —
/// per-round merge work scales with the stale subset, not membership —
/// is the `incr_merged == stale_members ≪ full_merged` column pair.
pub fn reconcile_cost_sweep(
    sizes: &[usize],
    drift_fractions: &[f64],
    base: &SimConfig,
) -> Result<Vec<ReconcilePoint>, P2pError> {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(base.template_count);
    let mut out = Vec::new();
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(base.seed ^ (n as u64).wrapping_mul(0xA24B_AED4));
        let mut peers: Vec<Option<PeerState>> = Vec::with_capacity(n);
        for p in 0..n {
            peers.push(Some(PeerState::new(generate_peer_data(
                &mut rng,
                p as u32,
                &bk,
                &templates,
                base.match_fraction,
                base.records_per_peer,
            )?)));
        }
        let mut core = DomainCore::new(None, (0..n as u32).map(NodeId).collect());
        core.enroll_all(&mut peers, &mut MessageLedger::new())?;

        for &fraction in drift_fractions {
            let stale = ((fraction * n as f64).ceil() as usize).clamp(1, n);
            let mut core_i = core.clone();
            let mut peers_i = peers.clone();
            // Spread the drifted members across the id space.
            for k in 0..stale {
                let p = (k * n / stale) as u32;
                let data = generate_peer_data(
                    &mut rng,
                    p,
                    &bk,
                    &templates,
                    base.match_fraction,
                    base.records_per_peer,
                )?;
                peers_i[p as usize].as_mut().expect("generated above").data = data;
                core_i.cl.set_freshness(NodeId(p), Freshness::NeedsRefresh);
            }

            let mut ledger = MessageLedger::new();
            let t0 = Instant::now();
            let work = core_i.reconcile(&mut peers_i, &mut ledger)?;
            let incr_micros = t0.elapsed().as_micros() as u64;

            let t1 = Instant::now();
            let oracle = core_i.full_rebuild_oracle(&peers_i)?;
            let full_micros = t1.elapsed().as_micros() as u64;

            out.push(ReconcilePoint {
                n,
                drift_fraction: fraction,
                stale_members: stale,
                incr_merged: work.merged,
                incr_skipped: work.skipped,
                incr_delta_bytes: work.delta_bytes,
                incr_token_hops: ledger.sent(MessageClass::Reconciliation),
                incr_micros,
                full_merged: peers_i.iter().flatten().filter(|s| s.up).count() as u64,
                full_micros,
                gs_bytes: core_i.gs_bytes_last,
                equivalent: wire::encode(&core_i.gs) == wire::encode(&oracle),
            });
        }
    }
    Ok(out)
}

/// A compact run of the full pipeline at small scale — used by tests and
/// the quickstart example to sanity-check the whole stack end to end.
pub fn smoke_run(seed: u64) -> Result<DomainReport, P2pError> {
    let mut cfg = SimConfig::paper_defaults(24, 0.3);
    cfg.horizon = SimTime::from_hours(4);
    cfg.query_count = 20;
    cfg.records_per_peer = 10;
    cfg.seed = seed;
    Ok(DomainSim::new(cfg)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> SimConfig {
        let mut c = SimConfig::paper_defaults(32, 0.3);
        c.horizon = SimTime::from_hours(4);
        c.query_count = 24;
        c.records_per_peer = 10;
        c
    }

    #[test]
    fn figure4_rows_cover_the_grid() {
        let rows = figure4(&[16, 32], &[0.3, 0.8], &quick_base()).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.worst_stale), "{r:?}");
        }
        // Higher α tolerates more staleness (on average across sizes).
        let avg = |a: f64| {
            rows.iter()
                .filter(|r| r.alpha == a)
                .map(|r| r.worst_stale)
                .sum::<f64>()
                / 2.0
        };
        assert!(
            avg(0.8) + 1e-9 >= avg(0.3),
            "0.8: {} vs 0.3: {}",
            avg(0.8),
            avg(0.3)
        );
    }

    #[test]
    fn figure5_real_fn_below_worst_case() {
        let base = quick_base();
        let f4 = figure4(&[32], &[0.3], &base).unwrap();
        let f5 = figure5(&[32], &base).unwrap();
        // The paper: real stale effects are several times below the worst
        // case (their factor: 4.5).
        assert!(
            f5[0].real_fn <= f4[0].worst_stale,
            "real {} must not exceed worst {}",
            f5[0].real_fn,
            f4[0].worst_stale
        );
    }

    #[test]
    fn figure6_total_grows_with_n_but_per_node_flat() {
        let rows = figure6(&[16, 64], &[0.3], &quick_base()).unwrap();
        assert!(rows[1].total_messages > rows[0].total_messages);
        // Per-node rate stays the same order of magnitude ("the number of
        // messages per node remains almost the same").
        let ratio = rows[1].per_node_s / rows[0].per_node_s.max(1e-12);
        assert!((0.2..=5.0).contains(&ratio), "per-node ratio {ratio}");
    }

    #[test]
    fn figure7_ordering_matches_paper() {
        let rows = figure7(&[200, 1000], 0.11, &quick_base(), 10);
        for r in &rows {
            assert!(
                r.centralized < r.summary_querying,
                "centralized is the lower bound: {r:?}"
            );
            assert!(
                r.summary_querying < r.flooding,
                "SQ must beat flooding: {r:?}"
            );
        }
        // The SQ advantage grows with network size.
        let gain = |r: &QueryCostPoint| r.flooding / r.summary_querying;
        assert!(gain(&rows[1]) > gain(&rows[0]) * 0.8);
    }

    #[test]
    fn multidomain_churn_rows_cover_scales() {
        let mut base = quick_base();
        base.n_peers = 120;
        let rows = figure_multidomain_churn(&[0.5, 2.0], &base, 20, LookupTarget::Total).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.report.queries > 0);
            assert!((0.0..=1.0 + 1e-12).contains(&r.mean_recall), "{r:?}");
        }
    }

    #[test]
    fn alpha_adaptive_rows_cover_fixed_and_adaptive() {
        let mut base = quick_base();
        base.n_peers = 120;
        base.query_count = 40;
        let base = with_heterogeneous_drift(&base, 4.0);
        let rows = figure_alpha_adaptive(
            &[0.2, 0.6],
            ControlPolicy::adaptive_default(0.2),
            &base,
            20,
            LookupTarget::Total,
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].label, "adaptive");
        assert!(rows[2].fixed_alpha.is_none());
        // Fixed rows never move off their pinned threshold; the
        // adaptive row stays inside the policy bounds.
        assert!(rows[0].final_alphas.iter().all(|&a| a == 0.2));
        assert!(rows[1].final_alphas.iter().all(|&a| a == 0.6));
        assert!(!rows[2].final_alphas.is_empty());
        assert!(rows[2]
            .final_alphas
            .iter()
            .all(|&a| (0.05..=0.9).contains(&a)));
        for r in &rows {
            assert!((0.0..=1.0 + 1e-12).contains(&r.stale_answer_fraction));
            assert!(r.report.queries > 0);
        }
    }

    #[test]
    fn rebirth_rows_show_decay_vs_stationarity() {
        let mut base = quick_base();
        base.n_peers = 150;
        base.horizon = SimTime::from_hours(8);
        let rows = figure_rebirth(&base, 3600.0, 25, LookupTarget::Total).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].rebirth && rows[1].rebirth);
        assert_eq!(rows[0].rebirths, 0, "no rebirths when disabled");
        assert!(rows[1].rebirths > 0, "departures trigger re-elections");
        assert!(
            rows[0].final_domains < rows[0].initial_domains,
            "terminal dissolutions decay the population"
        );
        assert!(
            rows[1].mean_live_domains > rows[0].mean_live_domains,
            "rebirth keeps more domains alive on average"
        );
        // The trajectory starts at the initial count and is sampled on
        // every dissolution/rebirth.
        let traj = &rows[1].report.domain_count_trajectory;
        assert_eq!(traj.first().map(|&(_, n)| n), Some(rows[1].initial_domains));
        assert!(traj.len() > 2);
    }

    #[test]
    fn scale_churn_shrinks_every_clock() {
        let base = quick_base();
        let fast = scale_churn(&base, 4.0);
        match (base.lifetime, fast.lifetime) {
            (
                p2psim::churn::LifetimeDistribution::LogNormalMeanMedian {
                    mean_s: m0,
                    median_s: d0,
                },
                p2psim::churn::LifetimeDistribution::LogNormalMeanMedian {
                    mean_s: m1,
                    median_s: d1,
                },
            ) => {
                assert!((m1 - m0 / 4.0).abs() < 1e-9);
                assert!((d1 - d0 / 4.0).abs() < 1e-9);
            }
            other => panic!("distribution family changed: {other:?}"),
        }
        assert!((fast.mean_downtime_s - base.mean_downtime_s / 4.0).abs() < 1e-9);
        fast.validate().unwrap();
    }

    #[test]
    fn reconcile_sweep_scales_with_stale_subset_and_stays_equivalent() {
        let mut base = quick_base();
        base.records_per_peer = 8;
        let points = reconcile_cost_sweep(&[60], &[0.05, 0.5], &base).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.equivalent,
                "incremental GS diverged from the oracle: {p:?}"
            );
            assert_eq!(p.incr_merged as usize, p.stale_members);
            assert_eq!(p.incr_skipped as usize, p.n - p.stale_members);
            assert_eq!(p.incr_token_hops, p.incr_merged + 1, "stale hops + store");
            assert_eq!(p.full_merged as usize, p.n);
        }
        // Merge work tracks the stale subset, not the membership.
        assert!(points[0].incr_merged < points[1].incr_merged);
        assert_eq!(points[0].incr_merged, 3, "5% of 60");
    }

    #[test]
    fn smoke_run_is_deterministic() {
        let a = smoke_run(7).unwrap();
        let b = smoke_run(7).unwrap();
        assert_eq!(a.push_messages, b.push_messages);
        assert_eq!(a.queries, b.queries);
    }
}
