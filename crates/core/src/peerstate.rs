//! The shared per-peer / per-domain state machine (§4.2–§4.3), extracted
//! from the old single-domain simulator so that one event loop can drive
//! any number of domains.
//!
//! * [`PeerState`] — one partner peer: liveness, generated database
//!   artifacts, and the bookkeeping the maintenance protocols need;
//! * [`MessageLedger`] — message/byte accounting per [`MessageClass`],
//!   the paper's §6.1 cost unit, plus the reconciliation merge-work
//!   counters ([`ReconcileWork`]);
//! * [`DomainCore`] — one domain's summary peer state: the global
//!   summary (GS), the cooperation list (CL) and the push/pull protocol
//!   transitions. [`crate::domain::DomainSim`] drives exactly one
//!   `DomainCore`; the unified kernel ([`crate::kernel`]) drives many,
//!   interleaved in a single virtual clock.
//!
//! ## Incremental GS maintenance
//!
//! The GS is **not** rebuilt from every member on every pull. Each
//! domain owns a [`saintetiq::delta::GsAccumulator`] holding one entry
//! per contributing member — the flattened leaves of the summary that
//! member last shipped. A reconciliation round (§4.2.2's pull) then
//! only
//!
//! 1. pulls the *stale subset*: CL entries flagged `NeedsRefresh` /
//!    `Unavailable` that are still live are decoded and re-folded via
//!    `update_source` (O(|stale|) decode + merge work — the paper's
//!    §6.1 cost unit now scales with what changed);
//! 2. expires departed members via `remove_source` (O(1) each);
//! 3. stores the canonical merged view ([`GsAccumulator::build_merged`]).
//!    This store is Θ(|GS|) — and the GS's per-source cell entries make
//!    |GS| itself linear in total contributions — but that lower bound
//!    is inherent to materializing `NewGS` at all (the §4.2.2 token's
//!    final hop carries the same payload); the expensive per-member
//!    decode + Cobweb re-merge is what the accumulator eliminates
//!    (≈3× per round at 1% drift in `BENCH_reconcile.json`).
//!
//! Fresh live members are *skipped*: their stored contribution is, by
//! the push-protocol invariant, identical to their current local
//! summary (drift always flags before the next pull can run). The
//! retained escape hatch [`DomainCore::full_rebuild_oracle`] rebuilds
//! from scratch over every live member; because the accumulator's
//! merged view is canonical in the contribution set, the oracle and the
//! incrementally maintained GS agree **byte-for-byte** — asserted by
//! the `gs_incremental` property tests and the debug paths.
//!
//! A second behavioral refinement rides along: a *partial* pull (a
//! latency-mode ring whose token was dropped mid-ring) now keeps the
//! still-live members the token missed in the GS with their previous
//! descriptions, instead of dropping them until a follow-up ring — the
//! paper's descriptions persist until refreshed or expired (§4.3),
//! only departed members' data is removed.

use std::collections::BTreeMap;

use bytes::Bytes;
use p2psim::network::{MessageClass, NodeId};
use p2psim::time::SimTime;
use saintetiq::cell::SourceId;
use saintetiq::delta::GsAccumulator;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::Proposition;
use saintetiq::wire;

use crate::coop::CooperationList;
use crate::error::P2pError;
use crate::freshness::Freshness;
use crate::messages::Message;
use crate::routing::{route_query_scoped, QueryOutcome, RoutingPolicy};
use crate::workload::PeerData;

/// The CBK name every generated summary binds to.
pub const CBK_NAME: &str = "medical-cbk-v1";

/// The label-count shape of the medical CBK's summary grid.
pub const CBK_SHAPE: [usize; 4] = [3, 3, 3, 12];

/// An empty GS over the medical CBK.
pub fn empty_gs() -> SummaryTree {
    SummaryTree::new(CBK_NAME, CBK_SHAPE.to_vec())
}

/// An empty accumulator over the medical CBK.
pub fn empty_accumulator() -> GsAccumulator {
    GsAccumulator::new(CBK_NAME, CBK_SHAPE.to_vec())
}

/// One partner peer's simulation state.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Currently connected.
    pub up: bool,
    /// The peer's generated database artifacts (summary, match bits).
    pub data: PeerData,
    /// Match bits as of the last time this peer's summary was merged
    /// into its domain's GS (`0` when absent from the GS).
    pub merged_bits: u32,
    /// True while a drift event is in flight for this peer — prevents
    /// rejoin cycles from stacking duplicate drift streams.
    pub drift_scheduled: bool,
    /// True when the local summary was regenerated (drift) since its
    /// contribution was last merged into a domain accumulator. The
    /// push protocol normally mirrors this in the CL flag, but a push
    /// can be lost when its domain dissolves mid-flight (§4.3) or the
    /// peer drifts while orphaned; SP rebirth consults this bit when
    /// seeding a reborn domain so such members are re-flagged stale
    /// instead of silently serving outdated descriptions.
    pub dirty: bool,
}

impl PeerState {
    /// A freshly generated, connected peer with a drift event pending.
    pub fn new(data: PeerData) -> Self {
        Self {
            up: true,
            merged_bits: data.match_bits,
            data,
            drift_scheduled: true,
            dirty: false,
        }
    }
}

/// Merge work done by GS maintenance rounds: how many member summaries
/// were actually decoded and folded (`merged`), how many live members
/// were skipped because their stored contribution was still fresh
/// (`skipped`), how many departed contributions were expired
/// (`removed`), and the delta payload bytes pulled (`delta_bytes`).
///
/// `merged` scaling with the stale subset — not total membership — is
/// the entire point of the incremental accumulator; `BENCH_reconcile`
/// tracks it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileWork {
    /// Member summaries decoded and folded into the accumulator.
    pub merged: u64,
    /// Live members skipped (contribution reused unchanged).
    pub skipped: u64,
    /// Departed contributions expired from the accumulator.
    pub removed: u64,
    /// Encoded bytes of the summaries actually pulled.
    pub delta_bytes: u64,
}

impl ReconcileWork {
    /// Folds another round's work into this tally.
    pub fn absorb(&mut self, other: ReconcileWork) {
        self.merged += other.merged;
        self.skipped += other.skipped;
        self.removed += other.removed;
        self.delta_bytes += other.delta_bytes;
    }
}

/// Message and wire-byte accounting per class, plus — in latency mode —
/// per-class delivery-latency distributions (count + total virtual time
/// between send and delivery), plus the reconciliation merge-work
/// counters.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    counters: BTreeMap<MessageClass, u64>,
    byte_counters: BTreeMap<MessageClass, u64>,
    latency_counters: BTreeMap<MessageClass, (u64, u64)>,
    reconcile_work: ReconcileWork,
}

impl MessageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` copies of `msg`: one message and its wire bytes each.
    pub fn count(&mut self, msg: &Message, n: u64) {
        let class = msg.class();
        *self.counters.entry(class).or_insert(0) += n;
        *self.byte_counters.entry(class).or_insert(0) += n * msg.wire_bytes() as u64;
    }

    /// Message counts per class.
    pub fn counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.counters
    }

    /// Wire bytes per class.
    pub fn byte_counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.byte_counters
    }

    /// Messages sent in one class.
    pub fn sent(&self, class: MessageClass) -> u64 {
        self.counters.get(&class).copied().unwrap_or(0)
    }

    /// Records one latency-mode delivery: the message spent `latency`
    /// virtual time in flight.
    pub fn count_delivery(&mut self, class: MessageClass, latency: SimTime) {
        let slot = self.latency_counters.entry(class).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += latency.0;
    }

    /// Per-class `(deliveries, total in-flight µs)` — the raw latency
    /// distribution data.
    pub fn latency_counters(&self) -> &BTreeMap<MessageClass, (u64, u64)> {
        &self.latency_counters
    }

    /// Mean in-flight seconds of one class (0.0 when nothing of that
    /// class was delivered — instantaneous mode, or the class is unused).
    pub fn mean_latency_s(&self, class: MessageClass) -> f64 {
        match self.latency_counters.get(&class) {
            Some(&(n, total_us)) if n > 0 => total_us as f64 / n as f64 / 1_000_000.0,
            _ => 0.0,
        }
    }

    /// Folds one reconciliation round's merge work into the tally.
    pub fn count_reconcile_work(&mut self, work: ReconcileWork) {
        self.reconcile_work.absorb(work);
    }

    /// Accumulated reconciliation merge work over the run.
    pub fn reconcile_work(&self) -> ReconcileWork {
        self.reconcile_work
    }
}

/// One member's summary snapshot as carried by a latency-mode
/// reconciliation token: the member's local summary and match bits *at
/// the virtual time the token passed through it*. If the member drifts
/// or departs after its token hop, the stored GS keeps describing this
/// snapshot — exactly the staleness window instantaneous delivery hides.
#[derive(Debug, Clone)]
pub struct SummarySnapshot {
    /// The member the token visited.
    pub peer: NodeId,
    /// Its encoded local summary at token-pass time.
    pub summary: Bytes,
    /// Its exact match bits at token-pass time.
    pub match_bits: u32,
}

/// Immutable peer lookup that maps a missing slot to [`P2pError`].
fn peer_ref(peers: &[Option<PeerState>], m: NodeId) -> Result<&PeerState, P2pError> {
    peers
        .get(m.index())
        .and_then(|s| s.as_ref())
        .ok_or(P2pError::UnknownPeer(m.0))
}

/// True when the peer exists and is connected.
fn peer_up(peers: &[Option<PeerState>], m: NodeId) -> bool {
    peers
        .get(m.index())
        .and_then(|s| s.as_ref())
        .is_some_and(|p| p.up)
}

/// One domain's summary-peer state: members, GS, CL and the §4.2–§4.3
/// protocol transitions.
#[derive(Debug, Clone)]
pub struct DomainCore {
    /// The summary peer hosting this domain (`None` for the standalone
    /// single-domain simulation, whose SP is implicit).
    pub sp: Option<NodeId>,
    /// The partner peers (network-global ids).
    pub members: Vec<NodeId>,
    /// The cooperation list.
    pub cl: CooperationList,
    /// The cached merged view of [`DomainCore::acc`] — rebuilt
    /// canonically after every pull, always what queries route against.
    pub gs: SummaryTree,
    /// The per-member accumulator behind the GS: one entry per
    /// contributing member, updated/removed incrementally.
    pub acc: GsAccumulator,
    /// Reconciliation rounds completed.
    pub reconciliations: u64,
    /// Cumulative delta payload bytes this domain's pulls have shipped
    /// — the per-domain reconciliation cost signal the control plane
    /// ([`crate::control`]) differences per epoch.
    pub delta_bytes_total: u64,
    /// Encoded GS size after the last rebuild.
    pub gs_bytes_last: usize,
    /// Long-range links to other summary peers (§5.2.2's `k`-degree
    /// inter-domain shortcuts; empty in the single-domain simulation).
    pub long_links: Vec<NodeId>,
    /// True after the SP departed (§4.3): the domain no longer answers
    /// queries, forwards tokens or accepts pushes; its former members
    /// re-home to surviving domains.
    pub dissolved: bool,
}

impl DomainCore {
    /// An empty domain over the given members.
    pub fn new(sp: Option<NodeId>, members: Vec<NodeId>) -> Self {
        Self {
            sp,
            members,
            cl: CooperationList::new(),
            gs: empty_gs(),
            acc: empty_accumulator(),
            reconciliations: 0,
            delta_bytes_total: 0,
            gs_bytes_last: 0,
            long_links: Vec::new(),
            dissolved: false,
        }
    }

    /// Tears the domain down after its SP departed: members, CL, GS,
    /// accumulator and long links are cleared; the slot stays in place
    /// so domain indices held by in-flight conversations remain valid
    /// (their deliveries no-op against a dissolved domain).
    pub fn dissolve(&mut self) {
        self.dissolved = true;
        self.members.clear();
        self.cl = CooperationList::new();
        self.acc.clear();
        self.gs = empty_gs();
        self.gs_bytes_last = 0;
        self.long_links.clear();
    }

    /// Re-activates a dissolved domain slot under a freshly elected
    /// summary peer (§4.3 rebirth). `seeded` is the reborn membership
    /// with per-member seed freshness — `Fresh` when the member's
    /// retained description is known current (the push-protocol
    /// invariant held across the hand-over), stale otherwise — and
    /// `acc` is the accumulator retained from the dissolved domain.
    /// Contributions of peers outside the reborn membership (the
    /// promoted SP itself, members that departed during the orphan
    /// window) are expired, and the first GS is stored straight from
    /// the surviving contributions: a delta hand-over, not a
    /// from-scratch rebuild — the next α-gated pull visits only the
    /// stale-seeded subset.
    pub fn revive(&mut self, sp: NodeId, seeded: Vec<(NodeId, Freshness)>, acc: GsAccumulator) {
        self.dissolved = false;
        self.sp = Some(sp);
        self.acc = acc;
        self.cl = CooperationList::new();
        self.members = seeded.iter().map(|&(m, _)| m).collect();
        for &(m, f) in &seeded {
            self.cl.add_partner(m, f);
        }
        let keep: std::collections::BTreeSet<SourceId> =
            self.members.iter().map(|m| SourceId(m.0)).collect();
        let drop: Vec<SourceId> = self.acc.sources().filter(|s| !keep.contains(s)).collect();
        for s in drop {
            self.acc.remove_source(s);
        }
        self.long_links.clear();
        self.store_merged();
    }

    /// Stores the accumulator's canonical merged view as the GS.
    fn store_merged(&mut self) {
        self.gs = self.acc.build_merged();
        self.gs_bytes_last = wire::encoded_size(&self.gs);
    }

    /// Decodes `m`'s current local summary into the accumulator and
    /// refreshes its merged bits. Returns the pulled payload size.
    fn pull_member(
        &mut self,
        m: NodeId,
        peers: &mut [Option<PeerState>],
    ) -> Result<usize, P2pError> {
        let st = peers
            .get_mut(m.index())
            .and_then(|s| s.as_mut())
            .ok_or(P2pError::UnknownPeer(m.0))?;
        let bytes = self
            .acc
            .update_source_encoded(SourceId(m.0), &st.data.summary)?;
        st.merged_bits = st.data.match_bits;
        st.dirty = false;
        Ok(bytes)
    }

    /// Expires `m`'s contribution (departed member). Returns whether it
    /// was contributing.
    fn expire_member(&mut self, m: NodeId, peers: &mut [Option<PeerState>]) -> bool {
        if let Some(st) = peers.get_mut(m.index()).and_then(|s| s.as_mut()) {
            st.merged_bits = 0;
        }
        self.acc.remove_source(SourceId(m.0))
    }

    /// Initial construction (§4.1): every member ships its `localsum`,
    /// enters the CL fresh, and every live member's summary is pulled
    /// into the accumulator.
    pub fn enroll_all(
        &mut self,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<(), P2pError> {
        for i in 0..self.members.len() {
            let m = self.members[i];
            let bytes = peer_ref(peers, m)?.data.summary.len();
            ledger.count(&Message::LocalSum { bytes }, 1);
            self.cl.add_partner(m, Freshness::Fresh);
            if peer_up(peers, m) {
                self.pull_member(m, peers)?;
            }
        }
        self.store_merged();
        Ok(())
    }

    /// Debug / verification oracle: the GS rebuilt from scratch over
    /// every live member's *current* local summary — what a full §4.2.2
    /// pull over the whole membership would store. The incremental path
    /// must agree with this byte-for-byte after every completed round
    /// (asserted by the `gs_incremental` property tests).
    pub fn full_rebuild_oracle(
        &self,
        peers: &[Option<PeerState>],
    ) -> Result<SummaryTree, P2pError> {
        let mut acc = empty_accumulator();
        for &m in &self.members {
            if let Some(st) = peers.get(m.index()).and_then(|s| s.as_ref()) {
                if st.up {
                    acc.update_source_encoded(SourceId(m.0), &st.data.summary)?;
                }
            }
        }
        Ok(acc.build_merged())
    }

    /// §4.2.2's pull phase, fired when the CL crosses α. Returns true
    /// when a reconciliation round ran.
    pub fn maybe_reconcile(
        &mut self,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<bool, P2pError> {
        if !self.cl.needs_reconciliation(alpha) {
            return Ok(false);
        }
        self.reconcile(peers, ledger)?;
        Ok(true)
    }

    /// Runs one reconciliation round unconditionally: the token ring
    /// visits only the *stale* live members (plus the final store hop),
    /// each visited member's summary replaces its accumulator entry,
    /// departed members' contributions are expired, and the CL resets
    /// to the live membership.
    ///
    /// Token bytes are charged per hop at the token's *cumulative* size
    /// — `NewGS` grows as it collects the stale members' summaries, so
    /// early hops are cheap and the final store hop carries everything,
    /// matching `routing::RingConversation::token_bytes` on
    /// the latency plane. A round that visits nobody (every stale entry
    /// was a departed member) circulates no token at all — the SP just
    /// expires them and stores locally, exactly like the latency
    /// plane's empty-route case.
    pub fn reconcile(
        &mut self,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<ReconcileWork, P2pError> {
        let mut work = ReconcileWork::default();
        let mut token_bytes = 0usize;
        let members = self.members.clone();
        for m in members {
            if !peer_up(peers, m) {
                if self.expire_member(m, peers) {
                    work.removed += 1;
                }
                continue;
            }
            // Live and fresh: the stored contribution is current (drift
            // always flags before the next pull); skip the hop. Members
            // missing from the CL (pre-enrollment state) are pulled.
            let stale = self.cl.freshness(m).is_none_or(|f| f.as_stale_bit());
            if !stale {
                work.skipped += 1;
                continue;
            }
            // The hop *to* this member carries the token gathered so far.
            ledger.count(
                &Message::ReconciliationToken {
                    bytes: token_bytes.max(64),
                },
                1,
            );
            let pulled = self.pull_member(m, peers)?;
            token_bytes += pulled;
            work.merged += 1;
            work.delta_bytes += pulled as u64;
        }
        // The final hop returns the gathered token to the SP — unless
        // no member was visited, in which case no token ever left it.
        if work.merged > 0 {
            ledger.count(
                &Message::ReconciliationToken {
                    bytes: token_bytes.max(64),
                },
                1,
            );
        }
        self.store_merged();
        self.cl.reconcile(|p| peer_up(peers, p));
        ledger.count_reconcile_work(work);
        self.delta_bytes_total += work.delta_bytes;
        self.reconciliations += 1;
        Ok(work)
    }

    /// A member's data drifted: its freshness flag is pushed (§4.2.1).
    /// The caller regenerates the data and re-schedules the drift timer.
    pub fn on_drift(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<(), P2pError> {
        ledger.count(&Message::Push { value: 1 }, 1);
        self.cl.set_freshness(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger)?;
        Ok(())
    }

    /// A member leaves gracefully: §4.3's `v = 2` push.
    pub fn on_leave(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<(), P2pError> {
        ledger.count(&Message::Push { value: 2 }, 1);
        self.cl.set_freshness(peer, Freshness::Unavailable);
        self.maybe_reconcile(alpha, peers, ledger)?;
        Ok(())
    }

    /// Latency-mode arrival of a freshness push at the SP: the CL
    /// transition alone. The α check and the ring *conversation* live in
    /// the kernel, which owns the virtual clock; message accounting
    /// happened at send time. A push from a non-member (e.g. one that
    /// was removed while the push was in flight) is dropped.
    pub fn apply_push(&mut self, peer: NodeId, freshness: Freshness) -> bool {
        if self.dissolved {
            return false;
        }
        self.cl.set_freshness(peer, freshness)
    }

    /// Latency-mode arrival of a (re)joining member's `localsum` at the
    /// SP: the member enters the CL stale, awaiting the next pull. If
    /// the peer was never a member of this domain (an SP-churn re-home),
    /// it also enters the member list.
    pub fn apply_localsum(&mut self, peer: NodeId) -> bool {
        if self.dissolved {
            return false;
        }
        if !self.members.contains(&peer) {
            self.members.push(peer);
        }
        self.cl.add_partner(peer, Freshness::NeedsRefresh);
        true
    }

    /// Latency-mode completion of a reconciliation ring: each gathered
    /// snapshot replaces its member's accumulator entry, and the SP
    /// stores the rebuilt merged view. Members the token *missed* (it
    /// was dropped at a churned-out peer and the watchdog fired) keep
    /// both their stale flags *and* their previous GS contributions if
    /// they are up — α re-arms a follow-up ring while the old
    /// descriptions keep serving queries; missed members that are down
    /// are expired and removed. Token/message accounting happened per
    /// hop at send time; only the merge work is tallied here.
    pub fn reconcile_from_snapshots(
        &mut self,
        gathered: &[SummarySnapshot],
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<ReconcileWork, P2pError> {
        let mut work = ReconcileWork::default();
        let visited: std::collections::BTreeSet<NodeId> = gathered.iter().map(|s| s.peer).collect();
        for snap in gathered {
            self.acc
                .update_source_encoded(SourceId(snap.peer.0), &snap.summary)?;
            if let Some(st) = peers.get_mut(snap.peer.index()).and_then(|s| s.as_mut()) {
                st.merged_bits = snap.match_bits;
                // The merged contribution is current again — unless the
                // member drifted after the token passed it, in which
                // case its (re-armed) flag and dirty bit both stand.
                if st.data.summary == snap.summary {
                    st.dirty = false;
                }
            }
            work.merged += 1;
            work.delta_bytes += snap.summary.len() as u64;
        }
        for m in self.members.clone() {
            if visited.contains(&m) {
                continue;
            }
            if peer_up(peers, m) {
                work.skipped += 1;
            } else if self.expire_member(m, peers) {
                work.removed += 1;
            }
        }
        self.store_merged();
        // Token-visited members reset to fresh; unvisited live members
        // keep their flags (partial pull); unvisited down members drop.
        let stale_survivors: Vec<(NodeId, Freshness)> = self
            .cl
            .partners()
            .filter(|p| !visited.contains(p) && peer_up(peers, *p))
            .map(|p| (p, self.cl.freshness(p).unwrap_or(Freshness::NeedsRefresh)))
            .collect();
        self.cl
            .reconcile(|p| visited.contains(&p) || peer_up(peers, p));
        for (p, f) in stale_survivors {
            self.cl.set_freshness(p, f);
        }
        let cl = &self.cl;
        self.members.retain(|&m| cl.contains(m));
        ledger.count_reconcile_work(work);
        self.delta_bytes_total += work.delta_bytes;
        self.reconciliations += 1;
        Ok(work)
    }

    /// A member rejoins: ships its `localsum` and awaits the next pull
    /// before the GS describes it.
    pub fn on_join(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> Result<(), P2pError> {
        let bytes = peer_ref(peers, peer)?.data.summary.len();
        ledger.count(&Message::LocalSum { bytes }, 1);
        self.cl.add_partner(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger)?;
        Ok(())
    }

    /// Routes one query against this domain's current GS/CL state and
    /// scores it against exact ground truth over the member set.
    pub fn route_local(
        &self,
        prop: &Proposition,
        policy: RoutingPolicy,
        peers: &[Option<PeerState>],
        template: usize,
    ) -> QueryOutcome {
        route_query_scoped(
            &self.gs,
            &self.cl,
            prop,
            policy,
            &self.members,
            |p| match peers[p.index()].as_ref() {
                Some(st) => (st.up, st.data.matches(template)),
                None => (false, false),
            },
        )
    }

    /// Live members right now.
    pub fn live_members<'a>(
        &'a self,
        peers: &'a [Option<PeerState>],
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.members
            .iter()
            .copied()
            .filter(|m| peers[m.index()].as_ref().is_some_and(|p| p.up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_peer_data, make_templates};
    use fuzzy::bk::BackgroundKnowledge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain_with_peers(n: u32) -> (DomainCore, Vec<Option<PeerState>>) {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(2);
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<Option<PeerState>> = (0..n)
            .map(|p| {
                Some(PeerState::new(
                    generate_peer_data(&mut rng, p, &bk, &templates, 0.3, 10)
                        .expect("valid workload"),
                ))
            })
            .collect();
        let core = DomainCore::new(None, (0..n).map(NodeId).collect());
        (core, peers)
    }

    /// Regenerates peer `p`'s data (simulated drift) and flags it.
    fn drift(core: &mut DomainCore, peers: &mut [Option<PeerState>], p: u32, seed: u64) {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = generate_peer_data(&mut rng, p, &bk, &templates, 0.3, 10).expect("valid");
        peers[p as usize].as_mut().unwrap().data = data;
        core.cl.set_freshness(NodeId(p), Freshness::NeedsRefresh);
    }

    #[test]
    fn enroll_builds_gs_and_cl() {
        let (mut core, mut peers) = domain_with_peers(12);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        assert_eq!(core.cl.len(), 12);
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.gs.all_sources().len(), 12);
        assert_eq!(core.acc.len(), 12);
        assert_eq!(
            ledger.sent(MessageClass::Construction),
            12,
            "one localsum each"
        );
        core.gs.check_invariants();
    }

    #[test]
    fn leave_then_reconcile_drops_member_from_gs() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();

        peers[3].as_mut().unwrap().up = false;
        core.on_leave(NodeId(3), 1.1, &mut peers, &mut ledger)
            .unwrap();
        assert_eq!(ledger.sent(MessageClass::Push), 1);
        assert_eq!(
            core.gs.all_sources().len(),
            10,
            "GS untouched before the pull"
        );

        let work = core.reconcile(&mut peers, &mut ledger).unwrap();
        assert_eq!(core.gs.all_sources().len(), 9, "departed peer expired");
        assert!(!core.cl.contains(NodeId(3)));
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.reconciliations, 1);
        // Incremental ring: the 9 fresh live members are skipped and the
        // departed member is expired locally — no token circulates.
        assert_eq!(work.merged, 0);
        assert_eq!(work.skipped, 9);
        assert_eq!(work.removed, 1);
        assert_eq!(ledger.sent(MessageClass::Reconciliation), 0);
    }

    #[test]
    fn alpha_threshold_gates_the_pull() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        // 2 of 10 stale: below α = 0.3.
        for p in [0u32, 1] {
            core.on_drift(NodeId(p), 0.3, &mut peers, &mut ledger)
                .unwrap();
        }
        assert_eq!(core.reconciliations, 0);
        // The third crosses 0.3.
        core.on_drift(NodeId(2), 0.3, &mut peers, &mut ledger)
            .unwrap();
        assert_eq!(core.reconciliations, 1);
        assert_eq!(core.cl.stale_fraction(), 0.0, "reset after the pull");
        // The ring visited exactly the 3 stale members.
        let work = ledger.reconcile_work();
        assert_eq!(work.merged, 3);
        assert_eq!(work.skipped, 7);
        assert_eq!(
            ledger.sent(MessageClass::Reconciliation),
            4,
            "3 hops + store"
        );
    }

    #[test]
    fn incremental_reconcile_matches_full_oracle() {
        let (mut core, mut peers) = domain_with_peers(12);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        // Drift three members, crash one, leave one.
        for (p, seed) in [(2u32, 101u64), (5, 102), (9, 103)] {
            drift(&mut core, &mut peers, p, seed);
        }
        peers[7].as_mut().unwrap().up = false; // silent failure
        peers[4].as_mut().unwrap().up = false;
        core.cl.set_freshness(NodeId(4), Freshness::Unavailable);

        let work = core.reconcile(&mut peers, &mut ledger).unwrap();
        assert_eq!(work.merged, 3, "only the stale live members were pulled");
        assert_eq!(work.removed, 2, "crash + leave expired");
        assert_eq!(work.skipped, 7);
        let oracle = core.full_rebuild_oracle(&peers).unwrap();
        assert_eq!(
            wire::encode(&core.gs),
            wire::encode(&oracle),
            "incremental GS must be byte-identical to the from-scratch rebuild"
        );
    }

    #[test]
    fn token_bytes_grow_cumulatively_along_the_ring() {
        let (mut core, mut peers) = domain_with_peers(8);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        for p in 0..8 {
            drift(&mut core, &mut peers, p, 200 + p as u64);
        }
        let before = ledger
            .byte_counters()
            .get(&MessageClass::Reconciliation)
            .copied();
        assert_eq!(before, None);
        let work = core.reconcile(&mut peers, &mut ledger).unwrap();
        assert_eq!(work.merged, 8);
        let token_bytes = ledger
            .byte_counters()
            .get(&MessageClass::Reconciliation)
            .copied()
            .unwrap();
        let hops = ledger.sent(MessageClass::Reconciliation);
        assert_eq!(hops, 9, "8 member hops + the store hop");
        // Cumulative growth: total hop bytes are strictly below charging
        // every hop at the final token size (the old upper bound), but at
        // least the final token once plus headers for the other hops.
        let final_token = work.delta_bytes as usize;
        let upper_bound = hops as usize * (40 + final_token);
        assert!(
            (token_bytes as usize) < upper_bound,
            "cumulative {token_bytes} must undercut the flat bound {upper_bound}"
        );
        assert!(token_bytes as usize >= final_token + hops as usize * 40);
    }

    #[test]
    fn partial_snapshot_reconciliation_keeps_missed_live_members() {
        let (mut core, mut peers) = domain_with_peers(6);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        for p in 0..6 {
            core.cl.set_freshness(NodeId(p), Freshness::NeedsRefresh);
        }
        peers[4].as_mut().unwrap().up = false;
        // The token visited members 0..3 and was dropped before 3..6.
        let gathered: Vec<SummarySnapshot> = (0..3u32)
            .map(|p| {
                let st = peers[p as usize].as_ref().unwrap();
                SummarySnapshot {
                    peer: NodeId(p),
                    summary: st.data.summary.clone(),
                    match_bits: st.data.match_bits,
                }
            })
            .collect();
        core.reconcile_from_snapshots(&gathered, &mut peers, &mut ledger)
            .unwrap();
        assert_eq!(
            core.gs.all_sources().len(),
            5,
            "gathered snapshots refreshed, missed live members retained, \
             down member expired"
        );
        assert_eq!(core.cl.freshness(NodeId(0)), Some(Freshness::Fresh));
        assert_eq!(
            core.cl.freshness(NodeId(3)),
            Some(Freshness::NeedsRefresh),
            "missed live member keeps its stale flag so α re-arms"
        );
        assert!(
            core.acc.contains(saintetiq::cell::SourceId(3)),
            "missed live member keeps its previous description"
        );
        assert!(!core.cl.contains(NodeId(4)), "missed down member dropped");
        assert!(!core.acc.contains(saintetiq::cell::SourceId(4)));
        assert!(core.members.contains(&NodeId(3)));
        assert!(!core.members.contains(&NodeId(4)));
        assert_eq!(core.reconciliations, 1);
        let work = ledger.reconcile_work();
        assert_eq!((work.merged, work.skipped, work.removed), (3, 2, 1));
    }

    #[test]
    fn dissolve_clears_domain_state() {
        let (mut core, mut peers) = domain_with_peers(5);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        core.dissolve();
        assert!(core.dissolved);
        assert!(core.members.is_empty());
        assert!(core.cl.is_empty());
        assert!(core.acc.is_empty());
        assert_eq!(core.gs.all_sources().len(), 0);
        assert!(!core.apply_push(NodeId(1), Freshness::NeedsRefresh));
        assert!(!core.apply_localsum(NodeId(1)));
    }

    #[test]
    fn revive_seeds_a_delta_domain_from_retained_descriptions() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        // Two members drift before the SP departs; their flags are
        // stale at dissolution time.
        drift(&mut core, &mut peers, 2, 301);
        drift(&mut core, &mut peers, 6, 302);
        // §4.3 rebirth: snapshot the seed, dissolve, revive under a
        // promoted member (peer 0) with the retained state. Peer 9
        // departed during the window; everyone else re-homes.
        let acc = core.acc.clone();
        let flags: Vec<(NodeId, Freshness)> = core
            .cl
            .partners()
            .map(|p| (p, core.cl.freshness(p).unwrap()))
            .collect();
        core.dissolve();
        peers[9].as_mut().unwrap().up = false;
        let seeded: Vec<(NodeId, Freshness)> = flags
            .into_iter()
            .filter(|&(m, _)| m != NodeId(0) && m != NodeId(9))
            .collect();
        core.revive(NodeId(0), seeded, acc);
        assert!(!core.dissolved);
        assert_eq!(core.sp, Some(NodeId(0)));
        assert_eq!(core.members.len(), 8);
        // The first GS is stored straight from the surviving
        // contributions — no member was decoded again.
        assert_eq!(core.gs.all_sources().len(), 8);
        assert!(!core.acc.contains(SourceId(0)), "promoted SP expired");
        assert!(!core.acc.contains(SourceId(9)), "departed member expired");
        assert_eq!(core.cl.freshness(NodeId(2)), Some(Freshness::NeedsRefresh));
        assert_eq!(core.cl.freshness(NodeId(3)), Some(Freshness::Fresh));
        // The first pull is a delta: only the two stale-seeded members
        // are visited, everyone else's contribution is reused.
        let work = core.reconcile(&mut peers, &mut ledger).unwrap();
        assert_eq!((work.merged, work.skipped, work.removed), (2, 6, 0));
        let oracle = core.full_rebuild_oracle(&peers).unwrap();
        assert_eq!(
            wire::encode(&core.gs),
            wire::encode(&oracle),
            "reborn incremental GS must match the from-scratch rebuild"
        );
    }

    #[test]
    fn snapshot_merge_clears_dirty_only_when_current() {
        let (mut core, mut peers) = domain_with_peers(4);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        // Snapshot peer 1, then drift it after the token passed.
        let snap = {
            let st = peers[1].as_ref().unwrap();
            SummarySnapshot {
                peer: NodeId(1),
                summary: st.data.summary.clone(),
                match_bits: st.data.match_bits,
            }
        };
        drift(&mut core, &mut peers, 1, 400);
        peers[1].as_mut().unwrap().dirty = true;
        core.reconcile_from_snapshots(&[snap], &mut peers, &mut ledger)
            .unwrap();
        assert!(
            peers[1].as_ref().unwrap().dirty,
            "a post-snapshot drift keeps the dirty bit"
        );
        // A current snapshot clears it.
        let snap2 = {
            let st = peers[1].as_ref().unwrap();
            SummarySnapshot {
                peer: NodeId(1),
                summary: st.data.summary.clone(),
                match_bits: st.data.match_bits,
            }
        };
        core.reconcile_from_snapshots(&[snap2], &mut peers, &mut ledger)
            .unwrap();
        assert!(!peers[1].as_ref().unwrap().dirty);
    }

    #[test]
    fn localsum_arrival_admits_rehomed_strangers() {
        let (mut core, mut peers) = domain_with_peers(4);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();
        // A re-homed peer from a dissolved domain carries a foreign id.
        assert!(core.apply_localsum(NodeId(99)));
        assert!(core.members.contains(&NodeId(99)));
        assert_eq!(core.cl.freshness(NodeId(99)), Some(Freshness::NeedsRefresh));
    }

    #[test]
    fn missing_peer_state_is_an_error_not_a_panic() {
        let (mut core, mut peers) = domain_with_peers(4);
        let mut ledger = MessageLedger::new();
        core.members.push(NodeId(40)); // no backing slot
        let err = core.enroll_all(&mut peers, &mut ledger);
        assert_eq!(err, Err(P2pError::UnknownPeer(40)));
        // on_join against an unknown peer errors cleanly too.
        let err = core.on_join(NodeId(77), 1.1, &mut peers, &mut ledger);
        assert_eq!(err, Err(P2pError::UnknownPeer(77)));
    }

    #[test]
    fn ledger_latency_accounting() {
        let mut ledger = MessageLedger::new();
        assert_eq!(ledger.mean_latency_s(MessageClass::Push), 0.0);
        ledger.count_delivery(MessageClass::Push, SimTime::from_millis(50));
        ledger.count_delivery(MessageClass::Push, SimTime::from_millis(150));
        ledger.count_delivery(MessageClass::Query, SimTime::from_millis(10));
        assert!((ledger.mean_latency_s(MessageClass::Push) - 0.1).abs() < 1e-12);
        assert!((ledger.mean_latency_s(MessageClass::Query) - 0.01).abs() < 1e-12);
        assert_eq!(
            ledger.latency_counters().get(&MessageClass::Push),
            Some(&(2, 200_000))
        );
    }

    #[test]
    fn rejoin_enters_cl_stale_until_pull() {
        let (mut core, mut peers) = domain_with_peers(8);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger).unwrap();

        peers[5].as_mut().unwrap().up = false;
        core.on_leave(NodeId(5), 1.1, &mut peers, &mut ledger)
            .unwrap();
        core.reconcile(&mut peers, &mut ledger).unwrap();
        assert!(!core.cl.contains(NodeId(5)));

        peers[5].as_mut().unwrap().up = true;
        core.on_join(NodeId(5), 1.1, &mut peers, &mut ledger)
            .unwrap();
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::NeedsRefresh));
        assert_eq!(
            core.gs.all_sources().len(),
            7,
            "description arrives with the next pull, not the join"
        );
        core.reconcile(&mut peers, &mut ledger).unwrap();
        assert_eq!(core.gs.all_sources().len(), 8);
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::Fresh));
    }
}
