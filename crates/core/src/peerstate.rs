//! The shared per-peer / per-domain state machine (§4.2–§4.3), extracted
//! from the old single-domain simulator so that one event loop can drive
//! any number of domains.
//!
//! * [`PeerState`] — one partner peer: liveness, generated database
//!   artifacts, and the bookkeeping the maintenance protocols need;
//! * [`MessageLedger`] — message/byte accounting per [`MessageClass`],
//!   the paper's §6.1 cost unit;
//! * [`DomainCore`] — one domain's summary peer state: the global
//!   summary (GS), the cooperation list (CL) and the push/pull protocol
//!   transitions. [`crate::domain::DomainSim`] drives exactly one
//!   `DomainCore`; the unified kernel ([`crate::kernel`]) drives many,
//!   interleaved in a single virtual clock.

use std::collections::BTreeMap;

use p2psim::network::{MessageClass, NodeId};
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::Proposition;
use saintetiq::wire;

use crate::coop::CooperationList;
use crate::freshness::Freshness;
use crate::messages::Message;
use crate::routing::{route_query_scoped, QueryOutcome, RoutingPolicy};
use crate::workload::PeerData;

/// The CBK name every generated summary binds to.
pub const CBK_NAME: &str = "medical-cbk-v1";

/// The label-count shape of the medical CBK's summary grid.
pub const CBK_SHAPE: [usize; 4] = [3, 3, 3, 12];

/// An empty GS over the medical CBK.
pub fn empty_gs() -> SummaryTree {
    SummaryTree::new(CBK_NAME, CBK_SHAPE.to_vec())
}

/// One partner peer's simulation state.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Currently connected.
    pub up: bool,
    /// The peer's generated database artifacts (summary, match bits).
    pub data: PeerData,
    /// Match bits as of the last time this peer's summary was merged
    /// into its domain's GS (`0` when absent from the GS).
    pub merged_bits: u32,
    /// True while a drift event is in flight for this peer — prevents
    /// rejoin cycles from stacking duplicate drift streams.
    pub drift_scheduled: bool,
}

impl PeerState {
    /// A freshly generated, connected peer with a drift event pending.
    pub fn new(data: PeerData) -> Self {
        Self {
            up: true,
            merged_bits: data.match_bits,
            data,
            drift_scheduled: true,
        }
    }
}

/// Message and wire-byte accounting per class.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    counters: BTreeMap<MessageClass, u64>,
    byte_counters: BTreeMap<MessageClass, u64>,
}

impl MessageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` copies of `msg`: one message and its wire bytes each.
    pub fn count(&mut self, msg: &Message, n: u64) {
        let class = msg.class();
        *self.counters.entry(class).or_insert(0) += n;
        *self.byte_counters.entry(class).or_insert(0) += n * msg.wire_bytes() as u64;
    }

    /// Message counts per class.
    pub fn counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.counters
    }

    /// Wire bytes per class.
    pub fn byte_counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.byte_counters
    }

    /// Messages sent in one class.
    pub fn sent(&self, class: MessageClass) -> u64 {
        self.counters.get(&class).copied().unwrap_or(0)
    }
}

/// One domain's summary-peer state: members, GS, CL and the §4.2–§4.3
/// protocol transitions.
#[derive(Debug, Clone)]
pub struct DomainCore {
    /// The summary peer hosting this domain (`None` for the standalone
    /// single-domain simulation, whose SP is implicit).
    pub sp: Option<NodeId>,
    /// The partner peers (network-global ids).
    pub members: Vec<NodeId>,
    /// The cooperation list.
    pub cl: CooperationList,
    /// The global summary.
    pub gs: SummaryTree,
    /// Reconciliation rounds completed.
    pub reconciliations: u64,
    /// Encoded GS size after the last rebuild.
    pub gs_bytes_last: usize,
    /// Long-range links to other summary peers (§5.2.2's `k`-degree
    /// inter-domain shortcuts; empty in the single-domain simulation).
    pub long_links: Vec<NodeId>,
}

impl DomainCore {
    /// An empty domain over the given members.
    pub fn new(sp: Option<NodeId>, members: Vec<NodeId>) -> Self {
        Self {
            sp,
            members,
            cl: CooperationList::new(),
            gs: empty_gs(),
            reconciliations: 0,
            gs_bytes_last: 0,
            long_links: Vec::new(),
        }
    }

    /// Initial construction (§4.1): every member ships its `localsum`,
    /// enters the CL fresh, and the GS is built from scratch.
    pub fn enroll_all(&mut self, peers: &mut [Option<PeerState>], ledger: &mut MessageLedger) {
        for i in 0..self.members.len() {
            let m = self.members[i];
            let bytes = peers[m.index()]
                .as_ref()
                .expect("member has state")
                .data
                .summary
                .len();
            ledger.count(&Message::LocalSum { bytes }, 1);
            self.cl.add_partner(m, Freshness::Fresh);
        }
        self.rebuild_gs(peers);
    }

    /// Rebuilds the GS from every live member's current local summary —
    /// the effect of one full reconciliation round.
    pub fn rebuild_gs(&mut self, peers: &mut [Option<PeerState>]) {
        let mut gs = empty_gs();
        let ecfg = EngineConfig::default();
        for &m in &self.members {
            let peer = peers[m.index()].as_mut().expect("member has state");
            if peer.up {
                let tree =
                    wire::decode(&peer.data.summary).expect("locally encoded summaries decode");
                saintetiq::merge::merge_into(&mut gs, &tree, &ecfg).expect("same CBK everywhere");
                peer.merged_bits = peer.data.match_bits;
            } else {
                peer.merged_bits = 0;
            }
        }
        self.gs_bytes_last = wire::encoded_size(&gs);
        self.gs = gs;
    }

    /// §4.2.2's pull phase, fired when the CL crosses α. Returns true
    /// when a reconciliation round ran.
    pub fn maybe_reconcile(
        &mut self,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> bool {
        if !self.cl.needs_reconciliation(alpha) {
            return false;
        }
        self.reconcile(peers, ledger);
        true
    }

    /// Runs one reconciliation round unconditionally: the token ring
    /// costs one message per live member plus the final store hop, the
    /// GS is rebuilt, and the CL resets to the live membership.
    pub fn reconcile(&mut self, peers: &mut [Option<PeerState>], ledger: &mut MessageLedger) {
        let live = self
            .members
            .iter()
            .filter(|m| peers[m.index()].as_ref().is_some_and(|p| p.up))
            .count() as u64;
        self.rebuild_gs(peers);
        // The token grows along the ring; counting every hop at the
        // final GS size is a documented upper bound on token bytes.
        ledger.count(
            &Message::ReconciliationToken {
                bytes: self.gs_bytes_last,
            },
            live + 1,
        );
        self.cl
            .reconcile(|p| peers[p.index()].as_ref().is_some_and(|s| s.up));
        self.reconciliations += 1;
    }

    /// A member's data drifted: its freshness flag is pushed (§4.2.1).
    /// The caller regenerates the data and re-schedules the drift timer.
    pub fn on_drift(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        ledger.count(&Message::Push { value: 1 }, 1);
        self.cl.set_freshness(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// A member leaves gracefully: §4.3's `v = 2` push.
    pub fn on_leave(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        ledger.count(&Message::Push { value: 2 }, 1);
        self.cl.set_freshness(peer, Freshness::Unavailable);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// A member rejoins: ships its `localsum` and awaits the next pull
    /// before the GS describes it.
    pub fn on_join(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        let bytes = peers[peer.index()]
            .as_ref()
            .expect("member has state")
            .data
            .summary
            .len();
        ledger.count(&Message::LocalSum { bytes }, 1);
        self.cl.add_partner(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// Routes one query against this domain's current GS/CL state and
    /// scores it against exact ground truth over the member set.
    pub fn route_local(
        &self,
        prop: &Proposition,
        policy: RoutingPolicy,
        peers: &[Option<PeerState>],
        template: usize,
    ) -> QueryOutcome {
        route_query_scoped(
            &self.gs,
            &self.cl,
            prop,
            policy,
            &self.members,
            |p| match peers[p.index()].as_ref() {
                Some(st) => (st.up, st.data.matches(template)),
                None => (false, false),
            },
        )
    }

    /// Live members right now.
    pub fn live_members<'a>(
        &'a self,
        peers: &'a [Option<PeerState>],
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.members
            .iter()
            .copied()
            .filter(|m| peers[m.index()].as_ref().is_some_and(|p| p.up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_peer_data, make_templates};
    use fuzzy::bk::BackgroundKnowledge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain_with_peers(n: u32) -> (DomainCore, Vec<Option<PeerState>>) {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(2);
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<Option<PeerState>> = (0..n)
            .map(|p| {
                Some(PeerState::new(generate_peer_data(
                    &mut rng, p, &bk, &templates, 0.3, 10,
                )))
            })
            .collect();
        let core = DomainCore::new(None, (0..n).map(NodeId).collect());
        (core, peers)
    }

    #[test]
    fn enroll_builds_gs_and_cl() {
        let (mut core, mut peers) = domain_with_peers(12);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        assert_eq!(core.cl.len(), 12);
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.gs.all_sources().len(), 12);
        assert_eq!(
            ledger.sent(MessageClass::Construction),
            12,
            "one localsum each"
        );
        core.gs.check_invariants();
    }

    #[test]
    fn leave_then_reconcile_drops_member_from_gs() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);

        peers[3].as_mut().unwrap().up = false;
        core.on_leave(NodeId(3), 1.1, &mut peers, &mut ledger);
        assert_eq!(ledger.sent(MessageClass::Push), 1);
        assert_eq!(
            core.gs.all_sources().len(),
            10,
            "GS untouched before the pull"
        );

        core.reconcile(&mut peers, &mut ledger);
        assert_eq!(core.gs.all_sources().len(), 9, "departed peer expired");
        assert!(!core.cl.contains(NodeId(3)));
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.reconciliations, 1);
        // Ring cost: 9 live members + the final store hop.
        assert_eq!(ledger.sent(MessageClass::Reconciliation), 10);
    }

    #[test]
    fn alpha_threshold_gates_the_pull() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        // 2 of 10 stale: below α = 0.3.
        for p in [0u32, 1] {
            core.on_drift(NodeId(p), 0.3, &mut peers, &mut ledger);
        }
        assert_eq!(core.reconciliations, 0);
        // The third crosses 0.3.
        core.on_drift(NodeId(2), 0.3, &mut peers, &mut ledger);
        assert_eq!(core.reconciliations, 1);
        assert_eq!(core.cl.stale_fraction(), 0.0, "reset after the pull");
    }

    #[test]
    fn rejoin_enters_cl_stale_until_pull() {
        let (mut core, mut peers) = domain_with_peers(8);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);

        peers[5].as_mut().unwrap().up = false;
        core.on_leave(NodeId(5), 1.1, &mut peers, &mut ledger);
        core.reconcile(&mut peers, &mut ledger);
        assert!(!core.cl.contains(NodeId(5)));

        peers[5].as_mut().unwrap().up = true;
        core.on_join(NodeId(5), 1.1, &mut peers, &mut ledger);
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::NeedsRefresh));
        assert_eq!(
            core.gs.all_sources().len(),
            7,
            "description arrives with the next pull, not the join"
        );
        core.reconcile(&mut peers, &mut ledger);
        assert_eq!(core.gs.all_sources().len(), 8);
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::Fresh));
    }
}
