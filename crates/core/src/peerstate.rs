//! The shared per-peer / per-domain state machine (§4.2–§4.3), extracted
//! from the old single-domain simulator so that one event loop can drive
//! any number of domains.
//!
//! * [`PeerState`] — one partner peer: liveness, generated database
//!   artifacts, and the bookkeeping the maintenance protocols need;
//! * [`MessageLedger`] — message/byte accounting per [`MessageClass`],
//!   the paper's §6.1 cost unit;
//! * [`DomainCore`] — one domain's summary peer state: the global
//!   summary (GS), the cooperation list (CL) and the push/pull protocol
//!   transitions. [`crate::domain::DomainSim`] drives exactly one
//!   `DomainCore`; the unified kernel ([`crate::kernel`]) drives many,
//!   interleaved in a single virtual clock.

use std::collections::BTreeMap;

use bytes::Bytes;
use p2psim::network::{MessageClass, NodeId};
use p2psim::time::SimTime;
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::Proposition;
use saintetiq::wire;

use crate::coop::CooperationList;
use crate::freshness::Freshness;
use crate::messages::Message;
use crate::routing::{route_query_scoped, QueryOutcome, RoutingPolicy};
use crate::workload::PeerData;

/// The CBK name every generated summary binds to.
pub const CBK_NAME: &str = "medical-cbk-v1";

/// The label-count shape of the medical CBK's summary grid.
pub const CBK_SHAPE: [usize; 4] = [3, 3, 3, 12];

/// An empty GS over the medical CBK.
pub fn empty_gs() -> SummaryTree {
    SummaryTree::new(CBK_NAME, CBK_SHAPE.to_vec())
}

/// One partner peer's simulation state.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Currently connected.
    pub up: bool,
    /// The peer's generated database artifacts (summary, match bits).
    pub data: PeerData,
    /// Match bits as of the last time this peer's summary was merged
    /// into its domain's GS (`0` when absent from the GS).
    pub merged_bits: u32,
    /// True while a drift event is in flight for this peer — prevents
    /// rejoin cycles from stacking duplicate drift streams.
    pub drift_scheduled: bool,
}

impl PeerState {
    /// A freshly generated, connected peer with a drift event pending.
    pub fn new(data: PeerData) -> Self {
        Self {
            up: true,
            merged_bits: data.match_bits,
            data,
            drift_scheduled: true,
        }
    }
}

/// Message and wire-byte accounting per class, plus — in latency mode —
/// per-class delivery-latency distributions (count + total virtual time
/// between send and delivery).
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    counters: BTreeMap<MessageClass, u64>,
    byte_counters: BTreeMap<MessageClass, u64>,
    latency_counters: BTreeMap<MessageClass, (u64, u64)>,
}

impl MessageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `n` copies of `msg`: one message and its wire bytes each.
    pub fn count(&mut self, msg: &Message, n: u64) {
        let class = msg.class();
        *self.counters.entry(class).or_insert(0) += n;
        *self.byte_counters.entry(class).or_insert(0) += n * msg.wire_bytes() as u64;
    }

    /// Message counts per class.
    pub fn counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.counters
    }

    /// Wire bytes per class.
    pub fn byte_counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.byte_counters
    }

    /// Messages sent in one class.
    pub fn sent(&self, class: MessageClass) -> u64 {
        self.counters.get(&class).copied().unwrap_or(0)
    }

    /// Records one latency-mode delivery: the message spent `latency`
    /// virtual time in flight.
    pub fn count_delivery(&mut self, class: MessageClass, latency: SimTime) {
        let slot = self.latency_counters.entry(class).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += latency.0;
    }

    /// Per-class `(deliveries, total in-flight µs)` — the raw latency
    /// distribution data.
    pub fn latency_counters(&self) -> &BTreeMap<MessageClass, (u64, u64)> {
        &self.latency_counters
    }

    /// Mean in-flight seconds of one class (0.0 when nothing of that
    /// class was delivered — instantaneous mode, or the class is unused).
    pub fn mean_latency_s(&self, class: MessageClass) -> f64 {
        match self.latency_counters.get(&class) {
            Some(&(n, total_us)) if n > 0 => total_us as f64 / n as f64 / 1_000_000.0,
            _ => 0.0,
        }
    }
}

/// One member's summary snapshot as carried by a latency-mode
/// reconciliation token: the member's local summary and match bits *at
/// the virtual time the token passed through it*. If the member drifts
/// or departs after its token hop, the stored GS keeps describing this
/// snapshot — exactly the staleness window instantaneous delivery hides.
#[derive(Debug, Clone)]
pub struct SummarySnapshot {
    /// The member the token visited.
    pub peer: NodeId,
    /// Its encoded local summary at token-pass time.
    pub summary: Bytes,
    /// Its exact match bits at token-pass time.
    pub match_bits: u32,
}

/// One domain's summary-peer state: members, GS, CL and the §4.2–§4.3
/// protocol transitions.
#[derive(Debug, Clone)]
pub struct DomainCore {
    /// The summary peer hosting this domain (`None` for the standalone
    /// single-domain simulation, whose SP is implicit).
    pub sp: Option<NodeId>,
    /// The partner peers (network-global ids).
    pub members: Vec<NodeId>,
    /// The cooperation list.
    pub cl: CooperationList,
    /// The global summary.
    pub gs: SummaryTree,
    /// Reconciliation rounds completed.
    pub reconciliations: u64,
    /// Encoded GS size after the last rebuild.
    pub gs_bytes_last: usize,
    /// Long-range links to other summary peers (§5.2.2's `k`-degree
    /// inter-domain shortcuts; empty in the single-domain simulation).
    pub long_links: Vec<NodeId>,
    /// True after the SP departed (§4.3): the domain no longer answers
    /// queries, forwards tokens or accepts pushes; its former members
    /// re-home to surviving domains.
    pub dissolved: bool,
}

impl DomainCore {
    /// An empty domain over the given members.
    pub fn new(sp: Option<NodeId>, members: Vec<NodeId>) -> Self {
        Self {
            sp,
            members,
            cl: CooperationList::new(),
            gs: empty_gs(),
            reconciliations: 0,
            gs_bytes_last: 0,
            long_links: Vec::new(),
            dissolved: false,
        }
    }

    /// Tears the domain down after its SP departed: members, CL, GS and
    /// long links are cleared; the slot stays in place so domain indices
    /// held by in-flight conversations remain valid (their deliveries
    /// no-op against a dissolved domain).
    pub fn dissolve(&mut self) {
        self.dissolved = true;
        self.members.clear();
        self.cl = CooperationList::new();
        self.gs = empty_gs();
        self.gs_bytes_last = 0;
        self.long_links.clear();
    }

    /// Initial construction (§4.1): every member ships its `localsum`,
    /// enters the CL fresh, and the GS is built from scratch.
    pub fn enroll_all(&mut self, peers: &mut [Option<PeerState>], ledger: &mut MessageLedger) {
        for i in 0..self.members.len() {
            let m = self.members[i];
            let bytes = peers[m.index()]
                .as_ref()
                .expect("member has state")
                .data
                .summary
                .len();
            ledger.count(&Message::LocalSum { bytes }, 1);
            self.cl.add_partner(m, Freshness::Fresh);
        }
        self.rebuild_gs(peers);
    }

    /// Rebuilds the GS from every live member's current local summary —
    /// the effect of one full reconciliation round.
    pub fn rebuild_gs(&mut self, peers: &mut [Option<PeerState>]) {
        let mut gs = empty_gs();
        let ecfg = EngineConfig::default();
        for &m in &self.members {
            let peer = peers[m.index()].as_mut().expect("member has state");
            if peer.up {
                let tree =
                    wire::decode(&peer.data.summary).expect("locally encoded summaries decode");
                saintetiq::merge::merge_into(&mut gs, &tree, &ecfg).expect("same CBK everywhere");
                peer.merged_bits = peer.data.match_bits;
            } else {
                peer.merged_bits = 0;
            }
        }
        self.gs_bytes_last = wire::encoded_size(&gs);
        self.gs = gs;
    }

    /// §4.2.2's pull phase, fired when the CL crosses α. Returns true
    /// when a reconciliation round ran.
    pub fn maybe_reconcile(
        &mut self,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) -> bool {
        if !self.cl.needs_reconciliation(alpha) {
            return false;
        }
        self.reconcile(peers, ledger);
        true
    }

    /// Runs one reconciliation round unconditionally: the token ring
    /// costs one message per live member plus the final store hop, the
    /// GS is rebuilt, and the CL resets to the live membership.
    pub fn reconcile(&mut self, peers: &mut [Option<PeerState>], ledger: &mut MessageLedger) {
        let live = self
            .members
            .iter()
            .filter(|m| peers[m.index()].as_ref().is_some_and(|p| p.up))
            .count() as u64;
        self.rebuild_gs(peers);
        // The token grows along the ring; counting every hop at the
        // final GS size is a documented upper bound on token bytes.
        ledger.count(
            &Message::ReconciliationToken {
                bytes: self.gs_bytes_last,
            },
            live + 1,
        );
        self.cl
            .reconcile(|p| peers[p.index()].as_ref().is_some_and(|s| s.up));
        self.reconciliations += 1;
    }

    /// A member's data drifted: its freshness flag is pushed (§4.2.1).
    /// The caller regenerates the data and re-schedules the drift timer.
    pub fn on_drift(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        ledger.count(&Message::Push { value: 1 }, 1);
        self.cl.set_freshness(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// A member leaves gracefully: §4.3's `v = 2` push.
    pub fn on_leave(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        ledger.count(&Message::Push { value: 2 }, 1);
        self.cl.set_freshness(peer, Freshness::Unavailable);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// Latency-mode arrival of a freshness push at the SP: the CL
    /// transition alone. The α check and the ring *conversation* live in
    /// the kernel, which owns the virtual clock; message accounting
    /// happened at send time. A push from a non-member (e.g. one that
    /// was removed while the push was in flight) is dropped.
    pub fn apply_push(&mut self, peer: NodeId, freshness: Freshness) -> bool {
        if self.dissolved {
            return false;
        }
        self.cl.set_freshness(peer, freshness)
    }

    /// Latency-mode arrival of a (re)joining member's `localsum` at the
    /// SP: the member enters the CL stale, awaiting the next pull. If
    /// the peer was never a member of this domain (an SP-churn re-home),
    /// it also enters the member list.
    pub fn apply_localsum(&mut self, peer: NodeId) -> bool {
        if self.dissolved {
            return false;
        }
        if !self.members.contains(&peer) {
            self.members.push(peer);
        }
        self.cl.add_partner(peer, Freshness::NeedsRefresh);
        true
    }

    /// Latency-mode completion of a reconciliation ring: the SP stores
    /// `NewGS` — the merge of exactly the snapshots the token gathered —
    /// and resets the CL. Members the token *missed* (it was dropped at
    /// a churned-out peer and the watchdog fired) keep their stale flags
    /// if they are up, so α re-arms a follow-up ring; missed members
    /// that are down are removed. Message accounting happened per hop at
    /// send time, so nothing is counted here.
    pub fn reconcile_from_snapshots(
        &mut self,
        gathered: &[SummarySnapshot],
        peers: &mut [Option<PeerState>],
    ) {
        let mut gs = empty_gs();
        let ecfg = EngineConfig::default();
        for snap in gathered {
            let tree = wire::decode(&snap.summary).expect("locally encoded summaries decode");
            saintetiq::merge::merge_into(&mut gs, &tree, &ecfg).expect("same CBK everywhere");
        }
        let visited: std::collections::BTreeSet<NodeId> = gathered.iter().map(|s| s.peer).collect();
        for &m in &self.members {
            if let Some(peer) = peers[m.index()].as_mut() {
                peer.merged_bits = if visited.contains(&m) {
                    gathered
                        .iter()
                        .find(|s| s.peer == m)
                        .map(|s| s.match_bits)
                        .unwrap_or(0)
                } else {
                    0
                };
            }
        }
        self.gs_bytes_last = wire::encoded_size(&gs);
        self.gs = gs;
        let up = |p: NodeId| peers[p.index()].as_ref().is_some_and(|s| s.up);
        // Token-visited members reset to fresh; unvisited live members
        // keep their flags (partial pull); unvisited down members drop.
        let stale_survivors: Vec<(NodeId, Freshness)> = self
            .cl
            .partners()
            .filter(|p| !visited.contains(p) && up(*p))
            .map(|p| (p, self.cl.freshness(p).unwrap_or(Freshness::NeedsRefresh)))
            .collect();
        self.cl.reconcile(|p| visited.contains(&p) || up(p));
        for (p, f) in stale_survivors {
            self.cl.set_freshness(p, f);
        }
        let cl = &self.cl;
        self.members.retain(|&m| cl.contains(m));
        self.reconciliations += 1;
    }

    /// A member rejoins: ships its `localsum` and awaits the next pull
    /// before the GS describes it.
    pub fn on_join(
        &mut self,
        peer: NodeId,
        alpha: f64,
        peers: &mut [Option<PeerState>],
        ledger: &mut MessageLedger,
    ) {
        let bytes = peers[peer.index()]
            .as_ref()
            .expect("member has state")
            .data
            .summary
            .len();
        ledger.count(&Message::LocalSum { bytes }, 1);
        self.cl.add_partner(peer, Freshness::NeedsRefresh);
        self.maybe_reconcile(alpha, peers, ledger);
    }

    /// Routes one query against this domain's current GS/CL state and
    /// scores it against exact ground truth over the member set.
    pub fn route_local(
        &self,
        prop: &Proposition,
        policy: RoutingPolicy,
        peers: &[Option<PeerState>],
        template: usize,
    ) -> QueryOutcome {
        route_query_scoped(
            &self.gs,
            &self.cl,
            prop,
            policy,
            &self.members,
            |p| match peers[p.index()].as_ref() {
                Some(st) => (st.up, st.data.matches(template)),
                None => (false, false),
            },
        )
    }

    /// Live members right now.
    pub fn live_members<'a>(
        &'a self,
        peers: &'a [Option<PeerState>],
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.members
            .iter()
            .copied()
            .filter(|m| peers[m.index()].as_ref().is_some_and(|p| p.up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_peer_data, make_templates};
    use fuzzy::bk::BackgroundKnowledge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn domain_with_peers(n: u32) -> (DomainCore, Vec<Option<PeerState>>) {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(2);
        let mut rng = StdRng::seed_from_u64(11);
        let peers: Vec<Option<PeerState>> = (0..n)
            .map(|p| {
                Some(PeerState::new(
                    generate_peer_data(&mut rng, p, &bk, &templates, 0.3, 10)
                        .expect("valid workload"),
                ))
            })
            .collect();
        let core = DomainCore::new(None, (0..n).map(NodeId).collect());
        (core, peers)
    }

    #[test]
    fn enroll_builds_gs_and_cl() {
        let (mut core, mut peers) = domain_with_peers(12);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        assert_eq!(core.cl.len(), 12);
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.gs.all_sources().len(), 12);
        assert_eq!(
            ledger.sent(MessageClass::Construction),
            12,
            "one localsum each"
        );
        core.gs.check_invariants();
    }

    #[test]
    fn leave_then_reconcile_drops_member_from_gs() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);

        peers[3].as_mut().unwrap().up = false;
        core.on_leave(NodeId(3), 1.1, &mut peers, &mut ledger);
        assert_eq!(ledger.sent(MessageClass::Push), 1);
        assert_eq!(
            core.gs.all_sources().len(),
            10,
            "GS untouched before the pull"
        );

        core.reconcile(&mut peers, &mut ledger);
        assert_eq!(core.gs.all_sources().len(), 9, "departed peer expired");
        assert!(!core.cl.contains(NodeId(3)));
        assert_eq!(core.cl.stale_fraction(), 0.0);
        assert_eq!(core.reconciliations, 1);
        // Ring cost: 9 live members + the final store hop.
        assert_eq!(ledger.sent(MessageClass::Reconciliation), 10);
    }

    #[test]
    fn alpha_threshold_gates_the_pull() {
        let (mut core, mut peers) = domain_with_peers(10);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        // 2 of 10 stale: below α = 0.3.
        for p in [0u32, 1] {
            core.on_drift(NodeId(p), 0.3, &mut peers, &mut ledger);
        }
        assert_eq!(core.reconciliations, 0);
        // The third crosses 0.3.
        core.on_drift(NodeId(2), 0.3, &mut peers, &mut ledger);
        assert_eq!(core.reconciliations, 1);
        assert_eq!(core.cl.stale_fraction(), 0.0, "reset after the pull");
    }

    #[test]
    fn partial_snapshot_reconciliation_keeps_missed_live_members() {
        let (mut core, mut peers) = domain_with_peers(6);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        for p in 0..6 {
            core.cl.set_freshness(NodeId(p), Freshness::NeedsRefresh);
        }
        peers[4].as_mut().unwrap().up = false;
        // The token visited members 0..3 and was dropped before 3..6.
        let gathered: Vec<SummarySnapshot> = (0..3u32)
            .map(|p| {
                let st = peers[p as usize].as_ref().unwrap();
                SummarySnapshot {
                    peer: NodeId(p),
                    summary: st.data.summary.clone(),
                    match_bits: st.data.match_bits,
                }
            })
            .collect();
        core.reconcile_from_snapshots(&gathered, &mut peers);
        assert_eq!(
            core.gs.all_sources().len(),
            3,
            "GS holds exactly the gathered snapshots"
        );
        assert_eq!(core.cl.freshness(NodeId(0)), Some(Freshness::Fresh));
        assert_eq!(
            core.cl.freshness(NodeId(3)),
            Some(Freshness::NeedsRefresh),
            "missed live member keeps its stale flag so α re-arms"
        );
        assert!(!core.cl.contains(NodeId(4)), "missed down member dropped");
        assert!(core.members.contains(&NodeId(3)));
        assert!(!core.members.contains(&NodeId(4)));
        assert_eq!(core.reconciliations, 1);
    }

    #[test]
    fn dissolve_clears_domain_state() {
        let (mut core, mut peers) = domain_with_peers(5);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        core.dissolve();
        assert!(core.dissolved);
        assert!(core.members.is_empty());
        assert!(core.cl.is_empty());
        assert_eq!(core.gs.all_sources().len(), 0);
        assert!(!core.apply_push(NodeId(1), Freshness::NeedsRefresh));
        assert!(!core.apply_localsum(NodeId(1)));
    }

    #[test]
    fn localsum_arrival_admits_rehomed_strangers() {
        let (mut core, mut peers) = domain_with_peers(4);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);
        // A re-homed peer from a dissolved domain carries a foreign id.
        assert!(core.apply_localsum(NodeId(99)));
        assert!(core.members.contains(&NodeId(99)));
        assert_eq!(core.cl.freshness(NodeId(99)), Some(Freshness::NeedsRefresh));
    }

    #[test]
    fn ledger_latency_accounting() {
        let mut ledger = MessageLedger::new();
        assert_eq!(ledger.mean_latency_s(MessageClass::Push), 0.0);
        ledger.count_delivery(MessageClass::Push, SimTime::from_millis(50));
        ledger.count_delivery(MessageClass::Push, SimTime::from_millis(150));
        ledger.count_delivery(MessageClass::Query, SimTime::from_millis(10));
        assert!((ledger.mean_latency_s(MessageClass::Push) - 0.1).abs() < 1e-12);
        assert!((ledger.mean_latency_s(MessageClass::Query) - 0.01).abs() < 1e-12);
        assert_eq!(
            ledger.latency_counters().get(&MessageClass::Push),
            Some(&(2, 200_000))
        );
    }

    #[test]
    fn rejoin_enters_cl_stale_until_pull() {
        let (mut core, mut peers) = domain_with_peers(8);
        let mut ledger = MessageLedger::new();
        core.enroll_all(&mut peers, &mut ledger);

        peers[5].as_mut().unwrap().up = false;
        core.on_leave(NodeId(5), 1.1, &mut peers, &mut ledger);
        core.reconcile(&mut peers, &mut ledger);
        assert!(!core.cl.contains(NodeId(5)));

        peers[5].as_mut().unwrap().up = true;
        core.on_join(NodeId(5), 1.1, &mut peers, &mut ledger);
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::NeedsRefresh));
        assert_eq!(
            core.gs.all_sources().len(),
            7,
            "description arrives with the next pull, not the join"
        );
        core.reconcile(&mut peers, &mut ledger);
        assert_eq!(core.gs.all_sources().len(), 8);
        assert_eq!(core.cl.freshness(NodeId(5)), Some(Freshness::Fresh));
    }
}
