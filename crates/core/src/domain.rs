//! Event-driven simulation of one domain (§4.2–§4.3, §6.2.2).
//!
//! A domain is a summary peer (SP) plus `n` partner peers. The simulation
//! drives three processes against virtual time:
//!
//! * **summary drift** — each partner's local summary has a lifetime `L`
//!   (Table 3's lognormal); on expiry the peer's data is regenerated and
//!   a `push` message flags its cooperation-list entry stale;
//! * **churn** — sessions from the same distribution; graceful leaves
//!   push `v = 2` (collapsed to the 1-bit stale flag, §4.3), silent
//!   failures push nothing and poison the GS until reconciliation;
//!   rejoining peers ship their `localsum` and enter the CL with `v = 1`
//!   ("the need of pulling peer p to get new data descriptions");
//! * **reconciliation** — whenever the stale fraction reaches α, the SP
//!   circulates the token: every live partner merges its local summary
//!   into `NewGS` and forwards it; the SP stores the result and resets
//!   the CL. Cost: one message per live partner plus the final store.
//!
//! Queries are sampled across the horizon and scored against exact
//! ground truth (see [`crate::routing`]).

use std::collections::BTreeMap;

use fuzzy::bk::BackgroundKnowledge;
use p2psim::churn::{ChurnConfig, SessionEvent, SessionSchedule};
use p2psim::network::{MessageClass, NodeId};
use p2psim::sim::Simulator;
use p2psim::time::SimTime;
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::{reformulate, SummaryQuery};
use saintetiq::wire;

use crate::config::SimConfig;
use crate::coop::CooperationList;
use crate::error::P2pError;
use crate::freshness::Freshness;
use crate::messages::Message;
use crate::metrics::DomainReport;
use crate::routing::{route_query, QueryOutcome};
use crate::workload::{generate_peer_data, make_templates, PeerData, QueryTemplate};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A partner's local summary lifetime expired (data drifted).
    SummaryExpire(NodeId),
    /// A churn transition.
    Session(SessionEvent),
    /// A workload query sample using the given template.
    Query(usize),
}

/// Per-partner simulation state.
#[derive(Debug, Clone)]
struct Partner {
    up: bool,
    data: PeerData,
    /// Match bits as of the last time this peer's summary was merged
    /// into the GS (`0` when absent from the GS).
    merged_bits: u32,
    /// True while a drift (`SummaryExpire`) event is in flight for this
    /// peer — prevents rejoin cycles from stacking duplicate drift
    /// streams.
    drift_scheduled: bool,
}

/// The single-domain simulator.
pub struct DomainSim {
    cfg: SimConfig,
    bk: BackgroundKnowledge,
    templates: Vec<QueryTemplate>,
    reformulated: Vec<SummaryQuery>,
    sim: Simulator<Ev>,
    partners: Vec<Partner>,
    cl: CooperationList,
    gs: SummaryTree,
    counters: BTreeMap<MessageClass, u64>,
    /// Wire bytes per message class (the §6.1.1 traffic-overhead view;
    /// messages are the paper's primary unit, bytes the bonus).
    byte_counters: BTreeMap<MessageClass, u64>,
    reconciliations: u64,
    outcomes: Vec<QueryOutcome>,
    gs_bytes_last: usize,
}

impl DomainSim {
    /// Builds the domain: generates every partner's database and local
    /// summary, constructs the initial GS (counting the `localsum`
    /// messages), and schedules drift, churn and the query workload.
    pub fn new(cfg: SimConfig) -> Result<Self, P2pError> {
        cfg.validate()?;
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(cfg.template_count);
        let reformulated: Vec<SummaryQuery> = templates
            .iter()
            .map(|t| reformulate(&t.query, &bk))
            .collect::<Result<_, _>>()?;

        let mut sim = Simulator::<Ev>::new(cfg.seed);
        sim.set_horizon(cfg.horizon);

        // Generate partners.
        let mut partners = Vec::with_capacity(cfg.n_peers);
        for p in 0..cfg.n_peers {
            let data = generate_peer_data(
                sim.rng(),
                p as u32,
                &bk,
                &templates,
                cfg.match_fraction,
                cfg.records_per_peer,
            );
            partners.push(Partner {
                up: true,
                merged_bits: data.match_bits,
                data,
                drift_scheduled: true,
            });
        }

        let mut this = Self {
            cfg,
            bk,
            templates,
            reformulated,
            sim,
            partners,
            cl: CooperationList::new(),
            gs: SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]),
            counters: BTreeMap::new(),
            byte_counters: BTreeMap::new(),
            reconciliations: 0,
            outcomes: Vec::new(),
            gs_bytes_last: 0,
        };

        // Initial construction: every partner ships its localsum.
        for p in 0..this.cfg.n_peers {
            let bytes = this.partners[p].data.summary.len();
            this.count_msg(&Message::LocalSum { bytes }, 1);
            this.cl.add_partner(NodeId(p as u32), Freshness::Fresh);
        }
        this.rebuild_gs();

        // Schedule drift + churn + queries.
        for p in 0..this.cfg.n_peers {
            let dt = this.cfg.lifetime.sample(this.sim.rng());
            this.sim.schedule_in(dt, Ev::SummaryExpire(NodeId(p as u32)));
        }
        let churn_cfg = ChurnConfig {
            lifetime: this.cfg.lifetime,
            mean_downtime_s: this.cfg.mean_downtime_s,
            failure_fraction: this.cfg.failure_fraction,
        };
        let schedule = SessionSchedule::generate(
            this.cfg.n_peers,
            this.cfg.horizon,
            &churn_cfg,
            this.sim.rng(),
        );
        for &(t, ev) in schedule.events() {
            this.sim.schedule_at(t, Ev::Session(ev));
        }
        // Query samples spread across (10%..100%) of the horizon so the
        // first samples already see steady-state maintenance.
        let q = this.cfg.query_count;
        for i in 0..q {
            let frac = 0.1 + 0.9 * (i as f64 / q as f64);
            let at = SimTime::from_secs_f64(this.cfg.horizon.as_secs_f64() * frac);
            this.sim.schedule_at(at, Ev::Query(i % this.templates.len()));
        }
        Ok(this)
    }

    /// Counts `n` copies of `msg`: one message and its wire bytes each.
    fn count_msg(&mut self, msg: &Message, n: u64) {
        let class = msg.class();
        *self.counters.entry(class).or_insert(0) += n;
        *self.byte_counters.entry(class).or_insert(0) += n * msg.wire_bytes() as u64;
    }

    /// Rebuilds the GS from every live partner's current local summary —
    /// the effect of one full reconciliation round.
    fn rebuild_gs(&mut self) {
        let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
        let ecfg = EngineConfig::default();
        for (i, partner) in self.partners.iter_mut().enumerate() {
            if partner.up {
                let tree = wire::decode(&partner.data.summary)
                    .expect("locally encoded summaries decode");
                saintetiq::merge::merge_into(&mut gs, &tree, &ecfg)
                    .expect("same CBK everywhere");
                partner.merged_bits = partner.data.match_bits;
            } else {
                partner.merged_bits = 0;
            }
            let _ = i;
        }
        self.gs_bytes_last = wire::encoded_size(&gs);
        self.gs = gs;
    }

    /// §4.2.2's pull phase, fired when the CL crosses α.
    fn maybe_reconcile(&mut self) {
        if !self.cl.needs_reconciliation(self.cfg.alpha) {
            return;
        }
        // Token ring: one message per live partner, plus the final store
        // hop back to the SP.
        let live = self.partners.iter().filter(|p| p.up).count() as u64;
        self.rebuild_gs();
        // The token grows along the ring; counting every hop at the
        // final GS size is a documented upper bound on token bytes.
        self.count_msg(&Message::ReconciliationToken { bytes: self.gs_bytes_last }, live + 1);
        let partners = &self.partners;
        self.cl.reconcile(|p| partners[p.0 as usize].up);
        self.reconciliations += 1;
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::SummaryExpire(p) => {
                let idx = p.0 as usize;
                if self.partners[idx].up {
                    // The data drifted: regenerate the database and its
                    // local summary, then push the stale flag.
                    let data = generate_peer_data(
                        self.sim.rng(),
                        p.0,
                        &self.bk,
                        &self.templates,
                        self.cfg.match_fraction,
                        self.cfg.records_per_peer,
                    );
                    self.partners[idx].data = data;
                    self.count_msg(&Message::Push { value: 1 }, 1);
                    self.cl.set_freshness(p, Freshness::NeedsRefresh);
                    self.maybe_reconcile();
                    let dt = self.cfg.lifetime.sample(self.sim.rng());
                    self.sim.schedule_in(dt, Ev::SummaryExpire(p));
                } else {
                    // While down: drift pauses; rejoin restarts it.
                    self.partners[idx].drift_scheduled = false;
                }
            }
            Ev::Session(SessionEvent::Leave(p)) => {
                let idx = p.0 as usize;
                if self.partners[idx].up {
                    self.partners[idx].up = false;
                    // §4.3: the departing partner pushes v = 2.
                    self.count_msg(&Message::Push { value: 2 }, 1);
                    self.cl.set_freshness(p, Freshness::Unavailable);
                    self.maybe_reconcile();
                }
            }
            Ev::Session(SessionEvent::Fail(p)) => {
                // Silent: no message, CL unchanged — the GS now carries
                // descriptions of unavailable data until reconciliation.
                self.partners[p.0 as usize].up = false;
            }
            Ev::Session(SessionEvent::Join(p)) => {
                let idx = p.0 as usize;
                if !self.partners[idx].up {
                    self.partners[idx].up = true;
                    // The joiner ships its localsum; its entry needs a
                    // pull before the GS describes it.
                    let bytes = self.partners[idx].data.summary.len();
                    self.count_msg(&Message::LocalSum { bytes }, 1);
                    self.cl.add_partner(p, Freshness::NeedsRefresh);
                    self.maybe_reconcile();
                    if !self.partners[idx].drift_scheduled {
                        self.partners[idx].drift_scheduled = true;
                        let dt = self.cfg.lifetime.sample(self.sim.rng());
                        self.sim.schedule_in(dt, Ev::SummaryExpire(p));
                    }
                }
            }
            Ev::Query(template) => {
                let outcome = self.run_query(template);
                self.count_msg(&Message::Query { template }, 1 + outcome.visited.len() as u64);
                self.count_msg(&Message::QueryHit { results: 1 }, outcome.answered as u64);
                self.outcomes.push(outcome);
            }
        }
    }

    /// Routes one workload query against the current GS/CL state.
    fn run_query(&self, template: usize) -> QueryOutcome {
        let prop = &self.reformulated[template].proposition;
        let partners = &self.partners;
        route_query(
            &self.gs,
            &self.cl,
            prop,
            self.cfg.policy,
            self.cfg.n_peers,
            |p| {
                let st = &partners[p.0 as usize];
                (st.up, st.data.matches(template))
            },
        )
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(mut self) -> DomainReport {
        while let Some((_, ev)) = self.sim.next_event() {
            self.handle(ev);
        }
        let (approx_live, approx_with_departed) = self.approximate_coverage();
        let mut report = DomainReport::from_run(
            &self.cfg,
            &self.outcomes,
            &self.counters,
            &self.byte_counters,
            self.reconciliations,
            self.gs_bytes_last,
            self.gs.leaf_count(),
            self.gs.live_node_count(),
        );
        report.approx_weight_live = approx_live;
        report.approx_weight_with_departed = approx_with_departed;
        report
    }

    /// §4.3's two alternatives for departed peers' descriptions, made
    /// measurable: the approximate-answer weight per template from the
    /// current GS (alternative 2 — departed data expired, the paper's
    /// and this simulation's routing choice) versus a GS that *keeps*
    /// the last known summaries of down peers (alternative 1 — richer
    /// approximate answers at the price of describing unavailable data).
    fn approximate_coverage(&self) -> (Vec<f64>, Vec<f64>) {
        let weight_of = |gs: &SummaryTree| -> Vec<f64> {
            self.reformulated
                .iter()
                .map(|sq| {
                    saintetiq::query::approx::approximate_answer(gs, sq)
                        .iter()
                        .map(|a| a.weight)
                        .sum()
                })
                .collect()
        };
        let live = weight_of(&self.gs);
        let mut with_departed = self.gs.clone();
        let ecfg = EngineConfig::default();
        for partner in &self.partners {
            if !partner.up && partner.merged_bits == 0 {
                // Down and absent from the GS: its last summary is the
                // description alternative 1 would have retained.
                let tree = wire::decode(&partner.data.summary)
                    .expect("locally encoded summaries decode");
                saintetiq::merge::merge_into(&mut with_departed, &tree, &ecfg)
                    .expect("same CBK everywhere");
            }
        }
        (live, weight_of(&with_departed))
    }

    /// The current global summary (inspection/testing).
    pub fn gs(&self) -> &SummaryTree {
        &self.gs
    }

    /// The cooperation list (inspection/testing).
    pub fn cooperation_list(&self) -> &CooperationList {
        &self.cl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(n: usize, alpha: f64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, alpha);
        c.horizon = SimTime::from_hours(6);
        c.query_count = 40;
        c.records_per_peer = 12;
        c
    }

    #[test]
    fn domain_runs_to_horizon() {
        let report = DomainSim::new(small_cfg(30, 0.3)).unwrap().run();
        assert_eq!(report.queries, 40);
        assert!(report.push_messages > 0, "drift and leaves must push");
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn initial_gs_covers_all_partners() {
        let sim = DomainSim::new(small_cfg(20, 0.3)).unwrap();
        assert_eq!(sim.cooperation_list().len(), 20);
        assert_eq!(sim.cooperation_list().stale_fraction(), 0.0);
        let sources = sim.gs().all_sources();
        assert_eq!(sources.len(), 20, "every partner merged into the GS");
        sim.gs().check_invariants();
    }

    #[test]
    fn lower_alpha_reconciles_more_often() {
        let strict = DomainSim::new(small_cfg(40, 0.1)).unwrap().run();
        let lax = DomainSim::new(small_cfg(40, 0.8)).unwrap().run();
        assert!(
            strict.reconciliations > lax.reconciliations,
            "α=0.1 ({}) must reconcile more than α=0.8 ({})",
            strict.reconciliations,
            lax.reconciliations
        );
    }

    #[test]
    fn lower_alpha_reduces_stale_answers() {
        let strict = DomainSim::new(small_cfg(60, 0.1)).unwrap().run();
        let lax = DomainSim::new(small_cfg(60, 0.8)).unwrap().run();
        assert!(
            strict.worst_stale_fraction() <= lax.worst_stale_fraction() + 0.02,
            "strict {} vs lax {}",
            strict.worst_stale_fraction(),
            lax.worst_stale_fraction()
        );
    }

    #[test]
    fn queries_find_true_matches_in_steady_state() {
        let mut cfg = small_cfg(50, 0.2);
        cfg.failure_fraction = 0.0; // no silent poison
        let report = DomainSim::new(cfg).unwrap().run();
        // With reconciliation active, most true matches are found.
        assert!(
            report.mean_recall() > 0.6,
            "recall {} too low",
            report.mean_recall()
        );
    }

    #[test]
    fn departed_descriptions_enrich_approximate_answers() {
        // §4.3's alternative 1 vs 2: keeping departed peers' summaries
        // can only add approximate-answer mass, never remove it.
        let mut cfg = small_cfg(40, 0.4);
        cfg.failure_fraction = 0.5;
        let report = DomainSim::new(cfg).unwrap().run();
        assert_eq!(report.approx_weight_live.len(), report.approx_weight_with_departed.len());
        assert!(!report.approx_weight_live.is_empty());
        for (live, full) in report
            .approx_weight_live
            .iter()
            .zip(&report.approx_weight_with_departed)
        {
            assert!(full >= live, "alternative 1 keeps at least as much: {full} vs {live}");
        }
        // With churn active over 6 hours, some departed data exists.
        let extra: f64 = report
            .approx_weight_with_departed
            .iter()
            .zip(&report.approx_weight_live)
            .map(|(f, l)| f - l)
            .sum();
        assert!(extra >= 0.0);
    }

    #[test]
    fn byte_accounting_tracks_messages() {
        let report = DomainSim::new(small_cfg(30, 0.3)).unwrap().run();
        // Every counted message contributed at least header bytes.
        assert!(report.push_bytes >= report.push_messages * 40);
        assert!(report.reconciliation_bytes >= report.reconciliation_messages * 40);
        assert!(report.construction_bytes >= report.construction_messages * 40);
        // Reconciliation tokens carry summaries: far larger than pushes.
        if report.reconciliation_messages > 0 && report.push_messages > 0 {
            let token_avg = report.reconciliation_bytes / report.reconciliation_messages;
            let push_avg = report.push_bytes / report.push_messages;
            assert!(token_avg > 10 * push_avg, "token {token_avg} vs push {push_avg}");
        }
        assert_eq!(report.update_bytes(), report.push_bytes + report.reconciliation_bytes);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DomainSim::new(small_cfg(25, 0.3)).unwrap().run();
        let b = DomainSim::new(small_cfg(25, 0.3)).unwrap().run();
        assert_eq!(a.push_messages, b.push_messages);
        assert_eq!(a.reconciliations, b.reconciliations);
        assert!((a.worst_stale_fraction() - b.worst_stale_fraction()).abs() < 1e-12);
    }

    #[test]
    fn fresh_only_policy_never_visits_stale() {
        let mut cfg = small_cfg(40, 0.6); // lax: stale flags accumulate
        cfg.policy = crate::routing::RoutingPolicy::FreshOnly;
        let report = DomainSim::new(cfg).unwrap().run();
        // The policy can only create false negatives from exclusions, and
        // stale-selected FPs never enter V; measured real FP come only
        // from silent failures (down peers believed fresh).
        assert!(report.queries > 0);
        assert!(report.mean_real_fn_fraction() >= 0.0);
    }
}
