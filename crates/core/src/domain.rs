//! The single-domain simulation facade (§4.2–§4.3, §6.2.2).
//!
//! A domain is a summary peer (SP) plus `n` partner peers. The actual
//! event loop lives in the shared kernel ([`crate::kernel::SimKernel`]);
//! this module keeps the historical `DomainSim` entry point the figure
//! drivers and tests use. Three processes run against virtual time:
//!
//! * **summary drift** — each partner's local summary has a lifetime `L`
//!   (Table 3's lognormal); on expiry the peer's data is regenerated and
//!   a `push` message flags its cooperation-list entry stale;
//! * **churn** — sessions from the same distribution; graceful leaves
//!   push `v = 2` (collapsed to the 1-bit stale flag, §4.3), silent
//!   failures push nothing and poison the GS until reconciliation;
//!   rejoining peers ship their `localsum` and enter the CL with `v = 1`;
//! * **reconciliation** — whenever the stale fraction reaches α, the SP
//!   circulates the token: every live partner merges its local summary
//!   into `NewGS` and forwards it; the SP stores the result and resets
//!   the CL. Cost: one message per live partner plus the final store.
//!
//! Queries are sampled across the horizon and scored against exact
//! ground truth (see [`crate::routing`]).

use saintetiq::hierarchy::SummaryTree;

use crate::config::SimConfig;
use crate::coop::CooperationList;
use crate::error::P2pError;
use crate::kernel::SimKernel;
use crate::metrics::DomainReport;

/// The single-domain simulator: a facade over the unified kernel with
/// exactly one [`crate::peerstate::DomainCore`].
pub struct DomainSim {
    kernel: SimKernel,
}

impl DomainSim {
    /// Builds the domain: generates every partner's database and local
    /// summary, constructs the initial GS (counting the `localsum`
    /// messages), and schedules drift, churn and the query workload.
    pub fn new(cfg: SimConfig) -> Result<Self, P2pError> {
        Ok(Self {
            kernel: SimKernel::single_domain(cfg)?,
        })
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(mut self) -> DomainReport {
        self.kernel.run_to_horizon();
        self.kernel.single_report()
    }

    /// The current global summary (inspection/testing).
    pub fn gs(&self) -> &SummaryTree {
        &self.kernel.domains[0].gs
    }

    /// The cooperation list (inspection/testing).
    pub fn cooperation_list(&self) -> &CooperationList {
        &self.kernel.domains[0].cl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::time::SimTime;

    fn small_cfg(n: usize, alpha: f64) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n, alpha);
        c.horizon = SimTime::from_hours(6);
        c.query_count = 40;
        c.records_per_peer = 12;
        c
    }

    #[test]
    fn domain_runs_to_horizon() {
        let report = DomainSim::new(small_cfg(30, 0.3)).unwrap().run();
        assert_eq!(report.queries, 40);
        assert!(report.push_messages > 0, "drift and leaves must push");
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn initial_gs_covers_all_partners() {
        let sim = DomainSim::new(small_cfg(20, 0.3)).unwrap();
        assert_eq!(sim.cooperation_list().len(), 20);
        assert_eq!(sim.cooperation_list().stale_fraction(), 0.0);
        let sources = sim.gs().all_sources();
        assert_eq!(sources.len(), 20, "every partner merged into the GS");
        sim.gs().check_invariants();
    }

    #[test]
    fn lower_alpha_reconciles_more_often() {
        let strict = DomainSim::new(small_cfg(40, 0.1)).unwrap().run();
        let lax = DomainSim::new(small_cfg(40, 0.8)).unwrap().run();
        assert!(
            strict.reconciliations > lax.reconciliations,
            "α=0.1 ({}) must reconcile more than α=0.8 ({})",
            strict.reconciliations,
            lax.reconciliations
        );
    }

    #[test]
    fn lower_alpha_reduces_stale_answers() {
        let strict = DomainSim::new(small_cfg(60, 0.1)).unwrap().run();
        let lax = DomainSim::new(small_cfg(60, 0.8)).unwrap().run();
        assert!(
            strict.worst_stale_fraction() <= lax.worst_stale_fraction() + 0.02,
            "strict {} vs lax {}",
            strict.worst_stale_fraction(),
            lax.worst_stale_fraction()
        );
    }

    #[test]
    fn queries_find_true_matches_in_steady_state() {
        let mut cfg = small_cfg(50, 0.2);
        cfg.failure_fraction = 0.0; // no silent poison
        let report = DomainSim::new(cfg).unwrap().run();
        // With reconciliation active, most true matches are found.
        assert!(
            report.mean_recall() > 0.6,
            "recall {} too low",
            report.mean_recall()
        );
    }

    #[test]
    fn departed_descriptions_enrich_approximate_answers() {
        // §4.3's alternative 1 vs 2: keeping departed peers' summaries
        // can only add approximate-answer mass, never remove it.
        let mut cfg = small_cfg(40, 0.4);
        cfg.failure_fraction = 0.5;
        let report = DomainSim::new(cfg).unwrap().run();
        assert_eq!(
            report.approx_weight_live.len(),
            report.approx_weight_with_departed.len()
        );
        assert!(!report.approx_weight_live.is_empty());
        for (live, full) in report
            .approx_weight_live
            .iter()
            .zip(&report.approx_weight_with_departed)
        {
            assert!(
                full >= live,
                "alternative 1 keeps at least as much: {full} vs {live}"
            );
        }
        // With churn active over 6 hours, some departed data exists.
        let extra: f64 = report
            .approx_weight_with_departed
            .iter()
            .zip(&report.approx_weight_live)
            .map(|(f, l)| f - l)
            .sum();
        assert!(extra >= 0.0);
    }

    #[test]
    fn byte_accounting_tracks_messages() {
        let report = DomainSim::new(small_cfg(30, 0.3)).unwrap().run();
        // Every counted message contributed at least header bytes.
        assert!(report.push_bytes >= report.push_messages * 40);
        assert!(report.reconciliation_bytes >= report.reconciliation_messages * 40);
        assert!(report.construction_bytes >= report.construction_messages * 40);
        // Reconciliation tokens carry summaries: far larger than pushes.
        if report.reconciliation_messages > 0 && report.push_messages > 0 {
            let token_avg = report.reconciliation_bytes / report.reconciliation_messages;
            let push_avg = report.push_bytes / report.push_messages;
            assert!(
                token_avg > 10 * push_avg,
                "token {token_avg} vs push {push_avg}"
            );
        }
        assert_eq!(
            report.update_bytes(),
            report.push_bytes + report.reconciliation_bytes
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DomainSim::new(small_cfg(25, 0.3)).unwrap().run();
        let b = DomainSim::new(small_cfg(25, 0.3)).unwrap().run();
        assert_eq!(a.push_messages, b.push_messages);
        assert_eq!(a.reconciliations, b.reconciliations);
        assert!((a.worst_stale_fraction() - b.worst_stale_fraction()).abs() < 1e-12);
    }

    #[test]
    fn fresh_only_policy_never_visits_stale() {
        let mut cfg = small_cfg(40, 0.6); // lax: stale flags accumulate
        cfg.policy = crate::routing::RoutingPolicy::FreshOnly;
        let report = DomainSim::new(cfg).unwrap().run();
        // The policy can only create false negatives from exclusions, and
        // stale-selected FPs never enter V; measured real FP come only
        // from silent failures (down peers believed fresh).
        assert!(report.queries > 0);
        assert!(report.mean_real_fn_fraction() >= 0.0);
    }
}
