//! The analytic cost model of §6.1.
//!
//! * **Update cost** (eq. 1): `C_up = 1/L + F_rec` messages per node per
//!   second — pushes driven by the summary lifetime `L` plus the
//!   amortized reconciliation traffic.
//! * **Query cost in a domain**: `C_d = 1 + |P_Q| + (1 − FP)·|P_Q|`.
//! * **Inter-domain flooding**: `C_f = ((1 − FP)·|P_Q| + 2) · Σ_{i=1}^{TTL} k^i`.
//! * **Total query cost** (eq. 2):
//!   `C_Q = C_d · C_t/((1−FP)|P_Q|) + C_f · (1 − C_t/((1−FP)|P_Q|))`,
//!   where the first factor is the number of domains to visit.
//! * **Baselines** (§6.2.3): centralized index `1 + 2·(hit·n)`; pure
//!   flooding is measured on the simulated topology.

/// Eq. (1): update cost in messages per node per second.
///
/// `mean_lifetime_s` is the mean local-summary lifetime `L`;
/// `reconciliations_per_node_s` is the measured/estimated reconciliation
/// message rate per node (`F_rec`).
pub fn update_cost(mean_lifetime_s: f64, reconciliations_per_node_s: f64) -> f64 {
    assert!(mean_lifetime_s > 0.0);
    1.0 / mean_lifetime_s + reconciliations_per_node_s
}

/// Domain query cost `C_d` in messages.
pub fn domain_query_cost(pq: f64, fp: f64) -> f64 {
    1.0 + pq + (1.0 - fp) * pq
}

/// Geometric reach `Σ_{i=1}^{ttl} k^i` of an inter-domain flood over
/// summary-peer long links of average degree `k`.
pub fn flood_reach(k: f64, ttl: u32) -> f64 {
    (1..=ttl).map(|i| k.powi(i as i32)).sum()
}

/// Inter-domain flooding cost `C_f` in messages: the answering peers
/// `(1−FP)·|P_Q|` plus the originator and the summary peer (the `+2`)
/// each flood with the given reach.
pub fn interdomain_flood_cost(pq: f64, fp: f64, k: f64, ttl: u32) -> f64 {
    ((1.0 - fp) * pq + 2.0) * flood_reach(k, ttl)
}

/// Eq. (2): total query cost for a target of `ct` results.
///
/// `pq` is the per-domain localization size and `fp` the false-positive
/// fraction; `cd`/`cf` the per-domain and flooding costs. When one domain
/// already provides `ct` results the flooding term vanishes.
pub fn total_query_cost(ct: f64, pq: f64, fp: f64, cd: f64, cf: f64) -> f64 {
    let per_domain = (1.0 - fp) * pq;
    assert!(per_domain > 0.0, "a domain must provide some results");
    let domains = ct / per_domain;
    cd * domains + cf * (1.0 - ct / ((1.0 - fp) * pq)).max(0.0)
}

/// §6.2.3's exact SQ cost for the Figure 7 setup: each visited domain
/// provides 10 % of the relevant peers (1 % of the network), so 10
/// domains serve a query and 9 inter-domain floods connect them:
/// `C_Q = 10·C_d + 9·C_f`.
pub fn figure7_sq_cost(n: usize, fp: f64, k: f64) -> f64 {
    let pq_per_domain = 0.01 * n as f64;
    let cd = domain_query_cost(pq_per_domain, fp);
    let cf = interdomain_flood_cost(pq_per_domain, fp, k, 1);
    10.0 * cd + 9.0 * cf
}

/// §6.2.3's centralized-index cost: one query message to the index plus a
/// query and a response for each of the `hit_fraction·n` relevant peers:
/// `C_Q = 1 + 2·(0.1·n)` with the paper's 10 % hit rate.
pub fn centralized_cost(n: usize, hit_fraction: f64) -> f64 {
    1.0 + 2.0 * (hit_fraction * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_cost_decomposes() {
        // L = 3 h mean: 1/L ≈ 9.26e-5 pushes/node/s.
        let c = update_cost(3.0 * 3600.0, 2e-5);
        assert!((c - (1.0 / 10800.0 + 2e-5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn update_cost_rejects_zero_lifetime() {
        update_cost(0.0, 1.0);
    }

    #[test]
    fn domain_cost_formula() {
        // |P_Q| = 50, FP = 0 → 1 + 50 + 50.
        assert_eq!(domain_query_cost(50.0, 0.0), 101.0);
        // FP = 0.2 → 1 + 50 + 40.
        assert_eq!(domain_query_cost(50.0, 0.2), 91.0);
    }

    #[test]
    fn flood_reach_geometric() {
        assert!((flood_reach(3.5, 1) - 3.5).abs() < 1e-12);
        assert!((flood_reach(3.5, 2) - (3.5 + 12.25)).abs() < 1e-12);
        assert!((flood_reach(2.0, 3) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn interdomain_cost_formula() {
        // ((1-0)·10 + 2) · 3.5 = 42.
        assert!((interdomain_flood_cost(10.0, 0.0, 3.5, 1) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn total_cost_single_domain_case() {
        // Ct = (1-FP)|P_Q|: one domain suffices, no flooding.
        let cd = domain_query_cost(10.0, 0.0);
        let cf = interdomain_flood_cost(10.0, 0.0, 3.5, 1);
        let c = total_query_cost(10.0, 10.0, 0.0, cd, cf);
        assert!((c - cd).abs() < 1e-9);
    }

    #[test]
    fn figure7_shape() {
        // The SQ curve must sit far below flooding-scale costs and above
        // the centralized lower bound, and grow with n.
        let fp = 0.11; // Figure 4's measured worst case at α = 0.3
        let sq_2000 = figure7_sq_cost(2000, fp, 3.5);
        let sq_500 = figure7_sq_cost(500, fp, 3.5);
        assert!(sq_2000 > sq_500);
        let central_2000 = centralized_cost(2000, 0.1);
        assert!(central_2000 < sq_2000, "centralized is the lower bound");
        // Paper: SQ ≈ flooding/3.5 at n = 2000 (flooding ≈ 3500+ msgs).
        assert!(sq_2000 < 3500.0 / 2.0, "sq at 2000 = {sq_2000}");
    }

    #[test]
    fn centralized_formula() {
        assert_eq!(centralized_cost(2000, 0.1), 401.0);
        assert_eq!(centralized_cost(16, 0.1), 1.0 + 2.0 * 1.6);
    }
}
