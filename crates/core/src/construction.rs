//! Domain construction over the physical topology (§4.1) and summary-peer
//! dynamicity (§4.3).
//!
//! Construction starts at each summary peer (SP), which broadcasts a
//! `sumpeer` message with a TTL (the paper's example: 2). A peer
//! receiving its first `sumpeer` joins that SP's domain by shipping its
//! `localsum`; a peer hearing from a *closer* SP (latency along the
//! broadcast path) drops its old partnership (`drop` message) and joins
//! the closer one. Peers out of every broadcast's reach run a *selective
//! walk* — always forwarding to the highest-degree neighbor \[23\] — which
//! stops at the first partner or summary peer found.
//!
//! When an SP departs gracefully it `release`s its partners, who each
//! walk to a new SP; when it fails, partners discover the failure on
//! their next push/query attempt and then walk.
//!
//! With [`crate::config::SimConfig::rebirth`] enabled the story does
//! not end there: the dissolved domain *re-elects* a replacement SP
//! from its live hub candidates ([`elect_replacement_sp`]) — by degree
//! order in instantaneous mode, or minimizing the expected partner
//! round-trip on the candidate's broadcast tree when the latency
//! message plane prices hops ([`ElectionPolicy::LatencyAware`]) — and
//! the orphans re-home to the newborn SP instead of scattering across
//! surviving domains. The kernel drives the election/takeover events;
//! this module holds the topology-level mechanics.

use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::time::SimTime;

/// The outcome of domain construction.
#[derive(Debug, Clone)]
pub struct Domains {
    /// The elected summary peers.
    pub superpeers: Vec<NodeId>,
    /// `assignment[p]` = the SP of peer `p` (`None` for SPs themselves
    /// and unreachable peers).
    pub assignment: Vec<Option<NodeId>>,
    /// Latency distance (µs along the broadcast path) from each peer to
    /// its SP.
    pub distance: Vec<u64>,
}

impl Domains {
    /// Members of one SP's domain (partners only).
    pub fn members(&self, sp: NodeId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(sp))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of peers assigned to any domain.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Virtual time at which peer `p` heard its SP's `sumpeer` broadcast
    /// — the accumulated link latency along the broadcast tree. `None`
    /// for SPs, unassigned peers and selective-walk partners (whose
    /// broadcast-path latency is unknown).
    pub fn join_time(&self, p: NodeId) -> Option<SimTime> {
        match (self.assignment[p.index()], self.distance[p.index()]) {
            (Some(_), d) if d < u64::MAX - 1 => Some(SimTime(d)),
            _ => None,
        }
    }

    /// Virtual time at which the construction broadcast completed: the
    /// latest broadcast-tree delivery across all assigned peers. The
    /// latency-aware kernel reports this as the construction span — the
    /// window during which a real deployment's domains were still
    /// forming.
    pub fn completion_time(&self) -> SimTime {
        (0..self.assignment.len() as u32)
            .filter_map(|i| self.join_time(NodeId(i)))
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Elects `count` summary peers: the highest-degree live nodes, the
/// standard ultrapeer criterion (superpeers must afford the extra load).
pub fn elect_superpeers(net: &Network, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = (0..net.len() as u32)
        .map(NodeId)
        .filter(|&p| net.is_up(p))
        .collect();
    by_degree.sort_by_key(|&p| std::cmp::Reverse(net.graph().degree(p)));
    by_degree.truncate(count);
    by_degree
}

/// Runs the construction protocol. Counts every message on `net`'s
/// counters (`Construction` class) and returns the domain map.
pub fn construct_domains(net: &mut Network, superpeers: &[NodeId], ttl: u32) -> Domains {
    let n = net.len();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut distance: Vec<u64> = vec![u64::MAX; n];

    // Each SP broadcasts `sumpeer` with the TTL; the flood cost is the
    // standard duplicate-counting broadcast cost.
    for &sp in superpeers {
        let msgs = net.flood_message_count(sp, ttl);
        net.count_messages(MessageClass::Construction, msgs);
    }

    // Peers adopt the closest SP (latency along the broadcast tree). We
    // recompute reach with per-path latencies: BFS by hops, accumulating
    // link latency.
    for &sp in superpeers {
        let mut dist: Vec<Option<u64>> = vec![None; n];
        dist[sp.index()] = Some(0);
        let mut frontier = vec![sp];
        for _ in 0..ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                let du = dist[u.index()].expect("frontier has distance");
                let nbrs: Vec<(NodeId, SimTime)> = net
                    .graph()
                    .neighbors(u)
                    .iter()
                    .map(|e| (e.node, e.latency))
                    .collect();
                for (v, lat) in nbrs {
                    if !net.is_up(v) {
                        continue;
                    }
                    let dv = du + lat.0;
                    if dist[v.index()].map(|old| dv < old).unwrap_or(true) {
                        dist[v.index()] = Some(dv);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        for i in 0..n {
            let p = NodeId(i as u32);
            if p == sp || superpeers.contains(&p) {
                continue;
            }
            if let Some(d) = dist[i] {
                if d < distance[i] {
                    if assignment[i].is_some() {
                        // §4.1: drop the farther partnership first.
                        net.count_message(MessageClass::Construction); // drop
                    }
                    assignment[i] = Some(sp);
                    distance[i] = d;
                    net.count_message(MessageClass::Construction); // localsum
                }
            }
        }
    }

    // Unreached peers run a selective walk that stops at the first
    // partner or summary peer (§4.1: "once a partner or a summary peer
    // is reached, the find message is stopped").
    for i in 0..n {
        let p = NodeId(i as u32);
        if assignment[i].is_some() || superpeers.contains(&p) || !net.is_up(p) {
            continue;
        }
        let max_hops = (n as u32).min(64);
        let (path, found) = net.selective_walk(p, max_hops, |v| {
            superpeers.contains(&v) || assignment[v.index()].is_some()
        });
        net.count_messages(MessageClass::Construction, path.len() as u64); // find hops
        if found {
            let reached = *path.last().expect("found implies non-empty path");
            let sp = if superpeers.contains(&reached) {
                reached
            } else {
                assignment[reached.index()].expect("partner has an SP")
            };
            assignment[i] = Some(sp);
            distance[i] = u64::MAX - 1; // out-of-broadcast partner: distance unknown
            net.count_message(MessageClass::Construction); // localsum
        }
    }

    Domains {
        superpeers: superpeers.to_vec(),
        assignment,
        distance,
    }
}

/// The dissolution half of a §4.3 summary-peer departure: takes the SP
/// down, counts the control traffic — `release` to every partner when
/// graceful, one wasted (timed-out) push per partner discovering the
/// failure otherwise — removes the SP from the superpeer roster and
/// orphans its members (assignment cleared, broadcast distance
/// forgotten). Returns the orphaned members. [`handle_sp_departure`]
/// follows this with selective walks to surviving domains; the rebirth
/// path instead hands the orphans to a freshly elected replacement SP.
pub fn dissolve_domain(
    net: &mut Network,
    domains: &mut Domains,
    sp: NodeId,
    graceful: bool,
) -> Vec<NodeId> {
    let members = domains.members(sp);
    net.take_down(sp);
    if graceful {
        net.count_messages(MessageClass::Control, members.len() as u64); // release
    } else {
        // Failure detection: a wasted push/query attempt per partner.
        net.count_messages(MessageClass::Push, members.len() as u64);
    }
    domains.superpeers.retain(|&s| s != sp);
    for &p in &members {
        domains.assignment[p.index()] = None;
        // The broadcast-tree latency was measured to the departed SP;
        // whatever domain the peer lands in next, the path latency is
        // unknown until a new broadcast measures it.
        domains.distance[p.index()] = u64::MAX - 1;
    }
    members
}

/// Handles a summary peer departure (§4.3). Graceful: the SP sends
/// `release` to every partner; failed: each partner pays one extra
/// (timed-out) message discovering the failure. Every orphaned partner
/// then walks to a new SP. Returns the number of re-homed partners.
pub fn handle_sp_departure(
    net: &mut Network,
    domains: &mut Domains,
    sp: NodeId,
    graceful: bool,
) -> usize {
    let members = dissolve_domain(net, domains, sp, graceful);
    let remaining = domains.superpeers.clone();
    let mut rehomed = 0;
    for p in members {
        if !net.is_up(p) {
            continue;
        }
        let max_hops = (net.len() as u32).min(64);
        let (path, found) = net.selective_walk(p, max_hops, |v| {
            remaining.contains(&v)
                || domains.assignment[v.index()]
                    .map(|s| s != sp)
                    .unwrap_or(false)
        });
        net.count_messages(MessageClass::Construction, path.len() as u64);
        if found {
            let reached = *path.last().expect("non-empty");
            let new_sp = if remaining.contains(&reached) {
                reached
            } else {
                domains.assignment[reached.index()].expect("partner has an SP")
            };
            domains.assignment[p.index()] = Some(new_sp);
            net.count_message(MessageClass::Construction); // localsum
            rehomed += 1;
        }
    }
    rehomed
}

/// How many of the highest-degree live members stand as candidates in
/// a rebirth election — the construction-time ultrapeer criterion
/// (hubs must afford the SP load) applied to the dissolved domain's
/// own membership, and a bound on the latency-scoring work.
pub const REBIRTH_CANDIDATES: usize = 8;

/// How a replacement summary peer is chosen when a dissolved domain is
/// reborn (§4.3 completed; the ROADMAP's "latency-aware SP election").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionPolicy {
    /// The highest-degree live candidate, ties broken by lowest node
    /// id — the same ultrapeer criterion [`elect_superpeers`] applies
    /// at construction time, and the instantaneous-mode fallback
    /// (without a message plane there are no link costs to weigh).
    Degree,
    /// Among the [`REBIRTH_CANDIDATES`] highest-degree live members,
    /// the one minimizing the expected partner round-trip on its
    /// `sumpeer` broadcast tree: each partner's one-way cost is the
    /// accumulated link latency along its BFS discovery path within
    /// `ttl` hops, and partners out of broadcast reach are priced at
    /// the message plane's `default_hop` (they would re-home via a
    /// selective walk whose path latency is unknown). Ties broken by
    /// lowest node id. Deterministic: no randomness is drawn.
    LatencyAware {
        /// TTL of the candidate's `sumpeer` broadcast (the
        /// construction TTL, §4.1's example: 2).
        ttl: u32,
        /// One-way price of a partner the broadcast does not reach.
        default_hop: SimTime,
    },
}

/// Minimum accumulated broadcast-tree latency (µs) from `origin` to
/// every node within `ttl` BFS hops, over live nodes only — the same
/// tree [`construct_domains`] prices partnerships with.
fn broadcast_distances(net: &Network, origin: NodeId, ttl: u32) -> Vec<Option<u64>> {
    let n = net.len();
    let mut dist: Vec<Option<u64>> = vec![None; n];
    dist[origin.index()] = Some(0);
    let mut frontier = vec![origin];
    for _ in 0..ttl {
        let mut next = Vec::new();
        for &u in &frontier {
            let du = dist[u.index()].expect("frontier has distance");
            let nbrs: Vec<(NodeId, SimTime)> = net
                .graph()
                .neighbors(u)
                .iter()
                .map(|e| (e.node, e.latency))
                .collect();
            for (v, lat) in nbrs {
                if !net.is_up(v) {
                    continue;
                }
                let dv = du + lat.0;
                if dist[v.index()].map(|old| dv < old).unwrap_or(true) {
                    dist[v.index()] = Some(dv);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Elects the replacement SP for a reborn domain from `live_members`
/// (the dissolved domain's members that are still connected), serving
/// `partners` (normally the same set). Returns `None` when no live
/// candidate exists — the domain then stays dissolved and its members
/// walk to surviving domains as they rejoin.
pub fn elect_replacement_sp(
    net: &Network,
    live_members: &[NodeId],
    partners: &[NodeId],
    policy: ElectionPolicy,
) -> Option<NodeId> {
    let mut hubs: Vec<NodeId> = live_members
        .iter()
        .copied()
        .filter(|&m| net.is_up(m))
        .collect();
    // Highest degree first, ties by lowest id — deterministic.
    hubs.sort_by_key(|&m| (std::cmp::Reverse(net.graph().degree(m)), m.0));
    match policy {
        ElectionPolicy::Degree => hubs.first().copied(),
        ElectionPolicy::LatencyAware { ttl, default_hop } => {
            hubs.truncate(REBIRTH_CANDIDATES);
            hubs.iter()
                .copied()
                .map(|c| {
                    let dist = broadcast_distances(net, c, ttl);
                    let rtt_sum: u64 = partners
                        .iter()
                        .filter(|&&p| p != c)
                        .map(|&p| 2 * dist[p.index()].unwrap_or(default_hop.0))
                        .sum();
                    (rtt_sum, c)
                })
                .min_by_key(|&(rtt, c)| (rtt, c.0))
                .map(|(_, c)| c)
        }
    }
}

/// The newborn SP's takeover broadcast: `sumpeer` floods over `ttl`
/// hops (counted as construction traffic, like the initial §4.1
/// broadcast) and the broadcast-tree latencies become the re-homed
/// partners' distances. Registers `new_sp` in the superpeer roster and
/// returns the per-node tree distance so the caller can re-assign the
/// orphans (partners out of reach keep an unknown distance).
pub fn rebirth_broadcast(
    net: &mut Network,
    domains: &mut Domains,
    new_sp: NodeId,
    ttl: u32,
) -> Vec<Option<u64>> {
    let msgs = net.flood_message_count(new_sp, ttl);
    net.count_messages(MessageClass::Construction, msgs);
    if !domains.superpeers.contains(&new_sp) {
        domains.superpeers.push(new_sp);
    }
    domains.assignment[new_sp.index()] = None;
    domains.distance[new_sp.index()] = u64::MAX;
    broadcast_distances(net, new_sp, ttl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::topology::{Graph, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TopologyConfig {
            nodes: n,
            ..Default::default()
        };
        Network::new(Graph::barabasi_albert(&cfg, &mut rng))
    }

    #[test]
    fn superpeer_election_prefers_hubs() {
        let n = net(300, 1);
        let sps = elect_superpeers(&n, 5);
        assert_eq!(sps.len(), 5);
        let min_sp_degree = sps.iter().map(|&s| n.graph().degree(s)).min().unwrap();
        let avg: f64 = n.graph().average_degree();
        assert!(min_sp_degree as f64 >= avg, "SPs must be hubs");
    }

    #[test]
    fn construction_assigns_most_peers() {
        let mut n = net(400, 2);
        let sps = elect_superpeers(&n, 8);
        let domains = construct_domains(&mut n, &sps, 2);
        // Power-law hubs with TTL 2 + selective-walk fallback reach
        // essentially everyone.
        let assignable = n.len() - sps.len();
        assert!(
            domains.assigned_count() as f64 >= 0.95 * assignable as f64,
            "assigned {}/{assignable}",
            domains.assigned_count()
        );
        assert!(n.sent(MessageClass::Construction) > 0);
        // No SP is assigned to another SP.
        for &sp in &sps {
            assert!(domains.assignment[sp.index()].is_none());
        }
    }

    #[test]
    fn closer_sp_wins() {
        // Line: sp0 - a - b - sp1; with TTL 2 both SPs reach a and b.
        let mut g = Graph::empty(4);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(1), NodeId(2), SimTime::from_millis(1));
        g.add_edge(NodeId(2), NodeId(3), SimTime::from_millis(1));
        let mut n = Network::new(g);
        let domains = construct_domains(&mut n, &[NodeId(0), NodeId(3)], 2);
        assert_eq!(domains.assignment[1], Some(NodeId(0)), "a is closer to sp0");
        assert_eq!(domains.assignment[2], Some(NodeId(3)), "b is closer to sp1");
    }

    #[test]
    fn broadcast_tree_delivers_over_link_latencies() {
        // Line: sp0 - a - b, 1 ms links: a joins at 1 ms, b at 2 ms.
        let mut g = Graph::empty(3);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(1), NodeId(2), SimTime::from_millis(1));
        let mut n = Network::new(g);
        let domains = construct_domains(&mut n, &[NodeId(0)], 2);
        assert_eq!(domains.join_time(NodeId(1)), Some(SimTime::from_millis(1)));
        assert_eq!(domains.join_time(NodeId(2)), Some(SimTime::from_millis(2)));
        assert_eq!(domains.join_time(NodeId(0)), None, "SPs do not join");
        assert_eq!(domains.completion_time(), SimTime::from_millis(2));
    }

    #[test]
    fn members_listing() {
        let mut n = net(100, 3);
        let sps = elect_superpeers(&n, 3);
        let domains = construct_domains(&mut n, &sps, 2);
        let total: usize = sps.iter().map(|&s| domains.members(s).len()).sum();
        assert_eq!(total, domains.assigned_count());
    }

    #[test]
    fn graceful_sp_departure_rehomes_partners() {
        let mut n = net(200, 4);
        let sps = elect_superpeers(&n, 4);
        let mut domains = construct_domains(&mut n, &sps, 2);
        let sp = sps[0];
        let orphans = domains.members(sp).len();
        n.reset_counters();
        let rehomed = handle_sp_departure(&mut n, &mut domains, sp, true);
        assert!(orphans > 0);
        assert!(
            rehomed as f64 >= 0.9 * orphans as f64,
            "{rehomed}/{orphans}"
        );
        assert_eq!(
            n.sent(MessageClass::Control),
            orphans as u64,
            "release msgs"
        );
        assert!(!domains.superpeers.contains(&sp));
        // Nobody points at the departed SP anymore.
        assert!(domains.assignment.iter().all(|a| *a != Some(sp)));
    }

    #[test]
    fn degree_election_prefers_hubs_with_id_tiebreak() {
        // Star with an extra edge: node 0 is the hub.
        let mut g = Graph::star(6, SimTime::from_millis(1));
        g.add_edge(NodeId(3), NodeId(4), SimTime::from_millis(1));
        let n = Network::new(g);
        let members: Vec<NodeId> = (0..6).map(NodeId).collect();
        let sp = elect_replacement_sp(&n, &members, &members, ElectionPolicy::Degree);
        assert_eq!(sp, Some(NodeId(0)), "the hub wins on degree");
        // Without the hub, 3 and 4 tie at degree 2: lowest id wins.
        let rest: Vec<NodeId> = (1..6).map(NodeId).collect();
        let sp = elect_replacement_sp(&n, &rest, &rest, ElectionPolicy::Degree);
        assert_eq!(sp, Some(NodeId(3)), "ties break by lowest id");
    }

    #[test]
    fn latency_election_minimizes_partner_round_trip() {
        // Line 0 - 1 - 2 - 3 - 4 with 1 ms links: every node has
        // degree ≤ 2, and the center (2) minimizes the summed
        // broadcast-tree round-trip to the rest.
        let mut g = Graph::empty(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1), SimTime::from_millis(1));
        }
        let n = Network::new(g);
        let members: Vec<NodeId> = (0..5).map(NodeId).collect();
        let sp = elect_replacement_sp(
            &n,
            &members,
            &members,
            ElectionPolicy::LatencyAware {
                ttl: 2,
                default_hop: SimTime::from_millis(50),
            },
        );
        assert_eq!(sp, Some(NodeId(2)), "the center minimizes expected RTT");
        // Degree order alone cannot tell 1, 2, 3 apart and falls back
        // to the lowest id — the latency-aware policy does better.
        let by_degree = elect_replacement_sp(&n, &members, &members, ElectionPolicy::Degree);
        assert_eq!(by_degree, Some(NodeId(1)));
    }

    #[test]
    fn election_ignores_down_members_and_may_abstain() {
        let mut net = net(50, 9);
        let members: Vec<NodeId> = (0..10).map(NodeId).collect();
        for &m in &members {
            net.take_down(m);
        }
        assert_eq!(
            elect_replacement_sp(&net, &members, &members, ElectionPolicy::Degree),
            None,
            "no live candidate, no rebirth"
        );
        net.bring_up(NodeId(7));
        assert_eq!(
            elect_replacement_sp(&net, &members, &members, ElectionPolicy::Degree),
            Some(NodeId(7))
        );
    }

    #[test]
    fn dissolve_then_rebirth_broadcast_reassigns_the_roster() {
        let mut n = net(200, 6);
        let sps = elect_superpeers(&n, 4);
        let mut domains = construct_domains(&mut n, &sps, 2);
        let sp = sps[0];
        let members = domains.members(sp);
        assert!(!members.is_empty());
        let orphans = dissolve_domain(&mut n, &mut domains, sp, true);
        assert_eq!(orphans, members);
        assert!(!domains.superpeers.contains(&sp));
        assert!(domains.assignment.iter().all(|a| *a != Some(sp)));

        let live: Vec<NodeId> = orphans.iter().copied().filter(|&m| n.is_up(m)).collect();
        let ns = elect_replacement_sp(&n, &live, &live, ElectionPolicy::Degree)
            .expect("live members exist");
        let dist = rebirth_broadcast(&mut n, &mut domains, ns, 2);
        assert!(domains.superpeers.contains(&ns));
        assert_eq!(domains.assignment[ns.index()], None, "SPs are not partners");
        // Nodes in broadcast reach got genuine tree latencies.
        assert!(dist.iter().flatten().any(|&d| d > 0));
        assert_eq!(dist[ns.index()], Some(0));
    }

    #[test]
    fn failed_sp_costs_detection_messages() {
        let mut n = net(200, 5);
        let sps = elect_superpeers(&n, 4);
        let mut domains = construct_domains(&mut n, &sps, 2);
        let sp = sps[1];
        let orphans = domains.members(sp).len();
        n.reset_counters();
        handle_sp_departure(&mut n, &mut domains, sp, false);
        assert_eq!(
            n.sent(MessageClass::Push),
            orphans as u64,
            "timed-out probes"
        );
        assert_eq!(n.sent(MessageClass::Control), 0, "no release on failure");
    }
}
