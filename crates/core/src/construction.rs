//! Domain construction over the physical topology (§4.1) and summary-peer
//! dynamicity (§4.3).
//!
//! Construction starts at each summary peer (SP), which broadcasts a
//! `sumpeer` message with a TTL (the paper's example: 2). A peer
//! receiving its first `sumpeer` joins that SP's domain by shipping its
//! `localsum`; a peer hearing from a *closer* SP (latency along the
//! broadcast path) drops its old partnership (`drop` message) and joins
//! the closer one. Peers out of every broadcast's reach run a *selective
//! walk* — always forwarding to the highest-degree neighbor \[23\] — which
//! stops at the first partner or summary peer found.
//!
//! When an SP departs gracefully it `release`s its partners, who each
//! walk to a new SP; when it fails, partners discover the failure on
//! their next push/query attempt and then walk.

use p2psim::network::{MessageClass, Network, NodeId};
use p2psim::time::SimTime;

/// The outcome of domain construction.
#[derive(Debug, Clone)]
pub struct Domains {
    /// The elected summary peers.
    pub superpeers: Vec<NodeId>,
    /// `assignment[p]` = the SP of peer `p` (`None` for SPs themselves
    /// and unreachable peers).
    pub assignment: Vec<Option<NodeId>>,
    /// Latency distance (µs along the broadcast path) from each peer to
    /// its SP.
    pub distance: Vec<u64>,
}

impl Domains {
    /// Members of one SP's domain (partners only).
    pub fn members(&self, sp: NodeId) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(sp))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of peers assigned to any domain.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Virtual time at which peer `p` heard its SP's `sumpeer` broadcast
    /// — the accumulated link latency along the broadcast tree. `None`
    /// for SPs, unassigned peers and selective-walk partners (whose
    /// broadcast-path latency is unknown).
    pub fn join_time(&self, p: NodeId) -> Option<SimTime> {
        match (self.assignment[p.index()], self.distance[p.index()]) {
            (Some(_), d) if d < u64::MAX - 1 => Some(SimTime(d)),
            _ => None,
        }
    }

    /// Virtual time at which the construction broadcast completed: the
    /// latest broadcast-tree delivery across all assigned peers. The
    /// latency-aware kernel reports this as the construction span — the
    /// window during which a real deployment's domains were still
    /// forming.
    pub fn completion_time(&self) -> SimTime {
        (0..self.assignment.len() as u32)
            .filter_map(|i| self.join_time(NodeId(i)))
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Elects `count` summary peers: the highest-degree live nodes, the
/// standard ultrapeer criterion (superpeers must afford the extra load).
pub fn elect_superpeers(net: &Network, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = (0..net.len() as u32)
        .map(NodeId)
        .filter(|&p| net.is_up(p))
        .collect();
    by_degree.sort_by_key(|&p| std::cmp::Reverse(net.graph().degree(p)));
    by_degree.truncate(count);
    by_degree
}

/// Runs the construction protocol. Counts every message on `net`'s
/// counters (`Construction` class) and returns the domain map.
pub fn construct_domains(net: &mut Network, superpeers: &[NodeId], ttl: u32) -> Domains {
    let n = net.len();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut distance: Vec<u64> = vec![u64::MAX; n];

    // Each SP broadcasts `sumpeer` with the TTL; the flood cost is the
    // standard duplicate-counting broadcast cost.
    for &sp in superpeers {
        let msgs = net.flood_message_count(sp, ttl);
        net.count_messages(MessageClass::Construction, msgs);
    }

    // Peers adopt the closest SP (latency along the broadcast tree). We
    // recompute reach with per-path latencies: BFS by hops, accumulating
    // link latency.
    for &sp in superpeers {
        let mut dist: Vec<Option<u64>> = vec![None; n];
        dist[sp.index()] = Some(0);
        let mut frontier = vec![sp];
        for _ in 0..ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                let du = dist[u.index()].expect("frontier has distance");
                let nbrs: Vec<(NodeId, SimTime)> = net
                    .graph()
                    .neighbors(u)
                    .iter()
                    .map(|e| (e.node, e.latency))
                    .collect();
                for (v, lat) in nbrs {
                    if !net.is_up(v) {
                        continue;
                    }
                    let dv = du + lat.0;
                    if dist[v.index()].map(|old| dv < old).unwrap_or(true) {
                        dist[v.index()] = Some(dv);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        for i in 0..n {
            let p = NodeId(i as u32);
            if p == sp || superpeers.contains(&p) {
                continue;
            }
            if let Some(d) = dist[i] {
                if d < distance[i] {
                    if assignment[i].is_some() {
                        // §4.1: drop the farther partnership first.
                        net.count_message(MessageClass::Construction); // drop
                    }
                    assignment[i] = Some(sp);
                    distance[i] = d;
                    net.count_message(MessageClass::Construction); // localsum
                }
            }
        }
    }

    // Unreached peers run a selective walk that stops at the first
    // partner or summary peer (§4.1: "once a partner or a summary peer
    // is reached, the find message is stopped").
    for i in 0..n {
        let p = NodeId(i as u32);
        if assignment[i].is_some() || superpeers.contains(&p) || !net.is_up(p) {
            continue;
        }
        let max_hops = (n as u32).min(64);
        let (path, found) = net.selective_walk(p, max_hops, |v| {
            superpeers.contains(&v) || assignment[v.index()].is_some()
        });
        net.count_messages(MessageClass::Construction, path.len() as u64); // find hops
        if found {
            let reached = *path.last().expect("found implies non-empty path");
            let sp = if superpeers.contains(&reached) {
                reached
            } else {
                assignment[reached.index()].expect("partner has an SP")
            };
            assignment[i] = Some(sp);
            distance[i] = u64::MAX - 1; // out-of-broadcast partner: distance unknown
            net.count_message(MessageClass::Construction); // localsum
        }
    }

    Domains {
        superpeers: superpeers.to_vec(),
        assignment,
        distance,
    }
}

/// Handles a summary peer departure (§4.3). Graceful: the SP sends
/// `release` to every partner; failed: each partner pays one extra
/// (timed-out) message discovering the failure. Every orphaned partner
/// then walks to a new SP. Returns the number of re-homed partners.
pub fn handle_sp_departure(
    net: &mut Network,
    domains: &mut Domains,
    sp: NodeId,
    graceful: bool,
) -> usize {
    let members = domains.members(sp);
    net.take_down(sp);
    if graceful {
        net.count_messages(MessageClass::Control, members.len() as u64); // release
    } else {
        // Failure detection: a wasted push/query attempt per partner.
        net.count_messages(MessageClass::Push, members.len() as u64);
    }
    let remaining: Vec<NodeId> = domains
        .superpeers
        .iter()
        .copied()
        .filter(|&s| s != sp)
        .collect();
    domains.superpeers = remaining.clone();
    let mut rehomed = 0;
    for p in members {
        domains.assignment[p.index()] = None;
        // The broadcast-tree latency was measured to the departed SP;
        // whatever domain the walk finds, the path latency is unknown.
        domains.distance[p.index()] = u64::MAX - 1;
        if !net.is_up(p) {
            continue;
        }
        let max_hops = (net.len() as u32).min(64);
        let (path, found) = net.selective_walk(p, max_hops, |v| {
            remaining.contains(&v)
                || domains.assignment[v.index()]
                    .map(|s| s != sp)
                    .unwrap_or(false)
        });
        net.count_messages(MessageClass::Construction, path.len() as u64);
        if found {
            let reached = *path.last().expect("non-empty");
            let new_sp = if remaining.contains(&reached) {
                reached
            } else {
                domains.assignment[reached.index()].expect("partner has an SP")
            };
            domains.assignment[p.index()] = Some(new_sp);
            net.count_message(MessageClass::Construction); // localsum
            rehomed += 1;
        }
    }
    rehomed
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::topology::{Graph, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TopologyConfig {
            nodes: n,
            ..Default::default()
        };
        Network::new(Graph::barabasi_albert(&cfg, &mut rng))
    }

    #[test]
    fn superpeer_election_prefers_hubs() {
        let n = net(300, 1);
        let sps = elect_superpeers(&n, 5);
        assert_eq!(sps.len(), 5);
        let min_sp_degree = sps.iter().map(|&s| n.graph().degree(s)).min().unwrap();
        let avg: f64 = n.graph().average_degree();
        assert!(min_sp_degree as f64 >= avg, "SPs must be hubs");
    }

    #[test]
    fn construction_assigns_most_peers() {
        let mut n = net(400, 2);
        let sps = elect_superpeers(&n, 8);
        let domains = construct_domains(&mut n, &sps, 2);
        // Power-law hubs with TTL 2 + selective-walk fallback reach
        // essentially everyone.
        let assignable = n.len() - sps.len();
        assert!(
            domains.assigned_count() as f64 >= 0.95 * assignable as f64,
            "assigned {}/{assignable}",
            domains.assigned_count()
        );
        assert!(n.sent(MessageClass::Construction) > 0);
        // No SP is assigned to another SP.
        for &sp in &sps {
            assert!(domains.assignment[sp.index()].is_none());
        }
    }

    #[test]
    fn closer_sp_wins() {
        // Line: sp0 - a - b - sp1; with TTL 2 both SPs reach a and b.
        let mut g = Graph::empty(4);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(1), NodeId(2), SimTime::from_millis(1));
        g.add_edge(NodeId(2), NodeId(3), SimTime::from_millis(1));
        let mut n = Network::new(g);
        let domains = construct_domains(&mut n, &[NodeId(0), NodeId(3)], 2);
        assert_eq!(domains.assignment[1], Some(NodeId(0)), "a is closer to sp0");
        assert_eq!(domains.assignment[2], Some(NodeId(3)), "b is closer to sp1");
    }

    #[test]
    fn broadcast_tree_delivers_over_link_latencies() {
        // Line: sp0 - a - b, 1 ms links: a joins at 1 ms, b at 2 ms.
        let mut g = Graph::empty(3);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(1), NodeId(2), SimTime::from_millis(1));
        let mut n = Network::new(g);
        let domains = construct_domains(&mut n, &[NodeId(0)], 2);
        assert_eq!(domains.join_time(NodeId(1)), Some(SimTime::from_millis(1)));
        assert_eq!(domains.join_time(NodeId(2)), Some(SimTime::from_millis(2)));
        assert_eq!(domains.join_time(NodeId(0)), None, "SPs do not join");
        assert_eq!(domains.completion_time(), SimTime::from_millis(2));
    }

    #[test]
    fn members_listing() {
        let mut n = net(100, 3);
        let sps = elect_superpeers(&n, 3);
        let domains = construct_domains(&mut n, &sps, 2);
        let total: usize = sps.iter().map(|&s| domains.members(s).len()).sum();
        assert_eq!(total, domains.assigned_count());
    }

    #[test]
    fn graceful_sp_departure_rehomes_partners() {
        let mut n = net(200, 4);
        let sps = elect_superpeers(&n, 4);
        let mut domains = construct_domains(&mut n, &sps, 2);
        let sp = sps[0];
        let orphans = domains.members(sp).len();
        n.reset_counters();
        let rehomed = handle_sp_departure(&mut n, &mut domains, sp, true);
        assert!(orphans > 0);
        assert!(
            rehomed as f64 >= 0.9 * orphans as f64,
            "{rehomed}/{orphans}"
        );
        assert_eq!(
            n.sent(MessageClass::Control),
            orphans as u64,
            "release msgs"
        );
        assert!(!domains.superpeers.contains(&sp));
        // Nobody points at the departed SP anymore.
        assert!(domains.assignment.iter().all(|a| *a != Some(sp)));
    }

    #[test]
    fn failed_sp_costs_detection_messages() {
        let mut n = net(200, 5);
        let sps = elect_superpeers(&n, 4);
        let mut domains = construct_domains(&mut n, &sps, 2);
        let sp = sps[1];
        let orphans = domains.members(sp).len();
        n.reset_counters();
        handle_sp_departure(&mut n, &mut domains, sp, false);
        assert_eq!(
            n.sent(MessageClass::Push),
            orphans as u64,
            "timed-out probes"
        );
        assert_eq!(n.sent(MessageClass::Control), 0, "no release on failure");
    }
}
