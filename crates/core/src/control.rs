//! The maintenance control plane: per-domain adaptive α.
//!
//! The paper picks **one** freshness threshold α for the whole network
//! (§4.2.2), trading answer staleness against reconciliation bandwidth
//! at a single operating point. Domains are not alike, though: a
//! fast-drifting domain needs a strict α to keep its global summary
//! honest, while a quiet one wastes pull bandwidth at the same
//! threshold. This module closes that loop with measured feedback.
//!
//! ## Feedback signals
//!
//! Each control **epoch** (a recurring [`crate::kernel::KernelEvent::ControlTick`],
//! every [`ControlPolicy::Adaptive::epoch_s`] virtual seconds), every
//! live domain's [`DomainController`] folds two signals:
//!
//! * **stale-answer fraction** — every query the domain's SP processes
//!   ([`AlphaController::record_query`]) contributes its validated and
//!   stale answer counts; an epoch with samples folds
//!   `stale / (stale + ok)` into an exponentially weighted moving
//!   average (new-sample weight 0.7), which smooths the sparse
//!   per-domain query stream without letting one lookup whipsaw α.
//!   Until the *first* query ever touches the domain, the cooperation
//!   list's instantaneous stale fraction (the §6.1.1 trigger metric)
//!   stands in — a worst-case proxy for the same quantity (every
//!   flagged partner counted wrong, the paper's Figure 4 vs Figure 5
//!   gap), good enough to bootstrap but deliberately not used once
//!   real measurements exist.
//! * **reconciliation cost** — the cumulative delta payload bytes the
//!   domain's pulls have shipped ([`crate::peerstate::ReconcileWork`],
//!   mirrored in `DomainCore::delta_bytes_total`). The cost signal
//!   modulates how fast α *relaxes*: the full proportional step while
//!   the domain actually spent pull bandwidth during the epoch (there
//!   is bandwidth to save), half speed when it pulled nothing (an idle
//!   domain gains little from a laxer threshold, so it only drifts
//!   slowly toward `α_max`). Tightening is never slowed — staleness
//!   over target is acted on at full gain regardless of cost.
//!
//! ## The control law
//!
//! A bounded proportional step per epoch:
//!
//! ```text
//! err    = measured_staleness − target_staleness
//! α_next = clamp(α − gain · err, α_min, α_max)
//! ```
//!
//! Staleness above target tightens α (reconcile sooner); staleness
//! below target relaxes it (save bandwidth), at the cost-modulated
//! rate above. The clamp makes the controller *bounded*: whatever the
//! feedback does, the effective α of every domain stays inside
//! `[α_min, α_max]` (property-tested in `tests/alpha_control.rs`).
//!
//! ## Epoch scheduling and determinism
//!
//! [`ControlPolicy::Fixed`] — the default — schedules **no** control
//! ticks and never moves α: the kernel's event and RNG streams are
//! byte-identical to the pre-control-plane behavior, which is what
//! keeps the seed figures (and `tests/latency_plane.rs` /
//! `tests/gs_incremental.rs`) unchanged. `Adaptive` schedules one
//! recurring `ControlTick`; the tick draws no randomness, so adaptive
//! runs stay deterministic per seed in both delivery modes.
//!
//! Controller state is **per domain slot** and follows the domain's
//! §4.3 lifecycle: when a summary peer departs and its domain
//! dissolves, the kernel freezes the slot's controller
//! ([`AlphaController::on_dissolve`]) — its trajectory ends there —
//! while partners re-homing into surviving domains start feeding those
//! domains' controllers instead.

use p2psim::time::SimTime;

use crate::error::P2pError;

/// How the per-domain effective α is chosen over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlPolicy {
    /// Every domain uses this α for the whole run — today's §4.2.2
    /// behavior. [`crate::config::SimConfig::control`] of `None`
    /// resolves to `Fixed(cfg.alpha)`.
    Fixed(f64),
    /// Per-domain feedback control: each control epoch, every domain's
    /// α takes one bounded proportional step toward the staleness
    /// target (see the module docs for the law and the signals).
    Adaptive {
        /// The stale-answer fraction the controller steers toward.
        target_staleness: f64,
        /// Lower clamp of the effective α.
        alpha_min: f64,
        /// Upper clamp of the effective α.
        alpha_max: f64,
        /// Proportional gain of the per-epoch step.
        gain: f64,
        /// Control epoch length in virtual seconds.
        epoch_s: f64,
    },
}

impl ControlPolicy {
    /// A reasonable adaptive default around the given staleness target:
    /// α free in `[0.05, 0.9]`, gain 0.5, 10-minute epochs.
    pub fn adaptive_default(target_staleness: f64) -> Self {
        Self::Adaptive {
            target_staleness,
            alpha_min: 0.05,
            alpha_max: 0.9,
            gain: 0.5,
            epoch_s: 600.0,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), P2pError> {
        match *self {
            Self::Fixed(a) => {
                if !(0.0..=1.0).contains(&a) {
                    return Err(P2pError::BadConfig(format!(
                        "fixed control alpha {a} not in [0,1]"
                    )));
                }
            }
            Self::Adaptive {
                target_staleness,
                alpha_min,
                alpha_max,
                gain,
                epoch_s,
            } => {
                if !(target_staleness.is_finite() && (0.0..1.0).contains(&target_staleness)) {
                    return Err(P2pError::BadConfig(format!(
                        "target_staleness {target_staleness} not in [0,1)"
                    )));
                }
                let bounds_ok = (0.0..=1.0).contains(&alpha_min)
                    && (0.0..=1.0).contains(&alpha_max)
                    && alpha_min <= alpha_max;
                if !bounds_ok {
                    return Err(P2pError::BadConfig(format!(
                        "alpha bounds [{alpha_min}, {alpha_max}] must satisfy \
                         0 <= min <= max <= 1"
                    )));
                }
                if !(gain.is_finite() && gain > 0.0) {
                    return Err(P2pError::BadConfig(format!(
                        "control gain {gain} must be finite and positive"
                    )));
                }
                if !(epoch_s.is_finite() && epoch_s > 0.0) {
                    return Err(P2pError::BadConfig(format!(
                        "control epoch_s {epoch_s} must be finite and positive"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The epoch as virtual time (`None` for the fixed policy, which
    /// schedules no control ticks at all).
    pub fn epoch(&self) -> Option<SimTime> {
        match *self {
            Self::Fixed(_) => None,
            Self::Adaptive { epoch_s, .. } => Some(SimTime::from_secs_f64(epoch_s)),
        }
    }
}

/// One domain's controller state: its current effective α, the epoch's
/// accumulated query feedback, and the recorded α trajectory.
#[derive(Debug, Clone)]
pub struct DomainController {
    /// The domain's current effective α.
    alpha: f64,
    /// Frozen after the domain dissolved (§4.3 SP departure).
    dissolved: bool,
    /// Validated answers the domain's SP produced this epoch.
    epoch_ok: u64,
    /// Stale answers the domain's SP produced this epoch.
    epoch_stale: u64,
    /// EWMA of the query-derived staleness (`None` until the first
    /// query ever touches the domain).
    staleness_ewma: Option<f64>,
    /// Cumulative pull delta bytes at the end of the previous epoch —
    /// the cost signal is the per-epoch difference.
    last_delta_bytes: u64,
    /// `(virtual seconds, α)` samples: the initial point plus one per
    /// control tick.
    trajectory: Vec<(f64, f64)>,
}

impl DomainController {
    fn new(alpha: f64) -> Self {
        Self {
            alpha,
            dissolved: false,
            epoch_ok: 0,
            epoch_stale: 0,
            staleness_ewma: None,
            last_delta_bytes: 0,
            trajectory: vec![(0.0, alpha)],
        }
    }
}

/// The control plane of one kernel run: the policy plus one
/// [`DomainController`] per domain slot.
#[derive(Debug, Clone)]
pub struct AlphaController {
    policy: ControlPolicy,
    domains: Vec<DomainController>,
}

impl AlphaController {
    /// Builds the controller for `n_domains` slots. Under
    /// [`ControlPolicy::Fixed`] every slot starts (and stays) at the
    /// fixed α; under `Adaptive` every slot starts at `alpha0` clamped
    /// into the policy's bounds.
    pub fn new(policy: ControlPolicy, n_domains: usize, alpha0: f64) -> Self {
        let start = match policy {
            ControlPolicy::Fixed(a) => a,
            ControlPolicy::Adaptive {
                alpha_min,
                alpha_max,
                ..
            } => alpha0.clamp(alpha_min, alpha_max),
        };
        Self {
            policy,
            domains: (0..n_domains)
                .map(|_| DomainController::new(start))
                .collect(),
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> ControlPolicy {
        self.policy
    }

    /// The control epoch (`None` under the fixed policy).
    pub fn epoch(&self) -> Option<SimTime> {
        self.policy.epoch()
    }

    /// The current effective α of domain `d`.
    pub fn alpha(&self, d: usize) -> f64 {
        self.domains[d].alpha
    }

    /// The recorded α trajectory of domain `d`.
    pub fn trajectory(&self, d: usize) -> &[(f64, f64)] {
        &self.domains[d].trajectory
    }

    /// Number of domain slots.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when no domain slot exists.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Records one processed query at domain `d`'s SP: `ok` validated
    /// answers and `stale` summary-selected peers that were down or no
    /// longer matching.
    pub fn record_query(&mut self, d: usize, ok: usize, stale: usize) {
        let ctl = &mut self.domains[d];
        ctl.epoch_ok += ok as u64;
        ctl.epoch_stale += stale as u64;
    }

    /// Freezes domain `d`'s controller after its SP departed: α stops
    /// moving and the trajectory ends at its last sample.
    pub fn on_dissolve(&mut self, d: usize) {
        self.domains[d].dissolved = true;
    }

    /// Re-activates domain `d`'s frozen controller slot after the
    /// domain was reborn under a replacement SP (§4.3 rebirth). The
    /// slot unfreezes at the α it was frozen with — the reborn
    /// membership is essentially the dissolved one, so its operating
    /// point (and staleness EWMA) carries over — while the epoch's
    /// query accumulators restart empty and the cost signal re-bases
    /// on the domain's current cumulative pull bytes (`cum_delta_bytes`
    /// from `DomainCore::delta_bytes_total`, which survives the
    /// dissolution). A trajectory sample marks the rebirth instant.
    pub fn on_rebirth(&mut self, d: usize, now_s: f64, cum_delta_bytes: u64) {
        let ctl = &mut self.domains[d];
        ctl.dissolved = false;
        ctl.epoch_ok = 0;
        ctl.epoch_stale = 0;
        ctl.last_delta_bytes = cum_delta_bytes;
        let alpha = ctl.alpha;
        ctl.trajectory.push((now_s, alpha));
    }

    /// Runs one control epoch for domain `d` and returns its (possibly
    /// updated) effective α. `cl_stale_fraction` is the cooperation
    /// list's current trigger metric (the fallback staleness signal);
    /// `cum_delta_bytes` is the domain's cumulative pull payload
    /// (`DomainCore::delta_bytes_total`), whose per-epoch difference is
    /// the cost signal. No-op under the fixed policy or after
    /// dissolution.
    pub fn tick_domain(
        &mut self,
        d: usize,
        now_s: f64,
        cl_stale_fraction: f64,
        cum_delta_bytes: u64,
    ) -> f64 {
        let ControlPolicy::Adaptive {
            target_staleness,
            alpha_min,
            alpha_max,
            gain,
            ..
        } = self.policy
        else {
            return self.domains[d].alpha;
        };
        let ctl = &mut self.domains[d];
        if ctl.dissolved {
            return ctl.alpha;
        }
        let sampled = ctl.epoch_ok + ctl.epoch_stale;
        if sampled > 0 {
            let sample = ctl.epoch_stale as f64 / sampled as f64;
            ctl.staleness_ewma = Some(match ctl.staleness_ewma {
                // New-sample weight 0.7: responsive, but one lookup
                // cannot whipsaw α on its own.
                Some(prev) => 0.3 * prev + 0.7 * sample,
                None => sample,
            });
        }
        let measured = ctl.staleness_ewma.unwrap_or(cl_stale_fraction);
        let spent = cum_delta_bytes > ctl.last_delta_bytes;
        ctl.last_delta_bytes = cum_delta_bytes;
        ctl.epoch_ok = 0;
        ctl.epoch_stale = 0;
        let err = measured - target_staleness;
        if err > 0.0 {
            // Too stale: tighten (reconcile sooner).
            ctl.alpha = (ctl.alpha - gain * err).clamp(alpha_min, alpha_max);
        } else if err < 0.0 {
            // Fresher than asked: relax to save bandwidth — at the
            // full proportional step while pulls are actually being
            // paid for, at half speed otherwise (an idle domain has
            // little to save, so it only drifts slowly toward α_max).
            let rate = if spent { 1.0 } else { 0.5 };
            ctl.alpha = (ctl.alpha - gain * rate * err).clamp(alpha_min, alpha_max);
        }
        ctl.trajectory.push((now_s, ctl.alpha));
        ctl.alpha
    }

    /// The final α of every non-dissolved domain slot.
    pub fn final_alphas(&self) -> Vec<f64> {
        self.domains
            .iter()
            .filter(|c| !c.dissolved)
            .map(|c| c.alpha)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive() -> ControlPolicy {
        ControlPolicy::Adaptive {
            target_staleness: 0.2,
            alpha_min: 0.1,
            alpha_max: 0.8,
            gain: 0.5,
            epoch_s: 600.0,
        }
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut c = AlphaController::new(ControlPolicy::Fixed(0.3), 2, 0.7);
        assert_eq!(c.alpha(0), 0.3, "fixed overrides alpha0");
        assert!(c.epoch().is_none(), "no ticks under the fixed policy");
        c.record_query(0, 1, 99);
        assert_eq!(c.tick_domain(0, 600.0, 1.0, 1 << 20), 0.3);
        assert_eq!(c.trajectory(0), &[(0.0, 0.3)]);
    }

    #[test]
    fn adaptive_tightens_when_stale_and_relaxes_when_spending() {
        let mut c = AlphaController::new(adaptive(), 1, 0.4);
        // Epoch 1: 90% stale answers → err = 0.7, the 0.35 step hits
        // the lower clamp.
        c.record_query(0, 1, 9);
        let a1 = c.tick_domain(0, 600.0, 0.0, 100);
        assert!((a1 - 0.1).abs() < 1e-12, "0.4 - 0.35 clamps to alpha_min");
        // Fresh epochs while still pulling: the EWMA decays below the
        // target and α relaxes.
        let mut bytes = 100;
        let mut last = a1;
        let mut relaxed = false;
        for i in 2..6 {
            c.record_query(0, 10, 0);
            bytes += 100;
            let a = c.tick_domain(0, i as f64 * 600.0, 0.0, bytes);
            assert!(a >= last, "relaxation is monotone here");
            relaxed |= a > last;
            last = a;
        }
        assert!(relaxed, "fresh + spending must eventually relax α");
        // Fresh but no new pull bytes → α still relaxes, at half the
        // spending-epoch rate.
        c.record_query(0, 10, 0);
        let spending_step = {
            let mut probe = c.clone();
            probe.record_query(0, 10, 0);
            probe.tick_domain(0, 6.0 * 600.0, 0.0, bytes + 100) - last
        };
        let idle = c.tick_domain(0, 6.0 * 600.0, 0.0, bytes);
        let idle_step = idle - last;
        assert!(idle_step > 0.0, "idle relax still moves");
        assert!(
            (idle_step - spending_step / 2.0).abs() < 1e-12,
            "idle relax runs at half speed: {idle_step} vs {spending_step}"
        );
    }

    #[test]
    fn cl_fraction_is_the_no_query_fallback() {
        let mut c = AlphaController::new(adaptive(), 1, 0.4);
        // No query ever touched the domain: the CL fraction (0.3)
        // drives the step.
        let a = c.tick_domain(0, 600.0, 0.3, 0);
        assert!((a - (0.4 - 0.5 * (0.3 - 0.2))).abs() < 1e-12);
        // Once a real sample exists, the worst-case CL proxy is out:
        // a perfectly fresh measurement beats a 0.9 CL fraction.
        c.record_query(0, 10, 0);
        let b = c.tick_domain(0, 1200.0, 0.9, 100);
        assert!(b > a, "measured freshness relaxes despite a stale CL");
    }

    #[test]
    fn alpha_stays_clamped_under_extreme_feedback() {
        let mut c = AlphaController::new(adaptive(), 1, 0.4);
        for i in 0..50 {
            c.record_query(0, 0, 100);
            c.tick_domain(0, i as f64 * 600.0, 1.0, 0);
        }
        assert_eq!(c.alpha(0), 0.1, "pinned at alpha_min");
        for i in 50..120 {
            c.record_query(0, 100, 0);
            c.tick_domain(0, i as f64 * 600.0, 0.0, i as u64 + 1);
        }
        assert_eq!(c.alpha(0), 0.8, "pinned at alpha_max");
        for &(_, a) in c.trajectory(0) {
            assert!((0.1..=0.8).contains(&a));
        }
    }

    #[test]
    fn dissolution_freezes_the_slot() {
        let mut c = AlphaController::new(adaptive(), 3, 0.4);
        c.record_query(1, 0, 10);
        c.on_dissolve(1);
        let before = c.alpha(1);
        assert_eq!(c.tick_domain(1, 600.0, 1.0, 50), before);
        assert_eq!(c.final_alphas().len(), 2, "dissolved slot excluded");
    }

    #[test]
    fn policy_validation() {
        ControlPolicy::Fixed(0.5).validate().unwrap();
        assert!(ControlPolicy::Fixed(1.5).validate().is_err());
        ControlPolicy::adaptive_default(0.2).validate().unwrap();
        let bad_bounds = ControlPolicy::Adaptive {
            target_staleness: 0.2,
            alpha_min: 0.6,
            alpha_max: 0.4,
            gain: 0.5,
            epoch_s: 600.0,
        };
        assert!(bad_bounds.validate().is_err());
        let bad_gain = ControlPolicy::Adaptive {
            target_staleness: 0.2,
            alpha_min: 0.1,
            alpha_max: 0.8,
            gain: 0.0,
            epoch_s: 600.0,
        };
        assert!(bad_gain.validate().is_err());
        let bad_epoch = ControlPolicy::Adaptive {
            target_staleness: 0.2,
            alpha_min: 0.1,
            alpha_max: 0.8,
            gain: 0.5,
            epoch_s: f64::NAN,
        };
        assert!(bad_epoch.validate().is_err());
        let bad_target = ControlPolicy::Adaptive {
            target_staleness: 1.0,
            alpha_min: 0.1,
            alpha_max: 0.8,
            gain: 0.5,
            epoch_s: 600.0,
        };
        assert!(bad_target.validate().is_err());
    }
}
