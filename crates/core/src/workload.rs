//! Workload generation (Table 3: "200 queries, each matched by 10 % of
//! the total number of peers").
//!
//! A workload is a set of **query templates** over the medical CBK; each
//! peer's database is generated to match each template independently with
//! probability `match_fraction`, and to *provably* not match the others
//! (templates select on distinct diseases, and background tuples draw
//! from a disjoint disease pool). Ground truth is therefore exact, which
//! the stale-answer accounting of Figures 4–5 requires.

use bytes::Bytes;
use fuzzy::bk::BackgroundKnowledge;
use rand::Rng;
use relation::generator::{avoiding_patient, matching_patient, MatchTarget, PatientDistributions};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::wire;

use crate::error::P2pError;

/// One workload query template.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Template name.
    pub name: String,
    /// The disease it selects on (the discriminating attribute).
    pub disease: String,
    /// The routable selection query (`select age where disease = ...`).
    pub query: SelectQuery,
    /// Generator-side target for producing matching rows.
    pub target: MatchTarget,
}

/// Diseases reserved for templates, in template-index order. The
/// remaining diseases of the CBK form the background pool.
const TEMPLATE_DISEASES: [&str; 3] = ["malaria", "anorexia", "diabetes"];
const BACKGROUND_DISEASES: [&str; 5] = [
    "tuberculosis",
    "influenza",
    "bulimia",
    "hypertension",
    "asthma",
];

/// Builds `count` (1..=3) templates over the medical CBK.
pub fn make_templates(count: usize) -> Vec<QueryTemplate> {
    assert!((1..=TEMPLATE_DISEASES.len()).contains(&count));
    TEMPLATE_DISEASES[..count]
        .iter()
        .map(|d| QueryTemplate {
            name: format!("q-{d}"),
            disease: d.to_string(),
            query: SelectQuery::new(vec!["age".into()], vec![Predicate::eq("disease", *d)]),
            target: MatchTarget {
                disease: Some(d.to_string()),
                ..Default::default()
            },
        })
        .collect()
}

/// Distributions for background (non-matching) patients: only
/// background-pool diseases, so no accidental template match can occur.
pub fn background_distributions() -> PatientDistributions {
    PatientDistributions {
        diseases: BACKGROUND_DISEASES
            .iter()
            .map(|d| (d.to_string(), 1.0))
            .collect(),
        ..Default::default()
    }
}

/// Zipf-distributed template popularity: rank `i` (0-based) is drawn
/// with probability ∝ `1/(i+1)^s`. With `s = 0` every template is
/// equally popular (the round-robin schedule's stationary distribution);
/// growing `s` concentrates the workload on the first templates — the
/// skew real P2P query logs show and the answer caches / group locality
/// of §5.2.2 exploit.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities per rank; the last entry is 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// When `n == 0` or `s` is not finite and non-negative (guarded
    /// upstream by `SimConfig::validate`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over an empty rank set");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent {s} invalid");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard the tail against accumulated rounding.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Draws one rank in `0..n` from the vendored deterministic RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// The probability of rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }
}

/// One peer's generated state: its database-derived artifacts.
#[derive(Debug, Clone)]
pub struct PeerData {
    /// Bit `t` set ⇔ the database currently holds ≥1 tuple matching
    /// template `t` (exact ground truth).
    pub match_bits: u32,
    /// The encoded local summary (what `localsum`/reconciliation ships).
    pub summary: Bytes,
    /// Number of distinct grid cells in the local summary.
    pub cells: usize,
}

impl PeerData {
    /// True when the peer currently matches template `t`.
    pub fn matches(&self, t: usize) -> bool {
        self.match_bits & (1 << t) != 0
    }
}

/// Generates one peer's database and local summary.
///
/// Each template is matched independently with probability
/// `match_fraction`; matched templates contribute one guaranteed matching
/// tuple, the rest of the `records` rows are background. Ground truth is
/// re-verified by exact evaluation before the table is discarded.
/// Relational and summarization failures propagate as [`P2pError`]
/// instead of panicking.
pub fn generate_peer_data<R: Rng + ?Sized>(
    rng: &mut R,
    peer: u32,
    bk: &BackgroundKnowledge,
    templates: &[QueryTemplate],
    match_fraction: f64,
    records: usize,
) -> Result<PeerData, P2pError> {
    let bg = background_distributions();
    let mut table = Table::new(Schema::patient());
    let mut match_bits = 0u32;
    for (t, tpl) in templates.iter().enumerate() {
        if rng.gen_bool(match_fraction.clamp(0.0, 1.0)) {
            match_bits |= 1 << t;
            table.insert(matching_patient(rng, &bg, &tpl.target))?;
        }
    }
    while table.len() < records.max(1) {
        // Background rows avoid every template disease by construction
        // (the background distribution's pool is disjoint); `avoiding`
        // against the first template keeps the intent explicit.
        let row = if templates.is_empty() {
            relation::generator::random_patient(rng, &bg)
        } else {
            avoiding_patient(rng, &bg, &templates[0].target)
        };
        table.insert(row)?;
    }

    // Exact ground-truth verification (the workload's core guarantee).
    for (t, tpl) in templates.iter().enumerate() {
        let truly = tpl.query.matches_any(&table)?;
        debug_assert_eq!(truly, match_bits & (1 << t) != 0, "ground truth drift");
    }

    let mut engine = SaintEtiQEngine::new(
        bk.clone(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(peer),
    )?;
    engine.summarize_table(&table);
    let tree = engine.into_tree();
    Ok(PeerData {
        match_bits,
        cells: tree.leaf_count(),
        summary: wire::encode(&tree),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn templates_select_distinct_diseases() {
        let ts = make_templates(3);
        assert_eq!(ts.len(), 3);
        let diseases: Vec<&str> = ts.iter().map(|t| t.disease.as_str()).collect();
        assert_eq!(diseases, vec!["malaria", "anorexia", "diabetes"]);
        for t in &ts {
            assert_eq!(t.query.projection, vec!["age".to_string()]);
        }
    }

    #[test]
    #[should_panic]
    fn too_many_templates_rejected() {
        make_templates(4);
    }

    #[test]
    fn background_pool_is_disjoint_from_templates() {
        let bg = background_distributions();
        for (d, _) in &bg.diseases {
            assert!(
                !TEMPLATE_DISEASES.contains(&d.as_str()),
                "{d} is a template disease"
            );
        }
    }

    #[test]
    fn peer_data_ground_truth_is_exact() -> Result<(), P2pError> {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(3);
        let mut rng = StdRng::seed_from_u64(5);
        for peer in 0..50 {
            let pd = generate_peer_data(&mut rng, peer, &bk, &templates, 0.5, 20)?;
            // Decode the summary and check that the match bits agree with
            // what summary-level routing would conclude for fresh data.
            let tree = wire::decode(&pd.summary)?;
            for (t, tpl) in templates.iter().enumerate() {
                let sq = saintetiq::query::proposition::reformulate(&tpl.query, &bk)?;
                let sources = saintetiq::query::relevant_sources(&tree, &sq.proposition);
                let summary_says = sources.contains(&SourceId(peer));
                assert_eq!(
                    summary_says,
                    pd.matches(t),
                    "peer {peer} template {t}: summary routing must agree with \
                     ground truth on fresh data (crisp disease attribute)"
                );
            }
        }
        Ok(())
    }

    #[test]
    fn match_probability_is_respected() {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(1);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2000;
        let matches = (0..n)
            .filter(|&p| {
                generate_peer_data(&mut rng, p, &bk, &templates, 0.10, 10)
                    .expect("valid workload")
                    .matches(0)
            })
            .count();
        let rate = matches as f64 / n as f64;
        assert!(
            (0.07..=0.13).contains(&rate),
            "match rate {rate} (want ≈0.10)"
        );
    }

    #[test]
    fn zero_match_fraction_yields_no_matches() -> Result<(), P2pError> {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(2);
        let mut rng = StdRng::seed_from_u64(11);
        for p in 0..20 {
            let pd = generate_peer_data(&mut rng, p, &bk, &templates, 0.0, 15)?;
            assert_eq!(pd.match_bits, 0);
        }
        Ok(())
    }

    #[test]
    fn zipf_sampler_matches_the_law() {
        let z = ZipfSampler::new(3, 1.0);
        // Weights 1, 1/2, 1/3 → probabilities 6/11, 3/11, 2/11.
        assert!((z.probability(0) - 6.0 / 11.0).abs() < 1e-12);
        assert!((z.probability(1) - 3.0 / 11.0).abs() < 1e-12);
        assert!((z.probability(2) - 2.0 / 11.0).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            assert!(
                (rate - z.probability(i)).abs() < 0.02,
                "rank {i}: {rate} vs {}",
                z.probability(i)
            );
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = ZipfSampler::new(3, 0.0);
        for i in 0..3 {
            assert!((z.probability(i) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn summaries_are_compact() {
        let bk = BackgroundKnowledge::medical_cbk();
        let templates = make_templates(3);
        let mut rng = StdRng::seed_from_u64(13);
        let pd = generate_peer_data(&mut rng, 0, &bk, &templates, 0.1, 24).expect("valid workload");
        assert!(pd.cells <= 24 * 4, "cells {}", pd.cells);
        assert!(
            pd.summary.len() < 64 * 1024,
            "summary bytes {}",
            pd.summary.len()
        );
    }
}
