//! No-op `Serialize` / `Deserialize` derives.
//!
//! The companion `serde` stub blanket-implements both traits for every
//! type, so the derive macros have nothing to generate — they only need
//! to exist so `#[derive(Serialize, Deserialize)]` keeps parsing.

use proc_macro::TokenStream;

/// Expands to nothing: `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
