//! Offline stand-in for `serde`.
//!
//! The workspace annotates data types with `#[derive(Serialize,
//! Deserialize)]` to declare them wire-friendly, but never links a
//! serialization format (the actual codec is the hand-rolled
//! `saintetiq::wire`). With no crates.io access in the build container,
//! this stub keeps those annotations compiling: `Serialize` and
//! `Deserialize` are marker traits blanket-implemented for every type,
//! and the derives (re-exported from the sibling `serde_derive` stub)
//! expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned deserialization marker (blanket-implemented).
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn derives_and_bounds_compile() {
        #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
        struct S {
            a: u32,
            b: String,
        }
        fn assert_bounds<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}
        assert_bounds::<S>();
        assert_bounds::<Vec<f64>>();
    }
}
