//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] / [`BytesMut`] are thin wrappers over `Vec<u8>` (no
//! zero-copy sharing — none of the workspace needs it) and [`Buf`] /
//! [`BufMut`] provide the big-endian cursor methods `saintetiq::wire`
//! uses. Byte order matches the real crate (network order), so encoded
//! summaries are stable if the real dependency is ever restored.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (cheaply cloneable in the real crate; a
/// plain `Vec` here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source (mirror of `bytes::Buf`, big-endian).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// A view of the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor (mirror of `bytes::BufMut`, big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-1234.5678);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), -1234.5678);
        assert_eq!(r.chunk(), b"tail");
        r.advance(4);
        assert!(!r.has_remaining());
    }

    #[test]
    fn big_endian_layout_matches_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[1, 2], "network byte order");
    }
}
