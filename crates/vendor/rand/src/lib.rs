//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the subset of `rand`'s API the workspace actually uses is provided
//! here: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, `StdRng`,
//! and uniform range sampling for the primitive types the simulators
//! draw. The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well distributed, and fully deterministic per seed, which is the only
//! property the experiments rely on (they never compare against the real
//! `rand`'s streams).

#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generators (mirror of `rand::rngs`).

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills the buffer with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds from a `u64` (SplitMix64 expansion, the usual convention).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // Avoid the all-zero state xoshiro cannot leave.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference).
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            for (b, s) in chunk.iter_mut().zip(v) {
                *b = s;
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// A half-open or inclusive range that can be sampled uniformly
/// (the argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of plain % is unacceptable only for
                // cryptography, but this is just as cheap.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (s as i128 + hi) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}
impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty range in gen_range");
        let u = f64::draw(rng);
        s + u * (e - s)
    }
}
/// High-level convenience methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (mirror of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice extensions: random choice and Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude in the spirit of `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.1).abs() < 0.01, "bucket probability {p}");
        }
        let heads = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let p = heads as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "gen_bool(0.3) measured {p}");
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut r = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        use seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "permutation");
        assert_ne!(v, sorted, "almost surely moved");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
