//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, [`Strategy`] with `prop_map`, and
//! the combinators `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, `prop::bool::ANY`, [`any`], [`Just`] and
//! numeric ranges. Cases are generated from a seed derived from the
//! test's path, so failures reproduce exactly; there is no shrinking —
//! the first failing case is reported as-is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator (mirror of `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start);
                self.start + (<$t>::from_le(rand_bits(rng) as $t) % span)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = e.wrapping_sub(s).wrapping_add(1);
                if span == 0 { return <$t>::from_le(rand_bits(rng) as $t); }
                s + (<$t>::from_le(rand_bits(rng) as $t) % span)
            }
        }
    )*};
}

fn rand_bits(rng: &mut StdRng) -> u128 {
    ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128
}

impl_int_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rand_bits(rng) % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy (mirror of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand_bits(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// The whole-domain strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection / sample / bool strategies (mirror of the `prop::` paths).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::BTreeSet;

        /// A `Vec` of values from `element`, with length drawn from
        /// `size` (an exact `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// A `BTreeSet` of values from `element`; duplicate draws are
        /// retried a bounded number of times.
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`btree_set`].
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let want = self.size.pick(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < want && attempts < want * 50 + 100 {
                    attempts += 1;
                    out.insert(self.element.new_value(rng));
                }
                out
            }
        }

        /// Uses the rand import above even when only one collection kind
        /// is instantiated downstream.
        #[allow(dead_code)]
        fn _uses_rng(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform `true` / `false`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn new_value(&self, rng: &mut StdRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

pub use prop::collection;

/// Inclusive-min / exclusive-max collection-size specification.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

#[doc(hidden)]
pub fn __rng_for(test_path: &str) -> StdRng {
    // FNV-1a over the test path: deterministic per test, stable across
    // runs, different between tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runs each contained `fn` as a property test: arguments are drawn from
/// their strategies for `config.cases` rounds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ($($arg,)*) =
                        ( $( $crate::Strategy::new_value(&($strat), &mut __rng), )* );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property (plain `assert!`; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality (plain `assert_eq!`; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality (plain `assert_ne!`; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual glob import (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec(0u64..100, 1..20), y in 5i64..9) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((5..9).contains(&y));
        }

        #[test]
        fn tuples_map_and_select(
            v in (0u16..4, prop::bool::ANY).prop_map(|(a, b)| (a * 2, !b)),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(v.0 % 2 == 0);
            prop_assert!(["a", "b", "c"].contains(&pick));
        }
    }

    proptest! {
        #[test]
        fn default_config_and_sets(s in prop::collection::btree_set(0u16..50, 1..10)) {
            prop_assert!(!s.is_empty() && s.len() < 10);
        }
    }

    #[test]
    fn deterministic_rng_per_path() {
        use rand::RngCore;
        let a = crate::__rng_for("x::y").next_u64();
        let b = crate::__rng_for("x::y").next_u64();
        let c = crate::__rng_for("x::z").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
