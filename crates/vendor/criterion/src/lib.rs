//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with throughput annotations, [`BenchmarkId`] and
//! [`black_box`] — measuring with a fixed-iteration
//! `std::time::Instant` loop and printing one line per benchmark.
//! No statistics, plots or baselines: just enough to keep `cargo bench`
//! building and emitting comparable numbers offline.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (mirror of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label (mirror of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations (with a small
    /// warm-up), recording the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const WARMUP: u64 = 3;
        for _ in 0..WARMUP {
            black_box(f());
        }
        // Calibrate the iteration count so each benchmark takes roughly
        // 100 ms, bounded to keep `cargo bench` snappy offline.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(100).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// The benchmark manager (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the stub auto-calibrates its iteration
    /// count instead of resampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub's measurement window is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        eprintln!("bench {label}: closure never called iter()");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!(", {:.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!(", {:.0} elem/s", e as f64 / per_iter),
        None => String::new(),
    };
    eprintln!(
        "bench {label}: {:.3} µs/iter ({} iters{rate})",
        per_iter * 1e6,
        bencher.iters
    );
}

/// Declares a benchmark group function (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
