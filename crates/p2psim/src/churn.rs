//! Churn: node session schedules.
//!
//! §6.2.1 assumes node lifetimes follow a skewed distribution with mean
//! 3 h and median 1 h (Table 3); §4.3 observes that "the rate of node
//! arrival/departure is very important" compared to data modification.
//! A [`SessionSchedule`] pre-computes the join/leave event stream of every
//! node over a horizon so the protocol simulator can replay it
//! deterministically.

use rand::Rng;

use crate::network::NodeId;
use crate::rng::{exponential, lognormal_mean_median, weibull};
use crate::time::SimTime;

/// Lifetime (session length) distributions.
#[derive(Debug, Clone, Copy)]
pub enum LifetimeDistribution {
    /// Lognormal pinned by mean and median — the paper's Table 3
    /// ("skewed distribution, Mean=3h, Median=1h").
    LogNormalMeanMedian {
        /// Mean session length in seconds.
        mean_s: f64,
        /// Median session length in seconds.
        median_s: f64,
    },
    /// Exponential sessions (memoryless baseline).
    Exponential {
        /// Mean session length in seconds.
        mean_s: f64,
    },
    /// Weibull sessions (heavy tail when `shape < 1`).
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Scale parameter in seconds.
        scale_s: f64,
    },
}

impl LifetimeDistribution {
    /// The paper's Table 3 distribution.
    pub fn paper_default() -> Self {
        Self::LogNormalMeanMedian {
            mean_s: 3.0 * 3600.0,
            median_s: 3600.0,
        }
    }

    /// Draws one session length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let secs = match *self {
            Self::LogNormalMeanMedian { mean_s, median_s } => {
                lognormal_mean_median(rng, mean_s, median_s)
            }
            Self::Exponential { mean_s } => exponential(rng, mean_s),
            Self::Weibull { shape, scale_s } => weibull(rng, shape, scale_s),
        };
        SimTime::from_secs_f64(secs.max(1.0))
    }
}

/// Churn configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Session (up-time) length distribution.
    pub lifetime: LifetimeDistribution,
    /// Mean downtime between sessions, in seconds (exponential).
    pub mean_downtime_s: f64,
    /// Fraction of departures that are *failures* (no goodbye message),
    /// vs graceful leaves. §4.3 treats the two differently.
    pub failure_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            lifetime: LifetimeDistribution::paper_default(),
            mean_downtime_s: 1800.0,
            failure_fraction: 0.3,
        }
    }
}

/// One liveness transition of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// The node connects.
    Join(NodeId),
    /// The node disconnects politely (sends its goodbyes first).
    Leave(NodeId),
    /// The node crashes (no notification to anyone).
    Fail(NodeId),
}

impl SessionEvent {
    /// The node the event concerns.
    pub fn node(&self) -> NodeId {
        match *self {
            SessionEvent::Join(n) | SessionEvent::Leave(n) | SessionEvent::Fail(n) => n,
        }
    }
}

/// A deterministic, time-ordered stream of session events.
#[derive(Debug, Clone, Default)]
pub struct SessionSchedule {
    events: Vec<(SimTime, SessionEvent)>,
}

impl SessionSchedule {
    /// Generates a schedule for `n` nodes over `[0, horizon]`. All nodes
    /// start up (the paper's construction phase assumes a populated
    /// domain); their first departure is drawn from the residual of the
    /// lifetime distribution.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        horizon: SimTime,
        cfg: &ChurnConfig,
        rng: &mut R,
    ) -> Self {
        let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        Self::generate_for(&nodes, horizon, cfg, rng)
    }

    /// Generates a schedule for an explicit node set — the multi-domain
    /// kernel churns partner peers only (summary peers stay up, §4.3's
    /// SP dynamicity being a separate protocol).
    pub fn generate_for<R: Rng + ?Sized>(
        nodes: &[NodeId],
        horizon: SimTime,
        cfg: &ChurnConfig,
        rng: &mut R,
    ) -> Self {
        let mut events: Vec<(SimTime, SessionEvent)> = Vec::new();
        for &node in nodes {
            let mut t = SimTime::ZERO;
            // First session: already in progress at t=0.
            loop {
                let up = cfg.lifetime.sample(rng);
                t += up;
                if t > horizon {
                    break;
                }
                let ev = if rng.gen_bool(cfg.failure_fraction.clamp(0.0, 1.0)) {
                    SessionEvent::Fail(node)
                } else {
                    SessionEvent::Leave(node)
                };
                events.push((t, ev));
                let down = SimTime::from_secs_f64(exponential(rng, cfg.mean_downtime_s));
                t += down;
                if t > horizon {
                    break;
                }
                events.push((t, SessionEvent::Join(node)));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        Self { events }
    }

    /// The ordered event stream.
    pub fn events(&self) -> &[(SimTime, SessionEvent)] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no churn occurs in the horizon.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Average departures (leave + fail) per node per second over the
    /// horizon — the paper's connection/disconnection rate.
    pub fn departure_rate(&self, n: usize, horizon: SimTime) -> f64 {
        if n == 0 || horizon == SimTime::ZERO {
            return 0.0;
        }
        let departures = self
            .events
            .iter()
            .filter(|(_, e)| !matches!(e, SessionEvent::Join(_)))
            .count();
        departures as f64 / (n as f64 * horizon.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schedule_is_time_ordered_and_alternating() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ChurnConfig::default();
        let horizon = SimTime::from_hours(12);
        let s = SessionSchedule::generate(50, horizon, &cfg, &mut rng);
        assert!(!s.is_empty());
        // Ordered.
        for w in s.events().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Per node: strictly alternating depart / join starting with a
        // departure (everyone starts up).
        for i in 0..50u32 {
            let mine: Vec<&SessionEvent> = s
                .events()
                .iter()
                .filter(|(_, e)| e.node() == NodeId(i))
                .map(|(_, e)| e)
                .collect();
            let mut expect_departure = true;
            for e in mine {
                match e {
                    SessionEvent::Join(_) => {
                        assert!(!expect_departure, "join before departure");
                        expect_departure = true;
                    }
                    _ => {
                        assert!(expect_departure, "double departure");
                        expect_departure = false;
                    }
                }
            }
        }
    }

    #[test]
    fn events_respect_horizon() {
        let mut rng = StdRng::seed_from_u64(2);
        let horizon = SimTime::from_hours(6);
        let s = SessionSchedule::generate(100, horizon, &ChurnConfig::default(), &mut rng);
        assert!(s.events().iter().all(|&(t, _)| t <= horizon));
    }

    #[test]
    fn failure_fraction_zero_means_no_failures() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ChurnConfig {
            failure_fraction: 0.0,
            ..Default::default()
        };
        let s = SessionSchedule::generate(80, SimTime::from_hours(24), &cfg, &mut rng);
        assert!(s
            .events()
            .iter()
            .all(|(_, e)| !matches!(e, SessionEvent::Fail(_))));
    }

    #[test]
    fn failure_fraction_one_means_only_failures() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = ChurnConfig {
            failure_fraction: 1.0,
            ..Default::default()
        };
        let s = SessionSchedule::generate(80, SimTime::from_hours(24), &cfg, &mut rng);
        assert!(s
            .events()
            .iter()
            .all(|(_, e)| !matches!(e, SessionEvent::Leave(_))));
        assert!(s
            .events()
            .iter()
            .any(|(_, e)| matches!(e, SessionEvent::Fail(_))));
    }

    #[test]
    fn departure_rate_matches_lifetimes() {
        // With mean lifetime 3h and mean downtime 0.5h, a node cycles
        // every ~3.5h → ~0.29 departures per node-hour.
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ChurnConfig::default();
        let horizon = SimTime::from_hours(48);
        let s = SessionSchedule::generate(200, horizon, &cfg, &mut rng);
        let per_hour = s.departure_rate(200, horizon) * 3600.0;
        assert!(
            (0.15..=0.45).contains(&per_hour),
            "departures/node/hour = {per_hour}"
        );
    }

    #[test]
    fn paper_distribution_sampling() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LifetimeDistribution::paper_default();
        let xs: Vec<f64> = (0..20_000)
            .map(|_| d.sample(&mut rng).as_secs_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        assert!((median - 3600.0).abs() < 250.0, "median {median}");
        assert!((mean - 10800.0).abs() < 900.0, "mean {mean}");
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = ChurnConfig::default();
        let a = SessionSchedule::generate(
            30,
            SimTime::from_hours(10),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        let b = SessionSchedule::generate(
            30,
            SimTime::from_hours(10),
            &cfg,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a.events(), b.events());
    }
}
