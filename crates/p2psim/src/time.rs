//! Simulation clock: microsecond-resolution virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds from fractional seconds (saturating at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Builds from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60 * 1_000_000)
    }

    /// Builds from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000)
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2}h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2}m", s / 60.0)
        } else {
            write!(f, "{s:.3}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(5).0, 5_000);
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3600));
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(4));
        assert_eq!(a - b, SimTime::from_secs(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        let mut c = b;
        c += a;
        assert_eq!(c, SimTime::from_secs(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_mins(3).to_string(), "3.00m");
        assert_eq!(SimTime::from_hours(2).to_string(), "2.00h");
    }
}
