//! Network state over a topology: node liveness, message accounting and
//! the search walks the paper relies on.
//!
//! The paper's costs are counted in **messages** (§6.1), so the network
//! tracks a counter per [`MessageClass`]. Latency matters only for the
//! closest-summary-peer choice during construction (§4.1), so the network
//! exposes link latencies but message delivery scheduling stays in the
//! application's simulator loop.

use std::collections::BTreeMap;

use rand::Rng;

use crate::time::SimTime;
use crate::topology::Graph;

/// A node identifier (index into the topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Classes of protocol messages, for cost accounting (§6.1's update vs
/// query traffic decomposition, and Figure 6/7's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// Domain construction: `sumpeer` broadcasts, `localsum`, `drop`, `find`.
    Construction,
    /// Maintenance `push` messages (freshness flags).
    Push,
    /// Reconciliation token hops.
    Reconciliation,
    /// Query messages sent to summary peers / relevant peers.
    Query,
    /// Query responses.
    QueryResponse,
    /// Inter-domain flooding requests.
    Flood,
    /// Departure notifications (`release`).
    Control,
}

/// Mutable network state: liveness + counters over an immutable topology.
#[derive(Debug, Clone)]
pub struct Network {
    graph: Graph,
    up: Vec<bool>,
    counters: BTreeMap<MessageClass, u64>,
    total_sent: u64,
}

impl Network {
    /// Wraps a topology with every node initially up.
    pub fn new(graph: Graph) -> Self {
        let n = graph.len();
        Self {
            graph,
            up: vec![true; n],
            counters: BTreeMap::new(),
            total_sent: 0,
        }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes (up or down).
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// True when the node is currently connected.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.up[n.index()]
    }

    /// Marks a node connected.
    pub fn bring_up(&mut self, n: NodeId) {
        self.up[n.index()] = true;
    }

    /// Marks a node disconnected.
    pub fn take_down(&mut self, n: NodeId) {
        self.up[n.index()] = false;
    }

    /// Number of nodes currently up.
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&b| b).count()
    }

    /// Live neighbors of a node.
    pub fn live_neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(crate::network::NodeId(n.0))
            .iter()
            .map(|e| e.node)
            .filter(|m| self.is_up(*m))
    }

    /// Latency of the direct link, if adjacent.
    pub fn latency(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.graph.link_latency(a, b)
    }

    /// Counts one sent message of the given class.
    pub fn count_message(&mut self, class: MessageClass) {
        *self.counters.entry(class).or_insert(0) += 1;
        self.total_sent += 1;
    }

    /// Counts `n` messages at once.
    pub fn count_messages(&mut self, class: MessageClass, n: u64) {
        *self.counters.entry(class).or_insert(0) += n;
        self.total_sent += n;
    }

    /// Messages sent in one class.
    pub fn sent(&self, class: MessageClass) -> u64 {
        self.counters.get(&class).copied().unwrap_or(0)
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> &BTreeMap<MessageClass, u64> {
        &self.counters
    }

    /// Resets counters (between experiment phases).
    pub fn reset_counters(&mut self) {
        self.counters.clear();
        self.total_sent = 0;
    }

    /// The set of live nodes within `ttl` hops of `origin` (excluding the
    /// origin), in BFS order — a TTL-limited broadcast's reach. Each BFS
    /// edge traversal is one message if actually flooded; the returned
    /// `(node, hops)` pairs let callers do exact accounting.
    pub fn flood_reach(&self, origin: NodeId, ttl: u32) -> Vec<(NodeId, u32)> {
        let mut seen = vec![false; self.len()];
        seen[origin.index()] = true;
        let mut frontier = vec![origin];
        let mut out = Vec::new();
        for hop in 1..=ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.live_neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        out.push((v, hop));
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// [`Network::flood_reach`] with per-node arrival latency: each
    /// reached node is annotated with the accumulated link latency along
    /// its BFS discovery path — when a latency-aware caller floods at
    /// virtual time `t`, node `v` receives the request at `t + latency`.
    pub fn flood_reach_timed(&self, origin: NodeId, ttl: u32) -> Vec<(NodeId, u32, SimTime)> {
        let mut seen = vec![false; self.len()];
        seen[origin.index()] = true;
        let mut frontier = vec![(origin, SimTime::ZERO)];
        let mut out = Vec::new();
        for hop in 1..=ttl {
            let mut next = Vec::new();
            for &(u, du) in &frontier {
                for e in self.graph.neighbors(u) {
                    let v = e.node;
                    if self.is_up(v) && !seen[v.index()] {
                        seen[v.index()] = true;
                        let dv = du + e.latency;
                        out.push((v, hop, dv));
                        next.push((v, dv));
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// Number of edge messages a TTL flood from `origin` would send
    /// (every live node within reach forwards to all its live neighbors
    /// except where TTL expires — the classic Gnutella cost).
    pub fn flood_message_count(&self, origin: NodeId, ttl: u32) -> u64 {
        // Each node that receives the query with remaining TTL > 0
        // forwards to all live neighbors. The origin sends to all of its
        // neighbors with TTL = ttl.
        if ttl == 0 || !self.is_up(origin) {
            return 0;
        }
        let mut msgs = 0u64;
        let mut seen = vec![false; self.len()];
        seen[origin.index()] = true;
        let mut frontier = vec![origin];
        let mut remaining = ttl;
        while remaining > 0 && !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.live_neighbors(u) {
                    msgs += 1; // every forward is a message, duplicates too
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        next.push(v);
                    }
                }
            }
            frontier = next;
            remaining -= 1;
        }
        msgs
    }

    /// One step of a *random walk* over live neighbors.
    pub fn random_step<R: Rng + ?Sized>(&self, from: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs: Vec<NodeId> = self.live_neighbors(from).collect();
        if nbrs.is_empty() {
            None
        } else {
            Some(nbrs[rng.gen_range(0..nbrs.len())])
        }
    }

    /// One step of a *selective walk* (§4.1, after Adamic et al. \[23\]):
    /// the highest-degree live neighbor not yet visited.
    pub fn selective_step(&self, from: NodeId, visited: &[bool]) -> Option<NodeId> {
        self.live_neighbors(from)
            .filter(|n| !visited[n.index()])
            .max_by_key(|n| self.graph.degree(*n))
    }

    /// Runs a selective walk from `origin` until `stop` returns true or
    /// `max_hops` is exhausted. Returns the visited path (excluding
    /// origin) and whether the stop condition was met. Each hop is one
    /// message; the caller accounts them.
    pub fn selective_walk<F: FnMut(NodeId) -> bool>(
        &self,
        origin: NodeId,
        max_hops: u32,
        mut stop: F,
    ) -> (Vec<NodeId>, bool) {
        let mut visited = vec![false; self.len()];
        visited[origin.index()] = true;
        let mut path = Vec::new();
        let mut cur = origin;
        for _ in 0..max_hops {
            let Some(next) = self.selective_step(cur, &visited) else {
                return (path, false);
            };
            visited[next.index()] = true;
            path.push(next);
            if stop(next) {
                return (path, true);
            }
            cur = next;
        }
        (path, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Graph, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(n: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TopologyConfig {
            nodes: n,
            ..Default::default()
        };
        Network::new(Graph::barabasi_albert(&cfg, &mut rng))
    }

    #[test]
    fn liveness_toggling() {
        let mut n = net(10, 1);
        assert_eq!(n.up_count(), 10);
        n.take_down(NodeId(3));
        assert!(!n.is_up(NodeId(3)));
        assert_eq!(n.up_count(), 9);
        n.bring_up(NodeId(3));
        assert_eq!(n.up_count(), 10);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net(5, 2);
        n.count_message(MessageClass::Push);
        n.count_messages(MessageClass::Query, 10);
        assert_eq!(n.sent(MessageClass::Push), 1);
        assert_eq!(n.sent(MessageClass::Query), 10);
        assert_eq!(n.sent(MessageClass::Flood), 0);
        assert_eq!(n.total_sent(), 11);
        n.reset_counters();
        assert_eq!(n.total_sent(), 0);
    }

    #[test]
    fn flood_reach_respects_ttl_and_liveness() {
        let mut n = Network::new(Graph::ring(10, SimTime::from_millis(1)));
        let reach1 = n.flood_reach(NodeId(0), 1);
        assert_eq!(reach1.len(), 2, "two ring neighbors");
        let reach2 = n.flood_reach(NodeId(0), 2);
        assert_eq!(reach2.len(), 4);
        assert!(reach2.iter().all(|&(_, h)| h <= 2));

        n.take_down(NodeId(1));
        let reach = n.flood_reach(NodeId(0), 3);
        // One side of the ring is cut at node 1.
        assert!(reach.iter().all(|&(v, _)| v != NodeId(1)));
        assert_eq!(reach.len(), 3, "only the other direction: 9, 8, 7");
    }

    #[test]
    fn flood_reach_timed_accumulates_latency() {
        let n = Network::new(Graph::ring(10, SimTime::from_millis(2)));
        let reach = n.flood_reach_timed(NodeId(0), 3);
        assert_eq!(reach.len(), 6);
        for &(v, hops, lat) in &reach {
            assert_eq!(
                lat,
                SimTime::from_millis(2 * hops as u64),
                "node {v:?} at {hops} hops"
            );
        }
        // Same nodes and hop counts as the untimed variant.
        let untimed = n.flood_reach(NodeId(0), 3);
        let plain: Vec<(NodeId, u32)> = reach.iter().map(|&(v, h, _)| (v, h)).collect();
        assert_eq!(plain, untimed);
    }

    #[test]
    fn flood_cost_grows_with_ttl() {
        let n = net(500, 3);
        let c1 = n.flood_message_count(NodeId(0), 1);
        let c2 = n.flood_message_count(NodeId(0), 2);
        let c3 = n.flood_message_count(NodeId(0), 3);
        assert!(c1 < c2 && c2 < c3, "{c1} {c2} {c3}");
        assert_eq!(n.flood_message_count(NodeId(0), 0), 0);
    }

    #[test]
    fn flood_cost_on_star_is_exact() {
        let n = Network::new(Graph::star(6, SimTime::from_millis(1)));
        // From center: 5 messages at hop 1; then each leaf forwards back
        // to the center (duplicate) at hop 2: 5 more.
        assert_eq!(n.flood_message_count(NodeId(0), 1), 5);
        assert_eq!(n.flood_message_count(NodeId(0), 2), 10);
    }

    #[test]
    fn selective_walk_prefers_hubs() {
        // Star: any leaf's best neighbor is the hub.
        let n = Network::new(Graph::star(8, SimTime::from_millis(1)));
        let (path, found) = n.selective_walk(NodeId(3), 5, |v| v == NodeId(0));
        assert!(found);
        assert_eq!(path, vec![NodeId(0)], "first hop reaches the hub");
    }

    #[test]
    fn selective_walk_does_not_revisit() {
        let n = Network::new(Graph::ring(6, SimTime::from_millis(1)));
        let (path, found) = n.selective_walk(NodeId(0), 10, |_| false);
        assert!(!found);
        let mut dedup = path.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), path.len(), "no revisits");
        assert!(path.len() >= 4, "walk should cover most of the ring");
    }

    #[test]
    fn random_step_stays_live() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut n = net(50, 8);
        // Kill most nodes; steps must land on live ones only.
        for i in 10..50 {
            n.take_down(NodeId(i));
        }
        for i in 0..10 {
            if let Some(next) = n.random_step(NodeId(i), &mut rng) {
                assert!(n.is_up(next));
            }
        }
    }

    #[test]
    fn walk_in_dead_region_terminates() {
        let mut n = Network::new(Graph::ring(5, SimTime::from_millis(1)));
        n.take_down(NodeId(1));
        n.take_down(NodeId(4));
        let (path, found) = n.selective_walk(NodeId(0), 10, |_| false);
        assert!(path.is_empty());
        assert!(!found);
    }
}
