//! Sampling distributions for the simulation, built on plain `rand`.
//!
//! The paper's Table 3 requires a *skewed* lifetime distribution with
//! mean 3 hours and median 60 minutes — a lognormal pins both moments
//! exactly: `median = e^μ`, `mean = e^{μ + σ²/2}`, hence
//! `σ = sqrt(2 ln(mean/median))`. Zipf and Pareto cover workload skew;
//! all samplers take any `rand::Rng` so the simulator's seeded generator
//! keeps experiments deterministic.

use rand::Rng;

/// Standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Lognormal with the given `mu`/`sigma` of the underlying normal.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Lognormal parameterized by its mean and median (`mean > median > 0`),
/// the paper's Table 3 style ("skewed distribution, Mean=3h, Median=1h").
pub fn lognormal_mean_median<R: Rng + ?Sized>(rng: &mut R, mean: f64, median: f64) -> f64 {
    let (mu, sigma) = lognormal_params(mean, median);
    lognormal(rng, mu, sigma)
}

/// `(mu, sigma)` of the lognormal with the given mean and median.
pub fn lognormal_params(mean: f64, median: f64) -> (f64, f64) {
    assert!(median > 0.0 && mean > median, "need mean > median > 0");
    let mu = median.ln();
    let sigma = (2.0 * (mean / median).ln()).sqrt();
    (mu, sigma)
}

/// Exponential with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Weibull with shape `k` and scale `lambda` (k < 1 gives the heavy tail
/// often measured for P2P session times).
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    scale * (-u.ln()).powf(1.0 / shape)
}

/// Zipf-distributed rank in `0..n` with exponent `s` (inverse-CDF over
/// precomputed weights would be faster for hot loops; this direct method
/// is O(n) and fine for workload generation).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
    let mut u = rng.gen_range(0.0..h);
    for k in 1..=n {
        u -= (k as f64).powf(-s);
        if u <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn sample_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (mean, sorted[xs.len() / 2])
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let (mean, _) = sample_stats(&xs);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    /// The Table 3 lifetime distribution: mean 3 h, median 1 h.
    #[test]
    fn lognormal_hits_mean_and_median() {
        let mut r = rng();
        let xs: Vec<f64> = (0..60_000)
            .map(|_| lognormal_mean_median(&mut r, 180.0, 60.0))
            .collect();
        let (mean, median) = sample_stats(&xs);
        assert!((median - 60.0).abs() < 3.0, "median {median} (want 60)");
        assert!((mean - 180.0).abs() < 15.0, "mean {mean} (want 180)");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_params_formulae() {
        let (mu, sigma) = lognormal_params(180.0, 60.0);
        assert!((mu - 60f64.ln()).abs() < 1e-12);
        assert!((sigma - (2.0 * 3f64.ln()).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mean > median")]
    fn lognormal_params_rejects_non_skewed() {
        lognormal_params(60.0, 180.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..40_000).map(|_| exponential(&mut r, 5.0)).collect();
        let (mean, median) = sample_stats(&xs);
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
        assert!(
            (median - 5.0 * 2f64.ln().abs()).abs() < 0.2,
            "median {median}"
        );
    }

    #[test]
    fn weibull_heavy_tail() {
        let mut r = rng();
        // Shape 0.5: mean = scale * Γ(3) = 2·scale.
        let xs: Vec<f64> = (0..60_000).map(|_| weibull(&mut r, 0.5, 1.0)).collect();
        let (mean, _) = sample_stats(&xs);
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = rng();
        let n = 50;
        let mut counts = vec![0usize; n];
        for _ in 0..30_000 {
            counts[zipf(&mut r, n, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[49]);
        // Rank 0 under s=1 over n=50: p ≈ 1/H_50 ≈ 0.222.
        let p0 = counts[0] as f64 / 30_000.0;
        assert!((p0 - 0.222).abs() < 0.03, "p0 {p0}");
    }

    #[test]
    fn zipf_single_element() {
        let mut r = rng();
        assert_eq!(zipf(&mut r, 1, 1.2), 0);
    }

    #[test]
    fn determinism_with_same_seed() {
        let a: Vec<f64> = {
            let mut r = rng();
            (0..100).map(|_| lognormal(&mut r, 0.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng();
            (0..100).map(|_| lognormal(&mut r, 0.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
