//! The event queue: a timestamped min-heap with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event carrying an application payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; seq breaks ties FIFO.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules a payload at absolute time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Pops the earliest event (FIFO among equal timestamps).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Any push sequence pops in (time, insertion) order.
            #[test]
            fn pops_sorted_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i);
                }
                let mut popped = Vec::new();
                while let Some((t, i)) = q.pop() {
                    popped.push((t, i));
                }
                prop_assert_eq!(popped.len(), times.len());
                for w in popped.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "time order");
                    if w[0].0 == w[1].0 {
                        prop_assert!(w[0].1 < w[1].1, "FIFO among equals");
                    }
                }
            }

            /// Interleaving pushes and pops never violates ordering w.r.t.
            /// the already-popped prefix.
            #[test]
            fn interleaved_monotone(ops in prop::collection::vec((0u64..1000, prop::bool::ANY), 1..200)) {
                let mut q = EventQueue::new();
                let mut last_popped: Option<SimTime> = None;
                let mut floor = SimTime::ZERO;
                for (t, is_pop) in ops {
                    if is_pop {
                        if let Some((at, _)) = q.pop() {
                            if let Some(prev) = last_popped {
                                prop_assert!(at >= prev);
                            }
                            last_popped = Some(at);
                            floor = at;
                        }
                    } else {
                        // Schedule in the future of the virtual clock,
                        // as the simulator does.
                        q.push(floor + SimTime(t), ());
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10);
        q.push(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(5), 5);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
        assert!(q.pop().is_none());
    }
}
