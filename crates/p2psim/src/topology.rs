//! Topology generation — our BRITE substitute (§6.2.1: "the BRITE
//! universal topology generator to simulate a power law P2P network,
//! with an average degree of 4").
//!
//! BRITE's power-law mode is Barabási–Albert preferential attachment,
//! reimplemented here: nodes arrive one by one and connect `m` edges to
//! existing nodes with probability proportional to degree. `m = 2` gives
//! average degree ≈ 4 (each edge contributes 2 degree). Nodes are placed
//! uniformly on a plane and link latency grows linearly with euclidean
//! distance (BRITE's light-speed delay model), which the construction
//! protocol uses to pick the *closest* summary peer.

use rand::Rng;

use crate::network::NodeId;
use crate::time::SimTime;

/// One undirected edge endpoint with its latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTo {
    /// Neighbor node.
    pub node: NodeId,
    /// One-way link latency.
    pub latency: SimTime,
}

/// An undirected graph with plane positions and per-link latencies.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<EdgeTo>>,
    pos: Vec<(f64, f64)>,
}

/// Topology generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Edges added per arriving node (Barabási–Albert `m`); average
    /// degree converges to `2m`. The paper's setup: `m = 2` → degree 4.
    pub m: usize,
    /// Plane side length, in latency units: two nodes at opposite corners
    /// are `sqrt(2) * side * latency_per_unit` apart.
    pub side: f64,
    /// Latency per plane-distance unit.
    pub latency_per_unit: SimTime,
    /// Minimum link latency (propagation floor).
    pub min_latency: SimTime,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            nodes: 100,
            m: 2,
            side: 100.0,
            // 1 unit ≈ 1 ms across a 100-unit plane: intra-continental RTTs.
            latency_per_unit: SimTime::from_millis(1),
            min_latency: SimTime::from_millis(5),
        }
    }
}

impl Graph {
    /// An empty graph of `n` isolated nodes at the origin.
    pub fn empty(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            pos: vec![(0.0, 0.0); n],
        }
    }

    /// Barabási–Albert preferential attachment (BRITE's power-law mode).
    ///
    /// Starts from a small clique of `m + 1` nodes, then each arriving
    /// node draws `m` distinct targets weighted by current degree.
    pub fn barabasi_albert<R: Rng + ?Sized>(cfg: &TopologyConfig, rng: &mut R) -> Self {
        let n = cfg.nodes;
        let m = cfg.m.max(1);
        let mut g = Graph::empty(n);
        for p in g.pos.iter_mut() {
            *p = (rng.gen_range(0.0..cfg.side), rng.gen_range(0.0..cfg.side));
        }
        if n == 0 {
            return g;
        }
        let seed = (m + 1).min(n);
        // Seed clique.
        for i in 0..seed {
            for j in (i + 1)..seed {
                g.connect(NodeId(i as u32), NodeId(j as u32), cfg);
            }
        }
        // Repeated-endpoint list: preferential attachment by sampling it.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);
        for (i, adjacency) in g.adj.iter().enumerate().take(seed) {
            for _ in 0..adjacency.len() {
                endpoints.push(i as u32);
            }
        }
        for i in seed..n {
            let mut targets: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m.min(i) && guard < 10_000 {
                guard += 1;
                let t = if endpoints.is_empty() {
                    rng.gen_range(0..i as u32)
                } else {
                    endpoints[rng.gen_range(0..endpoints.len())]
                };
                if t != i as u32 && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                g.connect(NodeId(i as u32), NodeId(t), cfg);
                endpoints.push(i as u32);
                endpoints.push(t);
            }
        }
        g
    }

    /// Waxman random topology (BRITE's other classic mode):
    /// `P(u,v) = alpha * exp(-d(u,v) / (beta * L))`.
    pub fn waxman<R: Rng + ?Sized>(
        cfg: &TopologyConfig,
        alpha: f64,
        beta: f64,
        rng: &mut R,
    ) -> Self {
        let n = cfg.nodes;
        let mut g = Graph::empty(n);
        for p in g.pos.iter_mut() {
            *p = (rng.gen_range(0.0..cfg.side), rng.gen_range(0.0..cfg.side));
        }
        let l = cfg.side * std::f64::consts::SQRT_2;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = g.distance(NodeId(i as u32), NodeId(j as u32));
                if rng.gen_bool((alpha * (-d / (beta * l)).exp()).clamp(0.0, 1.0)) {
                    g.connect(NodeId(i as u32), NodeId(j as u32), cfg);
                }
            }
        }
        g
    }

    /// A ring of `n` nodes (tests/debugging).
    pub fn ring(n: usize, latency: SimTime) -> Self {
        let mut g = Graph::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                g.add_edge(NodeId(i as u32), NodeId(j as u32), latency);
            }
        }
        g
    }

    /// A star with node 0 at the center (tests/debugging).
    pub fn star(n: usize, latency: SimTime) -> Self {
        let mut g = Graph::empty(n);
        for i in 1..n {
            g.add_edge(NodeId(0), NodeId(i as u32), latency);
        }
        g
    }

    fn connect(&mut self, a: NodeId, b: NodeId, cfg: &TopologyConfig) {
        let d = self.distance(a, b);
        let lat = SimTime(
            cfg.min_latency
                .0
                .max((d * cfg.latency_per_unit.0 as f64) as u64),
        );
        self.add_edge(a, b, lat);
    }

    /// Adds an undirected edge (no-op when it already exists).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, latency: SimTime) {
        if a == b || self.adj[a.0 as usize].iter().any(|e| e.node == b) {
            return;
        }
        self.adj[a.0 as usize].push(EdgeTo { node: b, latency });
        self.adj[b.0 as usize].push(EdgeTo { node: a, latency });
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, n: NodeId) -> &[EdgeTo] {
        &self.adj[n.0 as usize]
    }

    /// Degree of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0 as usize].len()
    }

    /// Plane position of a node.
    pub fn position(&self, n: NodeId) -> (f64, f64) {
        self.pos[n.0 as usize]
    }

    /// Euclidean distance between two nodes on the plane.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Latency of the direct link `a → b` (None when not adjacent).
    pub fn link_latency(&self, a: NodeId, b: NodeId) -> Option<SimTime> {
        self.adj[a.0 as usize]
            .iter()
            .find(|e| e.node == b)
            .map(|e| e.latency)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Average degree.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.adj.len() as f64
    }

    /// True when every node reaches every other (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(i) = stack.pop() {
            for e in &self.adj[i] {
                let j = e.node.0 as usize;
                if !seen[j] {
                    seen[j] = true;
                    visited += 1;
                    stack.push(j);
                }
            }
        }
        visited == self.adj.len()
    }

    /// Degree histogram: `hist[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for a in &self.adj {
            hist[a.len()] += 1;
        }
        hist
    }

    /// Least-squares slope of `log(count)` vs `log(degree)` — a crude
    /// power-law exponent estimate (should be clearly negative for BA).
    pub fn power_law_slope(&self) -> f64 {
        let hist = self.degree_histogram();
        let pts: Vec<(f64, f64)> = hist
            .iter()
            .enumerate()
            .filter(|&(d, &c)| d > 0 && c > 0)
            .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        if pts.len() < 2 {
            return 0.0;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(n: usize) -> TopologyConfig {
        TopologyConfig {
            nodes: n,
            ..Default::default()
        }
    }

    #[test]
    fn ba_average_degree_is_about_2m() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::barabasi_albert(&cfg(1000), &mut rng);
        let avg = g.average_degree();
        // Paper setup: m=2 → average degree ≈ 4.
        assert!((3.6..=4.4).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn ba_is_connected_and_power_law() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Graph::barabasi_albert(&cfg(2000), &mut rng);
        assert!(g.is_connected());
        let slope = g.power_law_slope();
        assert!(
            slope < -1.0,
            "expected heavy-tailed degree dist, slope {slope}"
        );
        // Hubs exist: max degree far above the average.
        let max_deg = g.degree_histogram().len() - 1;
        assert!(max_deg > 20, "max degree {max_deg}");
    }

    #[test]
    fn ba_tiny_networks() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [0usize, 1, 2, 3, 5] {
            let g = Graph::barabasi_albert(&cfg(n), &mut rng);
            assert_eq!(g.len(), n);
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn latencies_respect_floor_and_distance() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = cfg(200);
        let g = Graph::barabasi_albert(&c, &mut rng);
        for i in 0..g.len() {
            for e in g.neighbors(NodeId(i as u32)) {
                assert!(e.latency >= c.min_latency);
                // Symmetric.
                assert_eq!(g.link_latency(e.node, NodeId(i as u32)), Some(e.latency));
            }
        }
    }

    #[test]
    fn waxman_generates_some_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::waxman(&cfg(150), 0.4, 0.2, &mut rng);
        assert!(g.edge_count() > 50, "edges {}", g.edge_count());
    }

    #[test]
    fn ring_and_star_shapes() {
        let ring = Graph::ring(10, SimTime::from_millis(1));
        assert_eq!(ring.edge_count(), 10);
        assert!(ring.is_connected());
        assert!(ring.degree_histogram()[2] == 10);

        let star = Graph::star(10, SimTime::from_millis(1));
        assert_eq!(star.edge_count(), 9);
        assert_eq!(star.degree(NodeId(0)), 9);
        assert!(star.is_connected());
    }

    #[test]
    fn add_edge_dedupes_and_rejects_self_loop() {
        let mut g = Graph::empty(3);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(1), NodeId(0), SimTime::from_millis(9));
        g.add_edge(NodeId(2), NodeId(2), SimTime::from_millis(1));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
        assert_eq!(
            g.link_latency(NodeId(0), NodeId(1)),
            Some(SimTime::from_millis(1))
        );
        assert_eq!(g.link_latency(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::empty(4);
        g.add_edge(NodeId(0), NodeId(1), SimTime::from_millis(1));
        g.add_edge(NodeId(2), NodeId(3), SimTime::from_millis(1));
        assert!(!g.is_connected());
    }

    #[test]
    fn determinism_per_seed() {
        let a = Graph::barabasi_albert(&cfg(300), &mut StdRng::seed_from_u64(9));
        let b = Graph::barabasi_albert(&cfg(300), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.edge_count(), b.edge_count());
        for i in 0..a.len() {
            assert_eq!(a.neighbors(NodeId(i as u32)), b.neighbors(NodeId(i as u32)));
        }
    }
}
