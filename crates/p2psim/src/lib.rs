#![warn(missing_docs)]

//! Discrete-event P2P network simulator — the reproduction's substitute
//! for SimJava \[10\] and the BRITE topology generator \[14\] used by the
//! paper's evaluation (§6.2.1).
//!
//! * [`time`] — microsecond simulation clock;
//! * [`event`] / [`sim`] — a deterministic discrete-event core: a
//!   timestamped event queue with FIFO tie-breaking and a seeded RNG, so
//!   every experiment is reproducible from a `--seed`;
//! * [`rng`] — the distributions the paper's setup needs (skewed lognormal
//!   lifetimes with mean 3 h / median 1 h, exponential, Weibull, Zipf),
//!   implemented on plain `rand`;
//! * [`topology`] — BRITE-style generators: Barabási–Albert preferential
//!   attachment ("power law P2P network, with an average degree of 4"),
//!   Waxman, plus regular test graphs; nodes live on a plane and link
//!   latency grows with euclidean distance;
//! * [`churn`] — session schedules: node join/leave streams drawn from a
//!   lifetime distribution;
//! * [`network`] — node liveness, latency lookup, TTL flooding, random
//!   and *selective* walks (§4.1 cites Adamic's highest-degree-neighbor
//!   walk \[23\]), and per-class message counters — the paper's cost unit.

pub mod churn;
pub mod event;
pub mod network;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use churn::{ChurnConfig, LifetimeDistribution, SessionEvent, SessionSchedule};
pub use network::{MessageClass, Network, NodeId};
pub use sim::Simulator;
pub use time::SimTime;
pub use topology::{Graph, TopologyConfig};
