//! Lightweight measurement helpers for experiments: counters, ratio
//! accumulators and bucketed time series.

use crate::time::SimTime;

/// An online mean/min/max accumulator for scalar observations.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A success/total ratio counter (hit rates, stale-answer fractions...).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ratio {
    /// Numerator.
    pub hits: u64,
    /// Denominator.
    pub total: u64,
}

impl Ratio {
    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Adds counts in bulk.
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// The ratio (0 when empty).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// A time series bucketed into fixed windows, for rate plots.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimTime,
    buckets: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    pub fn new(bucket: SimTime) -> Self {
        assert!(bucket.0 > 0, "bucket width must be positive");
        Self {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Adds `value` at time `t`.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = (t.0 / self.bucket.0) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// The bucketed values.
    pub fn buckets(&self) -> &[f64] {
        &self.buckets
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), None);
        for x in [1.0, 2.0, 3.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn ratio_accounting() {
        let mut r = Ratio::default();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
        r.add(7, 7);
        assert_eq!(r.hits, 9);
        assert_eq!(r.total, 10);
    }

    #[test]
    fn time_series_bucketing() {
        let mut ts = TimeSeries::new(SimTime::from_secs(10));
        ts.add(SimTime::from_secs(1), 1.0);
        ts.add(SimTime::from_secs(9), 1.0);
        ts.add(SimTime::from_secs(10), 5.0);
        ts.add(SimTime::from_secs(35), 2.0);
        assert_eq!(ts.buckets(), &[2.0, 5.0, 0.0, 2.0]);
        assert_eq!(ts.total(), 9.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        TimeSeries::new(SimTime::ZERO);
    }
}
