//! The simulator core: virtual clock + event queue + seeded RNG.
//!
//! The application (the `summary-p2p` crate) defines its own event
//! payload type and drives the loop:
//!
//! ```
//! use p2psim::{Simulator, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::<Ev>::new(42);
//! sim.schedule_in(SimTime::from_secs(1), Ev::Ping(7));
//! while let Some((now, ev)) = sim.next_event() {
//!     match ev { Ev::Ping(n) => assert_eq!((now, n), (SimTime::from_secs(1), 7)) }
//! }
//! assert_eq!(sim.now(), SimTime::from_secs(1));
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::EventQueue;
use crate::time::SimTime;

/// A deterministic discrete-event simulator over payload type `E`.
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    rng: StdRng,
    processed: u64,
    /// Optional hard stop: events after this time are dropped on pop.
    horizon: Option<SimTime>,
}

impl<E> Simulator<E> {
    /// Creates a simulator seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            processed: 0,
            horizon: None,
        }
    }

    /// Sets a simulation horizon; events scheduled past it are discarded
    /// when reached.
    pub fn set_horizon(&mut self, end: SimTime) {
        self.horizon = Some(end);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The seeded RNG (all stochastic decisions must draw from it).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a payload at an absolute time (clamped to now if in the
    /// past — zero-latency self messages are legal).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        self.queue.push(at, payload);
    }

    /// Schedules a payload after a delay.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.queue.push(self.now + delay, payload);
    }

    /// Timestamp of the next pending event, if any (ignores the horizon).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event only if it is due at or before `t` (and within
    /// the horizon), advancing the clock. Lets a caller interleave its own
    /// probes with event processing at a chosen virtual time.
    pub fn next_event_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        let due = self.peek_time()?;
        if due > t {
            return None;
        }
        self.next_event()
    }

    /// Advances the clock to `t` without processing events (no-op if `t`
    /// is in the past). Used after draining events ≤ `t` so probes read a
    /// consistent "now".
    pub fn fast_forward(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Pops the next event, advancing the clock. Returns `None` when the
    /// queue is empty or the horizon has been crossed.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (at, payload) = self.queue.pop()?;
        if let Some(h) = self.horizon {
            if at > h {
                // Horizon reached: the simulation is over; drop the rest.
                self.now = h;
                return None;
            }
        }
        debug_assert!(at >= self.now, "time must not run backwards");
        self.now = at;
        self.processed += 1;
        Some((at, payload))
    }

    /// Runs the whole simulation through a handler; the handler may
    /// schedule further events through the `&mut Simulator` it receives.
    pub fn run<F: FnMut(&mut Simulator<E>, SimTime, E)>(&mut self, mut handler: F) {
        while let Some((t, ev)) = self.next_event() {
            handler(self, t, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut sim = Simulator::<Ev>::new(1);
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(2));
        sim.schedule_at(SimTime::from_secs(2), Ev::Tick(1));
        let mut times = Vec::new();
        while let Some((t, _)) = sim.next_event() {
            times.push(t);
        }
        assert_eq!(times, vec![SimTime::from_secs(2), SimTime::from_secs(5)]);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulator::<Ev>::new(1);
        sim.schedule_at(SimTime::from_secs(10), Ev::Tick(0));
        let (_, _) = sim.next_event().unwrap();
        sim.schedule_in(SimTime::from_secs(5), Ev::Tick(1));
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim = Simulator::<Ev>::new(1);
        sim.schedule_at(SimTime::from_secs(10), Ev::Tick(0));
        sim.next_event().unwrap();
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(1)); // in the past
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(10), "clamped");
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut sim = Simulator::<Ev>::new(1);
        sim.set_horizon(SimTime::from_secs(100));
        sim.schedule_at(SimTime::from_secs(50), Ev::Tick(0));
        sim.schedule_at(SimTime::from_secs(150), Ev::Tick(1));
        let mut seen = 0;
        while sim.next_event().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 1);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn run_loop_with_cascading_events() {
        let mut sim = Simulator::<Ev>::new(1);
        sim.schedule_at(SimTime::from_secs(1), Ev::Tick(0));
        let mut count = 0u32;
        sim.run(|s, _, Ev::Tick(n)| {
            count += 1;
            if n < 9 {
                s.schedule_in(SimTime::from_secs(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut sim = Simulator::<Ev>::new(seed);
            (0..10).map(|_| sim.rng().gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
