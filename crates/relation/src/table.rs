//! In-memory tables with a change feed.
//!
//! The paper's summarizer consumes database changes in *push mode*
//! (§4.2.1): the DBMS notifies the summarization service of every insert /
//! delete / update so the local summary stays incrementally maintained.
//! [`Table`] keeps a bounded change log ([`TableChange`]) that consumers
//! drain; the paper's modification-rate observations are computed from it.

use std::collections::BTreeMap;

use crate::error::RelationError;
use crate::schema::Schema;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// What happened to a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeKind {
    /// The tuple was inserted.
    Insert,
    /// The tuple was deleted; carries the old values so a summarizer can
    /// retract the matching cells.
    Delete {
        /// Before-image of the deleted tuple.
        old: Vec<Value>,
    },
    /// The tuple was updated in place; carries the old values.
    Update {
        /// Before-image of the updated tuple.
        old: Vec<Value>,
    },
}

/// One entry of the change feed.
#[derive(Debug, Clone, PartialEq)]
pub struct TableChange {
    /// Which tuple changed.
    pub id: TupleId,
    /// Kind of change (with before-images where applicable).
    pub kind: ChangeKind,
    /// Table revision after the change (1-based, strictly increasing).
    pub revision: u64,
}

/// An in-memory relation instance.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: BTreeMap<TupleId, Vec<Value>>,
    next_id: u64,
    revision: u64,
    /// Un-drained changes, oldest first.
    pending: Vec<TableChange>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: BTreeMap::new(),
            next_id: 1,
            revision: 0,
            pending: Vec::new(),
        }
    }

    /// The paper's Table 1 instance: three patients.
    pub fn patient_table1() -> Self {
        let mut t = Self::new(Schema::patient());
        t.insert(vec![
            Value::Int(15),
            Value::text("female"),
            Value::Float(17.0),
            Value::text("anorexia"),
        ])
        .expect("static row");
        t.insert(vec![
            Value::Int(20),
            Value::text("male"),
            Value::Float(20.0),
            Value::text("malaria"),
        ])
        .expect("static row");
        t.insert(vec![
            Value::Int(18),
            Value::text("female"),
            Value::Float(16.5),
            Value::text("anorexia"),
        ])
        .expect("static row");
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Current revision (increments on every successful mutation).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Inserts a row, returning its id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId, RelationError> {
        self.schema.check_row(&values)?;
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.rows.insert(id, values);
        self.revision += 1;
        self.pending.push(TableChange {
            id,
            kind: ChangeKind::Insert,
            revision: self.revision,
        });
        Ok(id)
    }

    /// Deletes a tuple by id.
    pub fn delete(&mut self, id: TupleId) -> Result<(), RelationError> {
        let old = self
            .rows
            .remove(&id)
            .ok_or(RelationError::UnknownTuple(id.0))?;
        self.revision += 1;
        self.pending.push(TableChange {
            id,
            kind: ChangeKind::Delete { old },
            revision: self.revision,
        });
        Ok(())
    }

    /// Replaces a tuple's values.
    pub fn update(&mut self, id: TupleId, values: Vec<Value>) -> Result<(), RelationError> {
        self.schema.check_row(&values)?;
        let slot = self
            .rows
            .get_mut(&id)
            .ok_or(RelationError::UnknownTuple(id.0))?;
        let old = std::mem::replace(slot, values);
        self.revision += 1;
        self.pending.push(TableChange {
            id,
            kind: ChangeKind::Update { old },
            revision: self.revision,
        });
        Ok(())
    }

    /// A tuple by id.
    pub fn get(&self, id: TupleId) -> Option<Tuple> {
        self.rows.get(&id).map(|v| Tuple {
            id,
            values: v.clone(),
        })
    }

    /// Iterates over live tuples in id order without cloning values.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[Value])> + '_ {
        self.rows.iter().map(|(&id, v)| (id, v.as_slice()))
    }

    /// Materializes all live tuples (id order).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.rows
            .iter()
            .map(|(&id, v)| Tuple {
                id,
                values: v.clone(),
            })
            .collect()
    }

    /// Drains the change feed (oldest first). The summarizer calls this on
    /// its push-mode notifications.
    pub fn drain_changes(&mut self) -> Vec<TableChange> {
        std::mem::take(&mut self.pending)
    }

    /// Number of un-drained changes.
    pub fn pending_changes(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contents() {
        let t = Table::patient_table1();
        assert_eq!(t.len(), 3);
        let rows = t.tuples();
        assert_eq!(rows[0].values[0], Value::Int(15));
        assert_eq!(rows[1].values[3], Value::text("malaria"));
        assert_eq!(rows[2].values[2], Value::Float(16.5));
    }

    #[test]
    fn insert_assigns_increasing_ids_and_revisions() {
        let mut t = Table::new(Schema::patient());
        let a = t
            .insert(vec![
                Value::Int(1),
                Value::text("f"),
                Value::Float(20.0),
                Value::text("x"),
            ])
            .unwrap();
        let b = t
            .insert(vec![
                Value::Int(2),
                Value::text("m"),
                Value::Float(21.0),
                Value::text("y"),
            ])
            .unwrap();
        assert!(b > a);
        assert_eq!(t.revision(), 2);
    }

    #[test]
    fn delete_and_update_produce_before_images() {
        let mut t = Table::patient_table1();
        t.drain_changes();
        let id = TupleId(1);
        t.update(
            id,
            vec![
                Value::Int(16),
                Value::text("female"),
                Value::Float(18.0),
                Value::text("anorexia"),
            ],
        )
        .unwrap();
        t.delete(TupleId(2)).unwrap();
        let changes = t.drain_changes();
        assert_eq!(changes.len(), 2);
        match &changes[0].kind {
            ChangeKind::Update { old } => assert_eq!(old[0], Value::Int(15)),
            other => panic!("expected update, got {other:?}"),
        }
        match &changes[1].kind {
            ChangeKind::Delete { old } => assert_eq!(old[3], Value::text("malaria")),
            other => panic!("expected delete, got {other:?}"),
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.pending_changes(), 0);
    }

    #[test]
    fn unknown_tuple_errors() {
        let mut t = Table::new(Schema::patient());
        assert!(matches!(
            t.delete(TupleId(9)),
            Err(RelationError::UnknownTuple(9))
        ));
        assert!(t
            .update(
                TupleId(9),
                vec![
                    Value::Int(1),
                    Value::text("f"),
                    Value::Float(1.0),
                    Value::text("d")
                ]
            )
            .is_err());
        assert!(t.get(TupleId(9)).is_none());
    }

    #[test]
    fn bad_rows_do_not_mutate() {
        let mut t = Table::new(Schema::patient());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert_eq!(t.revision(), 0);
        assert_eq!(t.pending_changes(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_matches_tuples() {
        let t = Table::patient_table1();
        let via_iter: Vec<TupleId> = t.iter().map(|(id, _)| id).collect();
        let via_tuples: Vec<TupleId> = t.tuples().into_iter().map(|tp| tp.id).collect();
        assert_eq!(via_iter, via_tuples);
    }
}
