//! Typed database values.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::RelationError;

/// A single attribute value.
///
/// Text values are reference-counted so that cloning a tuple (which happens
/// on every mapping pass) does not copy string payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned text.
    Text(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// SQL-style NULL.
    Null,
}

impl Value {
    /// Human-readable type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Text(_) => "text",
            Value::Bool(_) => "bool",
            Value::Null => "null",
        }
    }

    /// Builds a text value.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Numeric view: ints and floats coerce to `f64`, everything else is
    /// `None`. This is the view the mapping service uses for linguistic
    /// variables.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Three-valued comparison for predicate evaluation. Numeric types
    /// compare across `Int`/`Float`; text compares lexicographically;
    /// NULL compares with nothing (returns `Err`), matching SQL's
    /// "unknown" semantics at the boundary we need.
    pub fn compare(&self, other: &Value) -> Result<std::cmp::Ordering, RelationError> {
        let err = || RelationError::IncomparableValues {
            left: self.type_name(),
            right: other.type_name(),
        };
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).ok_or_else(err),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b).ok_or_else(err),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)).ok_or_else(err),
            (Value::Text(a), Value::Text(b)) => Ok(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            _ => Err(err()),
        }
    }

    /// Equality under the same coercions as [`Value::compare`]; NULL is
    /// never equal to anything (including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other)
            .map(|o| o == std::cmp::Ordering::Equal)
            .unwrap_or(false)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::text("x").as_f64(), None);
    }

    #[test]
    fn text_comparison() {
        assert_eq!(
            Value::text("abc").compare(&Value::text("abd")).unwrap(),
            Ordering::Less
        );
        assert!(Value::text("a").sql_eq(&Value::text("a")));
    }

    #[test]
    fn null_is_incomparable() {
        assert!(Value::Null.compare(&Value::Int(1)).is_err());
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn mixed_types_incomparable() {
        let err = Value::Int(1).compare(&Value::text("1")).unwrap_err();
        assert!(matches!(err, RelationError::IncomparableValues { .. }));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn clone_shares_text_payload() {
        let v = Value::text("shared");
        let w = v.clone();
        if let (Value::Text(a), Value::Text(b)) = (&v, &w) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected text values");
        }
    }
}
