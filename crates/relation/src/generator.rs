//! Synthetic dataset generators.
//!
//! The paper evaluates on synthetic workloads ("each query is matched by
//! 10 % of the total number of peers", Table 3). To realize that, the
//! scenario layer needs *controllable* peer databases: a designated subset
//! of peers must hold tuples matching a query template while the rest must
//! not. The discriminating attribute is `disease` (crisp categorical), so
//! match/avoid generation is exact, not probabilistic.

use rand::Rng;

use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Distribution parameters for a synthetic Patient population.
#[derive(Debug, Clone)]
pub struct PatientDistributions {
    /// Mean and std-dev of the age normal distribution.
    pub age: (f64, f64),
    /// Age clamp range.
    pub age_range: (f64, f64),
    /// Mean and std-dev of the BMI normal distribution.
    pub bmi: (f64, f64),
    /// BMI clamp range.
    pub bmi_range: (f64, f64),
    /// Probability that a patient is female.
    pub female_prob: f64,
    /// Disease names with relative weights (need not sum to 1).
    pub diseases: Vec<(String, f64)>,
}

impl Default for PatientDistributions {
    fn default() -> Self {
        Self {
            age: (45.0, 22.0),
            age_range: (0.0, 100.0),
            bmi: (23.0, 4.5),
            bmi_range: (12.0, 45.0),
            female_prob: 0.5,
            diseases: [
                ("malaria", 2.0),
                ("tuberculosis", 1.0),
                ("influenza", 3.0),
                ("anorexia", 1.0),
                ("bulimia", 0.5),
                ("diabetes", 2.0),
                ("hypertension", 2.5),
                ("asthma", 1.5),
            ]
            .into_iter()
            .map(|(n, w)| (n.to_string(), w))
            .collect(),
        }
    }
}

/// The tuple profile a query template selects on. `None` fields are
/// unconstrained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchTarget {
    /// Required sex value.
    pub sex: Option<String>,
    /// Required disease value.
    pub disease: Option<String>,
    /// Required age interval (inclusive).
    pub age: Option<(f64, f64)>,
    /// Required BMI interval (inclusive).
    pub bmi: Option<(f64, f64)>,
}

impl MatchTarget {
    /// True when a patient row (age, sex, bmi, disease) satisfies the target.
    pub fn admits(&self, row: &[Value]) -> bool {
        let age = row[0].as_f64().unwrap_or(f64::NAN);
        let sex = row[1].as_str().unwrap_or("");
        let bmi = row[2].as_f64().unwrap_or(f64::NAN);
        let disease = row[3].as_str().unwrap_or("");
        if let Some(s) = &self.sex {
            if s != sex {
                return false;
            }
        }
        if let Some(d) = &self.disease {
            if d != disease {
                return false;
            }
        }
        if let Some((lo, hi)) = self.age {
            if !(age >= lo && age <= hi) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.bmi {
            if !(bmi >= lo && bmi <= hi) {
                return false;
            }
        }
        true
    }
}

/// Samples a standard normal via Box–Muller (keeps us inside the approved
/// `rand` dependency; `rand_distr` is intentionally not used).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a clamped normal.
fn clamped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64, range: (f64, f64)) -> f64 {
    (mean + std * standard_normal(rng)).clamp(range.0, range.1)
}

/// Weighted choice over `(name, weight)` pairs.
fn weighted_choice<'a, R: Rng + ?Sized>(rng: &mut R, items: &'a [(String, f64)]) -> &'a str {
    let total: f64 = items.iter().map(|(_, w)| w.max(0.0)).sum();
    debug_assert!(total > 0.0, "weights must be positive");
    let mut pick = rng.gen_range(0.0..total);
    for (name, w) in items {
        pick -= w.max(0.0);
        if pick <= 0.0 {
            return name;
        }
    }
    &items[items.len() - 1].0
}

/// Generates one background patient row from the distributions.
pub fn random_patient<R: Rng + ?Sized>(rng: &mut R, dist: &PatientDistributions) -> Vec<Value> {
    let age = clamped_normal(rng, dist.age.0, dist.age.1, dist.age_range).round();
    let sex = if rng.gen_bool(dist.female_prob.clamp(0.0, 1.0)) {
        "female"
    } else {
        "male"
    };
    let bmi = clamped_normal(rng, dist.bmi.0, dist.bmi.1, dist.bmi_range);
    let disease = weighted_choice(rng, &dist.diseases);
    vec![
        Value::Int(age as i64),
        Value::text(sex),
        Value::Float((bmi * 10.0).round() / 10.0),
        Value::text(disease),
    ]
}

/// Generates a patient row guaranteed to satisfy `target`; unconstrained
/// attributes come from `dist`.
pub fn matching_patient<R: Rng + ?Sized>(
    rng: &mut R,
    dist: &PatientDistributions,
    target: &MatchTarget,
) -> Vec<Value> {
    let (age_lo, age_hi) = target.age.unwrap_or(dist.age_range);
    let age = rng.gen_range(age_lo..=age_hi).round();
    let sex = match &target.sex {
        Some(s) => s.clone(),
        None => {
            if rng.gen_bool(dist.female_prob) {
                "female".into()
            } else {
                "male".into()
            }
        }
    };
    let (bmi_lo, bmi_hi) = target.bmi.unwrap_or(dist.bmi_range);
    let bmi = rng.gen_range(bmi_lo..=bmi_hi);
    let disease = match &target.disease {
        Some(d) => d.clone(),
        None => weighted_choice(rng, &dist.diseases).to_string(),
    };
    vec![
        Value::Int(age as i64),
        Value::text(sex),
        Value::Float((bmi * 10.0).round() / 10.0),
        Value::text(disease),
    ]
}

/// Generates a patient row guaranteed to *not* satisfy `target`.
///
/// The target must constrain at least one attribute. When a disease is
/// constrained, avoidance simply excludes it from the pool (crisp).
/// Otherwise the first constrained attribute is forced outside its
/// interval / value.
pub fn avoiding_patient<R: Rng + ?Sized>(
    rng: &mut R,
    dist: &PatientDistributions,
    target: &MatchTarget,
) -> Vec<Value> {
    let mut row = random_patient(rng, dist);
    if let Some(d) = &target.disease {
        let pool: Vec<(String, f64)> = dist
            .diseases
            .iter()
            .filter(|(n, _)| n != d)
            .cloned()
            .collect();
        assert!(
            !pool.is_empty(),
            "cannot avoid the only disease in the pool"
        );
        row[3] = Value::text(weighted_choice(rng, &pool));
        return row;
    }
    if let Some(s) = &target.sex {
        row[1] = Value::text(if s == "female" { "male" } else { "female" });
        return row;
    }
    if let Some((lo, hi)) = target.age {
        // Ages are integers, so avoidance works on integer bands that
        // cannot round back into the target interval.
        let (dlo, dhi) = (dist.age_range.0 as i64, dist.age_range.1 as i64);
        let below_hi = (lo.ceil() as i64) - 1;
        let above_lo = (hi.floor() as i64) + 1;
        let below = below_hi >= dlo;
        let above = above_lo <= dhi;
        assert!(below || above, "age target covers the whole domain");
        let age = if below && (!above || rng.gen_bool(0.5)) {
            rng.gen_range(dlo..=below_hi)
        } else {
            rng.gen_range(above_lo..=dhi)
        };
        row[0] = Value::Int(age);
        return row;
    }
    if let Some((lo, hi)) = target.bmi {
        // BMIs are stored with one decimal, so keep a 0.1 guard band
        // around the target to survive rounding.
        let (dlo, dhi) = dist.bmi_range;
        let below = lo - 0.1 > dlo;
        let above = hi + 0.1 < dhi;
        assert!(below || above, "bmi target covers the whole domain");
        let bmi = if below && (!above || rng.gen_bool(0.5)) {
            rng.gen_range(dlo..(lo - 0.1))
        } else {
            rng.gen_range((hi + 0.2)..=dhi)
        };
        row[2] = Value::Float((bmi * 10.0).round() / 10.0);
        return row;
    }
    panic!("avoiding_patient needs a constrained target");
}

/// Builds a full peer database: `n` rows, of which `guaranteed_matches`
/// satisfy `target` and the rest are guaranteed misses.
pub fn patient_table<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    dist: &PatientDistributions,
    target: &MatchTarget,
    guaranteed_matches: usize,
) -> Table {
    let mut t = Table::new(Schema::patient());
    let hits = guaranteed_matches.min(n);
    let unconstrained = *target == MatchTarget::default();
    for _ in 0..hits {
        t.insert(matching_patient(rng, dist, target))
            .expect("generated row conforms");
    }
    for _ in hits..n {
        // An unconstrained target admits every row, so "avoiding" it is
        // impossible — background rows are then simply random.
        let row = if unconstrained {
            random_patient(rng, dist)
        } else {
            avoiding_patient(rng, dist, target)
        };
        t.insert(row).expect("generated row conforms");
    }
    t.drain_changes(); // construction is not "modification"
    t
}

/// Generic numeric table for synthetic BKs: `arity` float attributes
/// uniform over `range`. Used by benchmarks that sweep grid granularity.
pub fn numeric_table<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    arity: usize,
    range: (f64, f64),
) -> Table {
    let attrs = (0..arity)
        .map(|i| crate::schema::Attribute::new(format!("attr{i}"), crate::schema::AttrType::Float))
        .collect();
    let schema = Schema::new(attrs).expect("unique generated names");
    let mut t = Table::new(schema);
    for _ in 0..n {
        let row = (0..arity)
            .map(|_| Value::Float(rng.gen_range(range.0..range.1)))
            .collect();
        t.insert(row).expect("generated row conforms");
    }
    t.drain_changes();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_patients_are_valid_rows() {
        let mut r = rng();
        let dist = PatientDistributions::default();
        let schema = Schema::patient();
        for _ in 0..200 {
            let row = random_patient(&mut r, &dist);
            schema.check_row(&row).unwrap();
            let age = row[0].as_f64().unwrap();
            assert!((0.0..=100.0).contains(&age));
            let bmi = row[2].as_f64().unwrap();
            assert!((12.0..=45.0).contains(&bmi));
        }
    }

    #[test]
    fn matching_rows_always_match() {
        let mut r = rng();
        let dist = PatientDistributions::default();
        let target = MatchTarget {
            sex: Some("female".into()),
            disease: Some("anorexia".into()),
            bmi: Some((12.0, 19.0)),
            age: None,
        };
        for _ in 0..200 {
            let row = matching_patient(&mut r, &dist, &target);
            assert!(target.admits(&row), "row {row:?}");
        }
    }

    #[test]
    fn avoiding_rows_never_match() {
        let mut r = rng();
        let dist = PatientDistributions::default();
        for target in [
            MatchTarget {
                disease: Some("malaria".into()),
                ..Default::default()
            },
            MatchTarget {
                sex: Some("female".into()),
                ..Default::default()
            },
            MatchTarget {
                age: Some((20.0, 40.0)),
                ..Default::default()
            },
            MatchTarget {
                bmi: Some((18.0, 25.0)),
                ..Default::default()
            },
        ] {
            for _ in 0..200 {
                let row = avoiding_patient(&mut r, &dist, &target);
                assert!(!target.admits(&row), "target {target:?} admitted {row:?}");
            }
        }
    }

    #[test]
    fn patient_table_split() {
        let mut r = rng();
        let dist = PatientDistributions::default();
        let target = MatchTarget {
            disease: Some("malaria".into()),
            ..Default::default()
        };
        let t = patient_table(&mut r, 50, &dist, &target, 10);
        assert_eq!(t.len(), 50);
        let matches = t.iter().filter(|(_, row)| target.admits(row)).count();
        assert_eq!(matches, 10);
        assert_eq!(t.pending_changes(), 0, "construction drains its changes");
    }

    #[test]
    fn age_distribution_is_roughly_centered() {
        let mut r = rng();
        let dist = PatientDistributions::default();
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| random_patient(&mut r, &dist)[0].as_f64().unwrap())
            .sum::<f64>()
            / n as f64;
        // Clamping skews slightly; a generous band is enough to catch
        // a broken sampler.
        assert!((35.0..=55.0).contains(&mean), "mean age {mean}");
    }

    #[test]
    fn numeric_table_shape() {
        let mut r = rng();
        let t = numeric_table(&mut r, 100, 3, (0.0, 100.0));
        assert_eq!(t.len(), 100);
        assert_eq!(t.schema().arity(), 3);
        for (_, row) in t.iter() {
            for v in row {
                let x = v.as_f64().unwrap();
                assert!((0.0..100.0).contains(&x));
            }
        }
    }

    #[test]
    fn determinism_under_same_seed() {
        let dist = PatientDistributions::default();
        let target = MatchTarget {
            disease: Some("asthma".into()),
            ..Default::default()
        };
        let a = patient_table(&mut rng(), 20, &dist, &target, 5);
        let b = patient_table(&mut rng(), 20, &dist, &target, 5);
        assert_eq!(a.tuples(), b.tuples());
    }
}
