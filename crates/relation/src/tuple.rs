//! Tuples (records) and tuple identifiers.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Stable identifier of a tuple within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId(pub u64);

/// A record: an id plus one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable id assigned by the owning table.
    pub id: TupleId,
    /// Values, in schema attribute order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Value at attribute index `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_by_index() {
        let t = Tuple {
            id: TupleId(1),
            values: vec![Value::Int(15), Value::text("female")],
        };
        assert_eq!(t.get(0), Some(&Value::Int(15)));
        assert_eq!(t.get(1), Some(&Value::text("female")));
        assert_eq!(t.get(2), None);
    }
}
