//! Attribute schemas.

use serde::{Deserialize, Serialize};

use crate::error::RelationError;
use crate::value::Value;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// Integers (coerce to float for fuzzification).
    Int,
    /// Floats.
    Float,
    /// Text / categorical.
    Text,
    /// Booleans.
    Bool,
}

impl AttrType {
    /// Type name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Text => "text",
            AttrType::Bool => "bool",
        }
    }

    /// True when `value` conforms to this type (NULL conforms to all).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (AttrType::Int, Value::Int(_))
                | (AttrType::Float, Value::Float(_))
                | (AttrType::Float, Value::Int(_)) // widening int→float is fine
                | (AttrType::Text, Value::Text(_))
                | (AttrType::Bool, Value::Bool(_))
        )
    }
}

/// One named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, RelationError> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Self { attributes })
    }

    /// The paper's `Patient(id implicit; age, sex, bmi, disease)` schema
    /// (Table 1).
    pub fn patient() -> Self {
        Self::new(vec![
            Attribute::new("age", AttrType::Int),
            Attribute::new("sex", AttrType::Text),
            Attribute::new("bmi", AttrType::Float),
            Attribute::new("disease", AttrType::Text),
        ])
        .expect("static schema")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attributes in index order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Validates a row of values against the schema.
    pub fn check_row(&self, values: &[Value]) -> Result<(), RelationError> {
        if values.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        for (a, v) in self.attributes.iter().zip(values) {
            if !a.ty.admits(v) {
                return Err(RelationError::TypeMismatch {
                    attribute: a.name.clone(),
                    expected: a.ty.name(),
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patient_schema_layout() {
        let s = Schema::patient();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("age"), Some(0));
        assert_eq!(s.index_of("disease"), Some(3));
        assert_eq!(s.attribute("bmi").unwrap().ty, AttrType::Float);
        assert!(s.index_of("nope").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Attribute::new("a", AttrType::Int),
            Attribute::new("a", AttrType::Text),
        ])
        .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute(_)));
    }

    #[test]
    fn row_validation() {
        let s = Schema::patient();
        // Table 1, tuple t2.
        let good = vec![
            Value::Int(20),
            Value::text("male"),
            Value::Float(20.0),
            Value::text("malaria"),
        ];
        s.check_row(&good).unwrap();

        let short = vec![Value::Int(1)];
        assert!(matches!(
            s.check_row(&short),
            Err(RelationError::ArityMismatch { .. })
        ));

        let bad = vec![
            Value::text("x"),
            Value::text("male"),
            Value::Float(1.0),
            Value::text("y"),
        ];
        assert!(matches!(
            s.check_row(&bad),
            Err(RelationError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn widening_and_null_admitted() {
        let s = Schema::patient();
        // Int bmi is admitted under Float; NULL anywhere is admitted.
        let row = vec![
            Value::Int(20),
            Value::Null,
            Value::Int(20),
            Value::text("malaria"),
        ];
        s.check_row(&row).unwrap();
    }

    #[test]
    fn attr_type_admits_matrix() {
        assert!(AttrType::Int.admits(&Value::Int(1)));
        assert!(!AttrType::Int.admits(&Value::Float(1.0)));
        assert!(AttrType::Float.admits(&Value::Int(1)));
        assert!(AttrType::Text.admits(&Value::text("x")));
        assert!(!AttrType::Text.admits(&Value::Bool(true)));
        assert!(AttrType::Bool.admits(&Value::Null));
    }
}
