//! Minimal CSV import/export for tables.
//!
//! Lets users feed their own datasets to the summarizer without extra
//! dependencies. The dialect is deliberately simple: comma-separated,
//! `"`-quoted fields with `""` escapes, a mandatory header naming the
//! schema attributes, values parsed against the declared column types.
//! I/O is buffered throughout (one syscall per block, not per row).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::error::RelationError;
use crate::schema::{AttrType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Splits one CSV record, honoring quotes. Returns the raw fields.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

/// Quotes a field if needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_value(raw: &str, ty: AttrType) -> Result<Value, RelationError> {
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    let bad = |expected: &'static str| RelationError::TypeMismatch {
        attribute: String::new(),
        expected,
        got: "text",
    };
    Ok(match ty {
        AttrType::Int => Value::Int(raw.parse().map_err(|_| bad("int"))?),
        AttrType::Float => Value::Float(raw.parse().map_err(|_| bad("float"))?),
        AttrType::Text => Value::text(raw),
        AttrType::Bool => Value::Bool(match raw.to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => true,
            "false" | "0" | "no" => false,
            _ => return Err(bad("bool")),
        }),
    })
}

/// Reads a table from CSV. The header must name exactly the schema's
/// attributes, in order.
pub fn read_csv<R: Read>(reader: R, schema: Schema) -> Result<Table, RelationError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .transpose()
        .map_err(|_| RelationError::UnknownAttribute("<io error>".into()))?
        .ok_or_else(|| RelationError::UnknownAttribute("<empty file>".into()))?;
    let names = split_record(&header);
    if names.len() != schema.arity() {
        return Err(RelationError::ArityMismatch {
            expected: schema.arity(),
            got: names.len(),
        });
    }
    for (want, got) in schema.attributes().iter().zip(&names) {
        if want.name != got.trim() {
            return Err(RelationError::UnknownAttribute(got.trim().to_string()));
        }
    }
    let mut table = Table::new(schema);
    for line in lines {
        let line = line.map_err(|_| RelationError::UnknownAttribute("<io error>".into()))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_record(&line);
        if fields.len() != table.schema().arity() {
            return Err(RelationError::ArityMismatch {
                expected: table.schema().arity(),
                got: fields.len(),
            });
        }
        let row: Vec<Value> = fields
            .iter()
            .zip(table.schema().attributes().to_vec())
            .map(|(raw, attr)| {
                parse_value(raw, attr.ty).map_err(|e| match e {
                    RelationError::TypeMismatch { expected, got, .. } => {
                        RelationError::TypeMismatch {
                            attribute: attr.name.clone(),
                            expected,
                            got,
                        }
                    }
                    other => other,
                })
            })
            .collect::<Result<_, _>>()?;
        table.insert(row)?;
    }
    table.drain_changes(); // a bulk load is not "modification"
    Ok(table)
}

/// Writes a table as CSV (header + rows, buffered).
pub fn write_csv<W: Write>(table: &Table, writer: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    let header: Vec<String> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| quote(&a.name))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for (_, row) in table.iter() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => quote(&other.to_string()),
            })
            .collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_patient_table() {
        let table = Table::patient_table1();
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("age,sex,bmi,disease\n"));
        assert!(text.contains("15,female,17,anorexia"));

        let back = read_csv(&buf[..], Schema::patient()).unwrap();
        assert_eq!(back.len(), 3);
        let rows = back.tuples();
        assert_eq!(rows[0].values[0], Value::Int(15));
        assert_eq!(rows[1].values[3], Value::text("malaria"));
        assert_eq!(back.pending_changes(), 0, "bulk load drains its feed");
    }

    #[test]
    fn quoting_and_escapes() {
        assert_eq!(split_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_record(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(
            split_record(r#""he said ""hi""",x"#),
            vec![r#"he said "hi""#, "x"]
        );
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn nulls_and_case_insensitive_bools() {
        let schema = Schema::new(vec![
            crate::schema::Attribute::new("x", AttrType::Int),
            crate::schema::Attribute::new("ok", AttrType::Bool),
        ])
        .unwrap();
        let csv = "x,ok\n1,true\n,FALSE\nnull,yes\n";
        let t = read_csv(csv.as_bytes(), schema).unwrap();
        let rows = t.tuples();
        assert_eq!(rows[0].values[1], Value::Bool(true));
        assert!(rows[1].values[0].is_null());
        assert!(rows[2].values[0].is_null());
        assert_eq!(rows[2].values[1], Value::Bool(true));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "age,sex\n1,f\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), Schema::patient()),
            Err(RelationError::ArityMismatch { .. })
        ));
        let csv = "age,sex,weight,disease\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), Schema::patient()),
            Err(RelationError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn bad_values_carry_attribute_name() {
        let csv = "age,sex,bmi,disease\nnot_a_number,f,20.0,x\n";
        match read_csv(csv.as_bytes(), Schema::patient()) {
            Err(RelationError::TypeMismatch { attribute, .. }) => assert_eq!(attribute, "age"),
            other => panic!("expected type mismatch, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "age,sex,bmi,disease\n1,f\n";
        assert!(matches!(
            read_csv(csv.as_bytes(), Schema::patient()),
            Err(RelationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_lines_skipped_empty_file_rejected() {
        let csv = "age,sex,bmi,disease\n\n15,female,17.0,anorexia\n\n";
        let t = read_csv(csv.as_bytes(), Schema::patient()).unwrap();
        assert_eq!(t.len(), 1);
        assert!(read_csv(&b""[..], Schema::patient()).is_err());
    }
}
