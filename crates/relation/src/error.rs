//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by schema validation, table mutation and query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// An attribute name appears twice in a schema.
    DuplicateAttribute(String),
    /// A referenced attribute does not exist in the schema.
    UnknownAttribute(String),
    /// A tuple's arity does not match the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Supplied row arity.
        got: usize,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// The attribute whose type was violated.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Supplied value's type name.
        got: &'static str,
    },
    /// A tuple id was not found in the table.
    UnknownTuple(u64),
    /// A predicate compares incompatible types.
    IncomparableValues {
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            RelationError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            RelationError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            RelationError::TypeMismatch {
                attribute,
                expected,
                got,
            } => {
                write!(f, "attribute `{attribute}` expects {expected}, got {got}")
            }
            RelationError::UnknownTuple(id) => write!(f, "tuple {id} not found"),
            RelationError::IncomparableValues { left, right } => {
                write!(f, "cannot compare {left} with {right}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = RelationError::TypeMismatch {
            attribute: "age".into(),
            expected: "int",
            got: "text",
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains("int") && s.contains("text"));
    }
}
