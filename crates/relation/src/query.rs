//! Conjunctive selection queries, evaluated exactly.
//!
//! The exact evaluation path is the *ground truth* of the reproduction:
//! the paper's false-positive / false-negative accounting (§5.2.1, Figures
//! 4–5) compares summary-based routing decisions against which peers
//! actually hold matching tuples — which is what [`SelectQuery::evaluate`]
//! computes.

use serde::{Deserialize, Serialize};

use crate::error::RelationError;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::tuple::TupleId;
use crate::value::Value;

/// `SELECT <projection> FROM r WHERE p1 AND p2 AND ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// Projected attribute names (empty = `*`).
    pub projection: Vec<String>,
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
}

impl SelectQuery {
    /// Creates a query with a projection list.
    pub fn new(projection: Vec<String>, predicates: Vec<Predicate>) -> Self {
        Self {
            projection,
            predicates,
        }
    }

    /// The paper's §5.1 example:
    /// `select age from Patient where sex = 'female' and bmi < 19 and
    /// disease = 'anorexia'`.
    pub fn paper_example() -> Self {
        Self::new(
            vec!["age".into()],
            vec![
                Predicate::eq("sex", "female"),
                Predicate::lt("bmi", 19.0),
                Predicate::eq("disease", "anorexia"),
            ],
        )
    }

    /// True when the row satisfies every predicate.
    pub fn matches_row(&self, table: &Table, row: &[Value]) -> Result<bool, RelationError> {
        for p in &self.predicates {
            if !p.matches(table.schema(), row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Exact evaluation: ids of matching tuples.
    pub fn evaluate(&self, table: &Table) -> Result<Vec<TupleId>, RelationError> {
        let mut out = Vec::new();
        for (id, row) in table.iter() {
            if self.matches_row(table, row)? {
                out.push(id);
            }
        }
        Ok(out)
    }

    /// Exact evaluation with projection: the projected values of matching
    /// tuples, in schema order of the projection list.
    pub fn evaluate_projected(&self, table: &Table) -> Result<Vec<Vec<Value>>, RelationError> {
        let idxs: Vec<usize> = self
            .projection
            .iter()
            .map(|name| {
                table
                    .schema()
                    .index_of(name)
                    .ok_or_else(|| RelationError::UnknownAttribute(name.clone()))
            })
            .collect::<Result<_, _>>()?;
        let mut out = Vec::new();
        for (_, row) in table.iter() {
            if self.matches_row(table, row)? {
                if idxs.is_empty() {
                    out.push(row.to_vec());
                } else {
                    out.push(idxs.iter().map(|&i| row[i].clone()).collect());
                }
            }
        }
        Ok(out)
    }

    /// True when at least one tuple matches — the per-peer relevance bit
    /// the routing metrics need.
    pub fn matches_any(&self, table: &Table) -> Result<bool, RelationError> {
        for (_, row) in table.iter() {
            if self.matches_row(table, row)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl std::fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let proj = if self.projection.is_empty() {
            "*".to_string()
        } else {
            self.projection.join(", ")
        };
        write!(f, "select {proj} where ")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_on_table1() {
        let t = Table::patient_table1();
        let q = SelectQuery::paper_example();
        let ids: Vec<u64> = q.evaluate(&t).unwrap().into_iter().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 3]);

        let ages = q.evaluate_projected(&t).unwrap();
        assert_eq!(ages, vec![vec![Value::Int(15)], vec![Value::Int(18)]]);
        assert!(q.matches_any(&t).unwrap());
    }

    #[test]
    fn empty_projection_returns_star() {
        let t = Table::patient_table1();
        let q = SelectQuery::new(vec![], vec![Predicate::eq("sex", "male")]);
        let rows = q.evaluate_projected(&t).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn no_predicates_matches_everything() {
        let t = Table::patient_table1();
        let q = SelectQuery::new(vec!["age".into()], vec![]);
        assert_eq!(q.evaluate(&t).unwrap().len(), 3);
    }

    #[test]
    fn unknown_projection_attribute_errors() {
        let t = Table::patient_table1();
        let q = SelectQuery::new(vec!["height".into()], vec![]);
        assert!(q.evaluate_projected(&t).is_err());
    }

    #[test]
    fn display_round_trips_the_paper_query() {
        let q = SelectQuery::paper_example();
        let s = q.to_string();
        assert!(s.contains("select age"));
        assert!(s.contains("sex = female"));
        assert!(s.contains("bmi < 19"));
        assert!(s.contains("disease = anorexia"));
    }
}
