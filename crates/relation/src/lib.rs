#![warn(missing_docs)]

//! Relational substrate for the *Summary Management in P2P Systems*
//! reproduction.
//!
//! Every peer in the paper hosts a relational database (the running example
//! is a `Patient` relation — Table 1) and a DBMS that feeds tuples to the
//! SaintEtiQ summarization service in *push mode*. This crate provides that
//! substrate from scratch:
//!
//! * [`value`] / [`schema`] / [`tuple`](mod@tuple) — typed values,
//!   attribute schemas and records;
//! * [`table`] — an in-memory table with insert/delete/update, a
//!   monotonically growing revision counter, and a change feed so the
//!   summarizer can maintain summaries incrementally;
//! * [`predicate`] / [`query`] — conjunctive selection queries (the class
//!   of queries the paper routes: `select age from Patient where
//!   sex = "female" and bmi < 19 and disease = "anorexia"`), evaluated
//!   exactly for ground truth;
//! * [`stats`] — incremental per-attribute statistics (count/min/max/
//!   mean/std) — the measures every summary stores (§3.2.1);
//! * [`generator`] — synthetic dataset generators (patients and generic
//!   numeric tables) with controllable distributions, used to realize the
//!   paper's workload ("each query is matched by 10 % of the peers").

pub mod csv;
pub mod error;
pub mod generator;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use error::RelationError;
pub use predicate::{CompareOp, Predicate};
pub use query::SelectQuery;
pub use schema::{AttrType, Attribute, Schema};
pub use stats::AttributeStats;
pub use table::{ChangeKind, Table, TableChange};
pub use tuple::{Tuple, TupleId};
pub use value::Value;
