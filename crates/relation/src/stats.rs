//! Incremental per-attribute statistics.
//!
//! §3.2.1: *"Every new (coarser) tuple stores a record count and
//! attribute-dependent measures (min, max, mean, standard deviation,
//! etc.)."* Summaries carry one [`AttributeStats`] per numeric attribute,
//! maintained with Welford's online algorithm so inserts are O(1) and
//! numerically stable, and mergeable (Chan et al.) so two peers' summary
//! statistics can be combined during reconciliation.

use serde::{Deserialize, Serialize};

/// Online count/min/max/mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeStats {
    count: f64,
    min: f64,
    max: f64,
    mean: f64,
    /// Sum of squared deviations (Welford's M2).
    m2: f64,
}

impl Default for AttributeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl AttributeStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Adds one observation with weight 1.
    pub fn push(&mut self, x: f64) {
        self.push_weighted(x, 1.0);
    }

    /// Adds a weighted observation. Summary cells carry fractional tuple
    /// counts (Table 2's `0.7` / `0.3`), so weights are first-class.
    pub fn push_weighted(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let new_count = self.count + w;
        let delta = x - self.mean;
        self.mean += delta * (w / new_count);
        self.m2 += w * delta * (x - self.mean);
        self.count = new_count;
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &AttributeStats) {
        if other.count == 0.0 {
            return;
        }
        if self.count == 0.0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * (other.count / total);
        self.m2 += other.m2 + delta * delta * (self.count * other.count / total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
    }

    /// Total (possibly fractional) observation weight.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Minimum observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0.0).then_some(self.min)
    }

    /// Maximum observed value.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0.0).then_some(self.max)
    }

    /// Weighted mean.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0.0).then_some(self.mean)
    }

    /// Population variance.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0.0).then_some((self.m2 / self.count).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Raw accumulator fields `(count, min, max, mean, m2)` — for wire
    /// codecs that ship summaries between peers.
    pub fn raw_parts(&self) -> (f64, f64, f64, f64, f64) {
        (self.count, self.min, self.max, self.mean, self.m2)
    }

    /// Rebuilds an accumulator from [`AttributeStats::raw_parts`] output.
    pub fn from_raw_parts(count: f64, min: f64, max: f64, mean: f64, m2: f64) -> Self {
        Self {
            count,
            min,
            max,
            mean,
            m2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_stats_are_none() {
        let s = AttributeStats::new();
        assert_eq!(s.count(), 0.0);
        assert!(s.min().is_none());
        assert!(s.mean().is_none());
        assert!(s.std_dev().is_none());
    }

    #[test]
    fn basic_moments() {
        let mut s = AttributeStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!(close(s.mean().unwrap(), 5.0));
        assert!(close(s.std_dev().unwrap(), 2.0));
    }

    #[test]
    fn weighted_push_matches_repetition() {
        let mut a = AttributeStats::new();
        a.push_weighted(3.0, 2.0);
        a.push_weighted(7.0, 1.0);
        let mut b = AttributeStats::new();
        b.push(3.0);
        b.push(3.0);
        b.push(7.0);
        assert!(close(a.mean().unwrap(), b.mean().unwrap()));
        assert!(close(a.variance().unwrap(), b.variance().unwrap()));
        assert_eq!(a.count(), 3.0);
    }

    #[test]
    fn zero_weight_is_ignored() {
        let mut s = AttributeStats::new();
        s.push_weighted(5.0, 0.0);
        s.push_weighted(5.0, -1.0);
        assert_eq!(s.count(), 0.0);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = AttributeStats::new();
        let b = AttributeStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0.0);

        let mut c = AttributeStats::new();
        c.push(1.0);
        let mut d = AttributeStats::new();
        d.merge(&c);
        assert!(close(d.mean().unwrap(), 1.0));
    }

    proptest! {
        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn merge_equals_concat(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..50),
            ys in proptest::collection::vec(-1e3..1e3f64, 1..50),
        ) {
            let mut a = AttributeStats::new();
            for &x in &xs { a.push(x); }
            let mut b = AttributeStats::new();
            for &y in &ys { b.push(y); }
            a.merge(&b);

            let mut whole = AttributeStats::new();
            for &x in xs.iter().chain(ys.iter()) { whole.push(x); }

            prop_assert!(close(a.mean().unwrap(), whole.mean().unwrap()));
            prop_assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-6);
            prop_assert_eq!(a.min().unwrap(), whole.min().unwrap());
            prop_assert_eq!(a.max().unwrap(), whole.max().unwrap());
        }

        /// Variance is never negative and mean stays within [min, max].
        #[test]
        fn invariants(xs in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
            let mut s = AttributeStats::new();
            for &x in &xs { s.push(x); }
            let mean = s.mean().unwrap();
            prop_assert!(s.variance().unwrap() >= 0.0);
            prop_assert!(mean >= s.min().unwrap() - 1e-9);
            prop_assert!(mean <= s.max().unwrap() + 1e-9);
        }
    }
}
