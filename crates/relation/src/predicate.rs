//! Selection predicates.
//!
//! The paper routes conjunctive selection queries (§5.1). A [`Predicate`]
//! is one comparison against a constant; conjunctions live in
//! [`crate::query::SelectQuery`].

use serde::{Deserialize, Serialize};

use crate::error::RelationError;
use crate::schema::Schema;
use crate::value::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// One comparison of an attribute against a constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Attribute name.
    pub attribute: String,
    /// Operator.
    pub op: CompareOp,
    /// Right-hand constant.
    pub value: Value,
}

impl Predicate {
    /// Convenience constructor.
    pub fn new(attribute: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        Self {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(attribute, CompareOp::Eq, value)
    }

    /// Shorthand for a `<` predicate.
    pub fn lt(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(attribute, CompareOp::Lt, value)
    }

    /// Evaluates the predicate on a row, given the schema for attribute
    /// resolution. NULLs and incomparable values make the predicate false
    /// (SQL "unknown" collapses to false under a WHERE clause).
    pub fn matches(&self, schema: &Schema, row: &[Value]) -> Result<bool, RelationError> {
        let idx = schema
            .index_of(&self.attribute)
            .ok_or_else(|| RelationError::UnknownAttribute(self.attribute.clone()))?;
        let cell = &row[idx];
        if cell.is_null() || self.value.is_null() {
            return Ok(false);
        }
        let ord = match cell.compare(&self.value) {
            Ok(o) => o,
            Err(_) => return Ok(false),
        };
        use std::cmp::Ordering::*;
        Ok(match self.op {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        })
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op.symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    #[test]
    fn paper_predicates_on_table1() {
        // Q: sex = 'female' AND bmi < 19 AND disease = 'anorexia' (§5.1)
        let t = Table::patient_table1();
        let s = t.schema().clone();
        let sex = Predicate::eq("sex", "female");
        let bmi = Predicate::lt("bmi", 19.0);
        let disease = Predicate::eq("disease", "anorexia");
        let hits: Vec<u64> = t
            .iter()
            .filter(|(_, row)| {
                sex.matches(&s, row).unwrap()
                    && bmi.matches(&s, row).unwrap()
                    && disease.matches(&s, row).unwrap()
            })
            .map(|(id, _)| id.0)
            .collect();
        // t1 (bmi 17) and t3 (bmi 16.5) match; t2 is male/malaria.
        assert_eq!(hits, vec![1, 3]);
    }

    #[test]
    fn all_operators() {
        let s = Schema::patient();
        let row = vec![
            Value::Int(20),
            Value::text("male"),
            Value::Float(20.0),
            Value::text("malaria"),
        ];
        for (op, want) in [
            (CompareOp::Eq, true),
            (CompareOp::Ne, false),
            (CompareOp::Lt, false),
            (CompareOp::Le, true),
            (CompareOp::Gt, false),
            (CompareOp::Ge, true),
        ] {
            let p = Predicate::new("age", op, 20i64);
            assert_eq!(p.matches(&s, &row).unwrap(), want, "{op:?}");
        }
    }

    #[test]
    fn null_collapses_to_false() {
        let s = Schema::patient();
        let row = vec![
            Value::Null,
            Value::text("male"),
            Value::Float(1.0),
            Value::text("x"),
        ];
        let p = Predicate::new("age", CompareOp::Lt, 100i64);
        assert!(!p.matches(&s, &row).unwrap());
    }

    #[test]
    fn type_confusion_collapses_to_false() {
        let s = Schema::patient();
        let row = vec![
            Value::Int(5),
            Value::text("male"),
            Value::Float(1.0),
            Value::text("x"),
        ];
        let p = Predicate::eq("age", "five");
        assert!(!p.matches(&s, &row).unwrap());
    }

    #[test]
    fn unknown_attribute_errors() {
        let s = Schema::patient();
        let row = vec![
            Value::Int(5),
            Value::text("m"),
            Value::Float(1.0),
            Value::text("x"),
        ];
        let p = Predicate::eq("height", 5i64);
        assert!(matches!(
            p.matches(&s, &row),
            Err(RelationError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn display_reads_like_sql() {
        let p = Predicate::lt("bmi", 19.0);
        assert_eq!(p.to_string(), "bmi < 19");
    }
}
