//! Wire-codec benchmarks and the §6.1.1 storage-model check: summary
//! size per node (the paper estimates k ≈ 512 bytes) and total size
//! `k·(B^{d+1}−1)/(B−1)` staying bounded as data grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fuzzy::bk::BackgroundKnowledge;
use rand::SeedableRng;
use relation::generator::{patient_table, MatchTarget, PatientDistributions};
use relation::schema::Schema;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::hierarchy::SummaryTree;
use saintetiq::wire;

fn summary_of(n: usize, seed: u64) -> SummaryTree {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = PatientDistributions::default();
    let table = patient_table(&mut rng, n, &dist, &MatchTarget::default(), 0);
    let mut e = SaintEtiQEngine::new(
        BackgroundKnowledge::medical_cbk(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(1),
    )
    .expect("CBK binds");
    e.summarize_table(&table);
    e.into_tree()
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for &n in &[100usize, 1_000, 5_000] {
        let tree = summary_of(n, 1);
        let bytes = wire::encode(&tree);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &tree, |b, tree| {
            b.iter(|| wire::encode(tree).len())
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| wire::decode(bytes).expect("decodes").leaf_count())
        });
    }
    group.finish();
}

/// Not a timing benchmark: prints the storage-model numbers the paper
/// reasons about, so `cargo bench` output doubles as the size report.
fn report_sizes(c: &mut Criterion) {
    for &n in &[100usize, 1_000, 10_000] {
        let tree = summary_of(n, 2);
        eprintln!(
            "storage: {n} tuples -> {} cells, {} nodes, depth {}, {} bytes total, {:.0} bytes/node",
            tree.leaf_count(),
            tree.live_node_count(),
            tree.depth(),
            wire::encoded_size(&tree),
            wire::avg_node_bytes(&tree),
        );
    }
    // Keep criterion happy with at least one measured function.
    let tree = summary_of(500, 3);
    c.bench_function("encoded_size_500", |b| b.iter(|| wire::encoded_size(&tree)));
}

criterion_group!(benches, bench_encode_decode, report_sizes);
criterion_main!(benches);
