//! Control-plane benchmarks: the per-epoch cost of the adaptive-α
//! controller itself, and the end-to-end overhead the control plane
//! adds to a dynamic multi-domain run.
//!
//! The controller is deliberately cheap — one proportional step per
//! domain per epoch over plain counters — so the `controller_tick`
//! group should stay in the tens of nanoseconds per domain, and the
//! `adaptive_vs_fixed` pair should be statistically indistinguishable:
//! adaptation must not tax the kernel's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::control::{AlphaController, ControlPolicy};
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::scenario::with_heterogeneous_drift;

fn policy() -> ControlPolicy {
    ControlPolicy::Adaptive {
        target_staleness: 0.2,
        alpha_min: 0.05,
        alpha_max: 0.9,
        gain: 0.6,
        epoch_s: 600.0,
    }
}

/// One control epoch over growing domain counts: record a query per
/// domain, tick every slot.
fn bench_controller_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_controller_tick");
    for &domains in &[10usize, 100, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(domains),
            &domains,
            |b, &domains| {
                let mut ctl = AlphaController::new(policy(), domains, 0.3);
                let mut epoch = 0u64;
                b.iter(|| {
                    epoch += 1;
                    for d in 0..domains {
                        ctl.record_query(d, 7, 3);
                        ctl.tick_domain(d, epoch as f64 * 600.0, 0.2, epoch * 100);
                    }
                    ctl.alpha(domains - 1)
                })
            },
        );
    }
    group.finish();
}

/// The same small heterogeneous-drift churn run, fixed α vs adaptive:
/// the control plane's end-to-end overhead (epoch events + feedback
/// bookkeeping) on the event loop.
fn bench_adaptive_vs_fixed_run(c: &mut Criterion) {
    let mut base = SimConfig::paper_defaults(120, 0.3);
    base.horizon = SimTime::from_hours(4);
    base.query_count = 30;
    base.records_per_peer = 10;
    let base = with_heterogeneous_drift(&base, 4.0);

    let mut group = c.benchmark_group("alpha_control_run");
    group.sample_size(10);
    group.bench_function("fixed", |b| {
        b.iter(|| {
            MultiDomainSim::new(base, 20, LookupTarget::Total)
                .expect("valid config")
                .run()
                .reconciliations
        })
    });
    group.bench_function("adaptive", |b| {
        let mut cfg = base;
        cfg.control = Some(policy());
        b.iter(|| {
            MultiDomainSim::new(cfg, 20, LookupTarget::Total)
                .expect("valid config")
                .run()
                .reconciliations
        })
    });
    group.finish();
}

criterion_group!(benches, bench_controller_tick, bench_adaptive_vs_fixed_run);
criterion_main!(benches);
