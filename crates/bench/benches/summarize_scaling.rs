//! §6.1.1's time-cost claim: "the time complexity of the SaintEtiQ
//! process is in O(K), where K is the number of cells to incorporate".
//!
//! We sweep both the record count (at fixed grid granularity the cell
//! count saturates, so per-record cost must *drop* toward the cheap
//! sort-into-tree path) and the grid granularity (more labels per
//! attribute → more cells K → proportionally more work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fuzzy::bk::BackgroundKnowledge;
use rand::SeedableRng;
use relation::generator::numeric_table;
use relation::schema::{AttrType, Attribute, Schema};
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};

fn numeric_schema(arity: usize) -> Schema {
    Schema::new(
        (0..arity)
            .map(|i| Attribute::new(format!("attr{i}"), AttrType::Float))
            .collect(),
    )
    .expect("unique names")
}

/// Sweep the number of records at fixed BK granularity.
fn bench_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize_records");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 8_000] {
        let bk = BackgroundKnowledge::synthetic(3, 4).expect("valid synthetic BK");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let table = numeric_table(&mut rng, n, 3, (0.0, 100.0));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &table, |b, table| {
            b.iter(|| {
                let mut e = SaintEtiQEngine::new(
                    bk.clone(),
                    &numeric_schema(3),
                    EngineConfig::default(),
                    SourceId(0),
                )
                .expect("BK binds");
                e.summarize_table(table);
                e.tree().leaf_count()
            })
        });
    }
    group.finish();
}

/// Sweep the grid granularity (labels per attribute) at a fixed record
/// count: K grows with granularity, and so should total time — linearly.
fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize_granularity");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let table = numeric_table(&mut rng, 2_000, 3, (0.0, 100.0));
    for &labels in &[2usize, 4, 8] {
        let bk = BackgroundKnowledge::synthetic(3, labels).expect("valid synthetic BK");
        group.bench_with_input(BenchmarkId::from_parameter(labels), &bk, |b, bk| {
            b.iter(|| {
                let mut e = SaintEtiQEngine::new(
                    bk.clone(),
                    &numeric_schema(3),
                    EngineConfig::default(),
                    SourceId(0),
                )
                .expect("BK binds");
                e.summarize_table(&table);
                e.tree().leaf_count()
            })
        });
    }
    group.finish();
}

/// Ablation (DESIGN.md): the merge/split operators' cost.
fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize_operators");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let table = numeric_table(&mut rng, 2_000, 3, (0.0, 100.0));
    let bk = BackgroundKnowledge::synthetic(3, 5).expect("valid synthetic BK");
    for (name, cfg) in [
        ("full", EngineConfig::default()),
        (
            "no_restructure",
            EngineConfig {
                enable_merge: false,
                enable_split: false,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut e = SaintEtiQEngine::new(bk.clone(), &numeric_schema(3), cfg, SourceId(0))
                    .expect("BK binds");
                e.summarize_table(&table);
                e.tree().live_node_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_records, bench_granularity, bench_operators);
criterion_main!(benches);
