//! §6.1.1's merging claim: "the complexity CM12 of the Merging(S1, S2)
//! process is constant w.r.t. the number of tuples" — it depends only on
//! the number of leaves of S1.
//!
//! We build S1 from 100, 1 000 and 10 000 tuples over the same BK (the
//! leaf count saturates at the grid size) and merge it into a fixed S2:
//! the three timings must sit within a small constant factor, not scale
//! 100×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy::bk::BackgroundKnowledge;
use rand::SeedableRng;
use relation::generator::{patient_table, MatchTarget, PatientDistributions};
use relation::schema::Schema;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::hierarchy::SummaryTree;
use saintetiq::merge::merge_into;

fn summary_of(n_tuples: usize, seed: u64, source: u32) -> SummaryTree {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dist = PatientDistributions::default();
    let table = patient_table(&mut rng, n_tuples, &dist, &MatchTarget::default(), 0);
    let mut e = SaintEtiQEngine::new(
        BackgroundKnowledge::medical_cbk(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(source),
    )
    .expect("CBK binds");
    e.summarize_table(&table);
    e.into_tree()
}

fn bench_merge_vs_tuples(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_vs_tuples");
    group.sample_size(20);
    let target_base = summary_of(1_000, 99, 2);
    for &n in &[100usize, 1_000, 10_000] {
        let source = summary_of(n, 7, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &source, |b, source| {
            b.iter(|| {
                let mut target = target_base.clone();
                merge_into(&mut target, source, &EngineConfig::default()).expect("same CBK");
                target.leaf_count()
            })
        });
    }
    group.finish();
}

/// The actual driver of merge cost: the leaf count of S1, controlled via
/// grid granularity.
fn bench_merge_vs_leaves(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_vs_leaves");
    group.sample_size(20);
    for &labels in &[2usize, 4, 8] {
        let bk = BackgroundKnowledge::synthetic(3, labels).expect("valid BK");
        let schema = relation::schema::Schema::new(
            (0..3)
                .map(|i| {
                    relation::schema::Attribute::new(
                        format!("attr{i}"),
                        relation::schema::AttrType::Float,
                    )
                })
                .collect(),
        )
        .expect("unique names");
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let table = relation::generator::numeric_table(&mut rng, 2_000, 3, (0.0, 100.0));
        let build = |source: u32| {
            let mut e = SaintEtiQEngine::new(
                bk.clone(),
                &schema,
                EngineConfig::default(),
                SourceId(source),
            )
            .expect("BK binds");
            e.summarize_table(&table);
            e.into_tree()
        };
        let s1 = build(1);
        let s2 = build(2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{labels}labels_{}leaves", s1.leaf_count())),
            &(s1, s2),
            |b, (s1, s2)| {
                b.iter(|| {
                    let mut target = s2.clone();
                    merge_into(&mut target, s1, &EngineConfig::default()).expect("same CBK");
                    target.leaf_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge_vs_tuples, bench_merge_vs_leaves);
criterion_main!(benches);
