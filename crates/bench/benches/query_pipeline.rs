//! Query-side microbenchmarks: reformulation, valuation/selection over a
//! populated global summary, approximate answering, and the routing
//! policies of §6.1.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy::bk::BackgroundKnowledge;
use p2psim::network::NodeId;
use rand::SeedableRng;
use relation::query::SelectQuery;
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::query::proposition::reformulate;
use saintetiq::query::selection::select_most_abstract;
use saintetiq::query::{approx::approximate_answer, relevant_sources};
use summary_p2p::coop::CooperationList;
use summary_p2p::freshness::Freshness;
use summary_p2p::routing::{route_query, RoutingPolicy};
use summary_p2p::workload::{generate_peer_data, make_templates};

/// Builds a global summary merging `peers` local summaries.
fn global_summary(peers: usize, seed: u64) -> SummaryTree {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
    for p in 0..peers {
        let data = generate_peer_data(&mut rng, p as u32, &bk, &templates, 0.1, 24)
            .expect("valid workload");
        let tree = saintetiq::wire::decode(&data.summary).expect("decodes");
        saintetiq::merge::merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
    }
    gs
}

fn bench_reformulation(c: &mut Criterion) {
    let bk = BackgroundKnowledge::medical_cbk();
    let q = SelectQuery::paper_example();
    c.bench_function("reformulate_paper_query", |b| {
        b.iter(|| reformulate(&q, &bk).expect("routable"))
    });
}

fn bench_selection(c: &mut Criterion) {
    let bk = BackgroundKnowledge::medical_cbk();
    let sq = reformulate(&SelectQuery::paper_example(), &bk).expect("routable");
    let mut group = c.benchmark_group("selection");
    for &peers in &[100usize, 500, 2_000] {
        let gs = global_summary(peers, 3);
        group.bench_with_input(BenchmarkId::from_parameter(peers), &gs, |b, gs| {
            b.iter(|| select_most_abstract(gs, &sq.proposition).len())
        });
    }
    group.finish();
}

fn bench_peer_localization(c: &mut Criterion) {
    let bk = BackgroundKnowledge::medical_cbk();
    let sq = reformulate(&SelectQuery::paper_example(), &bk).expect("routable");
    let mut group = c.benchmark_group("peer_localization");
    for &peers in &[100usize, 500, 2_000] {
        let gs = global_summary(peers, 4);
        group.bench_with_input(BenchmarkId::from_parameter(peers), &gs, |b, gs| {
            b.iter(|| relevant_sources(gs, &sq.proposition).len())
        });
    }
    group.finish();
}

fn bench_approximate_answering(c: &mut Criterion) {
    let bk = BackgroundKnowledge::medical_cbk();
    let sq = reformulate(&SelectQuery::paper_example(), &bk).expect("routable");
    let gs = global_summary(500, 5);
    c.bench_function("approximate_answer_500_peers", |b| {
        b.iter(|| approximate_answer(&gs, &sq).len())
    });
}

fn bench_routing_policies(c: &mut Criterion) {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(1);
    let sq = reformulate(&templates[0].query, &bk).expect("routable");
    let gs = global_summary(1_000, 6);
    let mut cl = CooperationList::new();
    for p in 0..1_000u32 {
        let f = if p % 5 == 0 {
            Freshness::NeedsRefresh
        } else {
            Freshness::Fresh
        };
        cl.add_partner(NodeId(p), f);
    }
    let mut group = c.benchmark_group("routing_policy");
    for (name, policy) in [
        ("all", RoutingPolicy::All),
        ("fresh_only", RoutingPolicy::FreshOnly),
        ("extended", RoutingPolicy::Extended),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                route_query(&gs, &cl, &sq.proposition, policy, 1_000, |p| {
                    (true, p.0 % 10 == 0)
                })
                .messages
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reformulation,
    bench_selection,
    bench_peer_localization,
    bench_approximate_answering,
    bench_routing_policies
);
criterion_main!(benches);
