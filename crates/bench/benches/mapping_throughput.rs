//! Mapping-service throughput: records → weighted grid cells.
//!
//! §3.2.3 claims the mapping cost depends only on the BK's granularity
//! and fuzziness ("a fine-grained and overlapping BK will produce much
//! more cells than a coarse and crisp one"); the overlap sweep makes
//! that visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fuzzy::bk::{AttributeVocabulary, BackgroundKnowledge};
use fuzzy::partition::FuzzyPartition;
use rand::SeedableRng;
use relation::generator::{random_patient, PatientDistributions};
use relation::schema::Schema;
use saintetiq::mapping::Mapper;

fn bench_medical_mapping(c: &mut Criterion) {
    let mapper =
        Mapper::bind(BackgroundKnowledge::medical_cbk(), &Schema::patient()).expect("binds");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let dist = PatientDistributions::default();
    let rows: Vec<Vec<relation::value::Value>> = (0..1_000)
        .map(|_| random_patient(&mut rng, &dist))
        .collect();

    let mut group = c.benchmark_group("mapping");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("medical_1k_records", |b| {
        b.iter(|| {
            let mut cells = 0usize;
            for row in &rows {
                cells += mapper.map_record(row).expect("mappable").len();
            }
            cells
        })
    });
    group.finish();
}

/// Fuzzier partitions (wider overlaps) produce more cells per record.
fn bench_overlap_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_overlap");
    for &core_frac in &[0.9f64, 0.5, 0.2] {
        let mut bk = BackgroundKnowledge::new(format!("overlap-{core_frac}"));
        for i in 0..3 {
            bk.push_attribute(AttributeVocabulary::Numeric(
                FuzzyPartition::uniform(format!("attr{i}"), (0.0, 100.0), "v", 5, core_frac)
                    .expect("valid partition"),
            ))
            .expect("fresh attribute");
        }
        let schema = Schema::new(
            (0..3)
                .map(|i| {
                    relation::schema::Attribute::new(
                        format!("attr{i}"),
                        relation::schema::AttrType::Float,
                    )
                })
                .collect(),
        )
        .expect("unique names");
        let mapper = Mapper::bind(bk, &schema).expect("binds");
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rows: Vec<Vec<relation::value::Value>> = (0..500)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        relation::value::Value::Float(rand::Rng::gen_range(&mut rng, 0.0..100.0))
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("core{core_frac}")),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut cells = 0usize;
                    for row in rows {
                        cells += mapper.map_record(row).expect("mappable").len();
                    }
                    cells
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_medical_mapping, bench_overlap_sweep);
criterion_main!(benches);
