//! Reconciliation-path benchmarks (§4.2.2): the cost of rebuilding a
//! global summary as the token visits every live partner, the
//! ring-vs-star ablation DESIGN.md calls out, and the incremental
//! accumulator against the from-scratch rebuild.
//!
//! The paper distributes the merge work along the ring so the SP does
//! one store; the star alternative makes the SP merge every local
//! summary itself. Total merge work is identical — the ablation shows
//! the *SP-side* work differs, which is the point of the ring. The
//! incremental group then shows the round cost collapsing from
//! O(members) decodes + merges to O(stale subset) + one canonical
//! store.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy::bk::BackgroundKnowledge;
use rand::SeedableRng;
use saintetiq::cell::SourceId;
use saintetiq::delta::GsAccumulator;
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::merge::merge_into;
use saintetiq::wire;
use summary_p2p::workload::{generate_peer_data, make_templates};

fn local_summaries(peers: usize, seed: u64) -> Vec<Bytes> {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..peers)
        .map(|p| {
            generate_peer_data(&mut rng, p as u32, &bk, &templates, 0.1, 24)
                .expect("valid workload")
                .summary
        })
        .collect()
}

/// Full reconciliation rebuild: decode + merge every partner.
fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconciliation_rebuild");
    group.sample_size(10);
    for &peers in &[50usize, 200, 1_000] {
        let summaries = local_summaries(peers, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(peers),
            &summaries,
            |b, summaries| {
                b.iter(|| {
                    let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
                    for s in summaries {
                        let tree = wire::decode(s).expect("decodes");
                        merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
                    }
                    gs.leaf_count()
                })
            },
        );
    }
    group.finish();
}

/// Ring vs star: the SP-side share of the merging work. In the ring the
/// SP only stores the final tree (modelled as one decode); in the star
/// it performs all merges.
fn bench_ring_vs_star(c: &mut Criterion) {
    let peers = 200usize;
    let summaries = local_summaries(peers, 2);
    // Precompute the ring's final token (the merged GS, built by the
    // partners along the ring).
    let final_token = {
        let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
        for s in &summaries {
            let tree = wire::decode(s).expect("decodes");
            merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
        }
        wire::encode(&gs)
    };

    let mut group = c.benchmark_group("reconciliation_sp_work");
    group.bench_function("ring_sp_store_only", |b| {
        b.iter(|| wire::decode(&final_token).expect("decodes").leaf_count())
    });
    group.bench_function("star_sp_merges_all", |b| {
        b.iter(|| {
            let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
            for s in &summaries {
                let tree = wire::decode(s).expect("decodes");
                merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
            }
            gs.leaf_count()
        })
    });
    group.finish();
}

/// Incremental vs full: one 1%-drift round at growing membership. The
/// full path decodes + merges every partner; the incremental path
/// re-pulls only the drifted partners into a primed accumulator and
/// stores the canonical merged view.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconciliation_incremental");
    group.sample_size(10);
    for &peers in &[200usize, 1_000] {
        let summaries = local_summaries(peers, 3);
        let drifted = local_summaries(peers, 4);
        let dirty: Vec<usize> = (0..peers).step_by(100).collect(); // 1%
        let mut primed = GsAccumulator::new("medical-cbk-v1", vec![3, 3, 3, 12]);
        for (i, s) in summaries.iter().enumerate() {
            primed
                .update_source_encoded(SourceId(i as u32), s)
                .expect("decodes");
        }
        group.bench_with_input(
            BenchmarkId::new("full", peers),
            &summaries,
            |b, summaries| {
                b.iter(|| {
                    let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
                    for s in summaries {
                        let tree = wire::decode(s).expect("decodes");
                        merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
                    }
                    gs.leaf_count()
                })
            },
        );
        // Re-applying the same updates is idempotent (each replaces its
        // source's entry), so the primed accumulator can be mutated in
        // place across iterations — the timed region is exactly one
        // incremental round: |dirty| decodes + the canonical store.
        group.bench_function(BenchmarkId::new("incremental_1pct", peers), |b| {
            b.iter(|| {
                for &i in &dirty {
                    primed
                        .update_source_encoded(SourceId(i as u32), &drifted[i])
                        .expect("decodes");
                }
                primed.build_merged().leaf_count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rebuild,
    bench_ring_vs_star,
    bench_incremental_vs_full
);
criterion_main!(benches);
