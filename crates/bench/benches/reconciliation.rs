//! Reconciliation-path benchmarks (§4.2.2): the cost of rebuilding a
//! global summary as the token visits every live partner, plus the
//! ring-vs-star ablation DESIGN.md calls out.
//!
//! The paper distributes the merge work along the ring so the SP does
//! one store; the star alternative makes the SP merge every local
//! summary itself. Total merge work is identical — the ablation shows
//! the *SP-side* work differs, which is the point of the ring.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy::bk::BackgroundKnowledge;
use rand::SeedableRng;
use saintetiq::engine::EngineConfig;
use saintetiq::hierarchy::SummaryTree;
use saintetiq::merge::merge_into;
use saintetiq::wire;
use summary_p2p::workload::{generate_peer_data, make_templates};

fn local_summaries(peers: usize, seed: u64) -> Vec<Bytes> {
    let bk = BackgroundKnowledge::medical_cbk();
    let templates = make_templates(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..peers)
        .map(|p| {
            generate_peer_data(&mut rng, p as u32, &bk, &templates, 0.1, 24)
                .expect("valid workload")
                .summary
        })
        .collect()
}

/// Full reconciliation rebuild: decode + merge every partner.
fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconciliation_rebuild");
    group.sample_size(10);
    for &peers in &[50usize, 200, 1_000] {
        let summaries = local_summaries(peers, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(peers),
            &summaries,
            |b, summaries| {
                b.iter(|| {
                    let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
                    for s in summaries {
                        let tree = wire::decode(s).expect("decodes");
                        merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
                    }
                    gs.leaf_count()
                })
            },
        );
    }
    group.finish();
}

/// Ring vs star: the SP-side share of the merging work. In the ring the
/// SP only stores the final tree (modelled as one decode); in the star
/// it performs all merges.
fn bench_ring_vs_star(c: &mut Criterion) {
    let peers = 200usize;
    let summaries = local_summaries(peers, 2);
    // Precompute the ring's final token (the merged GS, built by the
    // partners along the ring).
    let final_token = {
        let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
        for s in &summaries {
            let tree = wire::decode(s).expect("decodes");
            merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
        }
        wire::encode(&gs)
    };

    let mut group = c.benchmark_group("reconciliation_sp_work");
    group.bench_function("ring_sp_store_only", |b| {
        b.iter(|| wire::decode(&final_token).expect("decodes").leaf_count())
    });
    group.bench_function("star_sp_merges_all", |b| {
        b.iter(|| {
            let mut gs = SummaryTree::new("medical-cbk-v1", vec![3, 3, 3, 12]);
            for s in &summaries {
                let tree = wire::decode(s).expect("decodes");
                merge_into(&mut gs, &tree, &EngineConfig::default()).expect("same CBK");
            }
            gs.leaf_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rebuild, bench_ring_vs_star);
criterion_main!(benches);
