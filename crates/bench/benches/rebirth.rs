//! SP-rebirth benchmarks: the cost of one latency-aware election over
//! growing candidate pools, and the end-to-end overhead rebirth adds
//! to a dynamic SP-churn run.
//!
//! The election scores at most `REBIRTH_CANDIDATES` hubs with one
//! TTL-bounded BFS each, so `election` should stay microseconds even
//! on large domains; the `rebirth_vs_terminal` pair measures the
//! whole-run cost of keeping the domain population stationary
//! (elections, takeover broadcasts, hand-over conversations, plus the
//! extra maintenance a *living* network does that a decayed one
//! cannot — the two are expected to diverge in favour of terminal
//! dissolution doing less work, which is exactly the recall it gives
//! up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2psim::network::{Network, NodeId};
use p2psim::time::SimTime;
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use summary_p2p::config::SimConfig;
use summary_p2p::construction::{elect_replacement_sp, ElectionPolicy};
use summary_p2p::kernel::{LookupTarget, MultiDomainSim};
use summary_p2p::scenario::with_sp_churn;

/// One latency-aware election over growing member pools on a
/// power-law topology.
fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebirth_election");
    for &members in &[25usize, 100, 400] {
        let mut rng = StdRng::seed_from_u64(9);
        let topo = TopologyConfig {
            nodes: members * 4,
            ..Default::default()
        };
        let net = Network::new(Graph::barabasi_albert(&topo, &mut rng));
        let pool: Vec<NodeId> = (0..members as u32).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, _| {
            b.iter(|| {
                elect_replacement_sp(
                    &net,
                    &pool,
                    &pool,
                    ElectionPolicy::LatencyAware {
                        ttl: 2,
                        default_hop: SimTime::from_millis(50),
                    },
                )
            })
        });
    }
    group.finish();
}

/// The same SP-churn run, terminal dissolutions vs rebirth.
fn bench_rebirth_vs_terminal_run(c: &mut Criterion) {
    let mut base = SimConfig::paper_defaults(120, 0.3);
    base.horizon = SimTime::from_hours(4);
    base.query_count = 30;
    base.records_per_peer = 10;
    let base = with_sp_churn(&base, 3600.0);

    let mut group = c.benchmark_group("rebirth_vs_terminal");
    group.sample_size(10);
    for (label, rebirth) in [("terminal", false), ("rebirth", true)] {
        let mut cfg = base;
        cfg.rebirth = rebirth;
        group.bench_function(label, |b| {
            b.iter(|| {
                MultiDomainSim::new(cfg, 20, LookupTarget::Total)
                    .unwrap()
                    .run()
                    .reconciliations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_election, bench_rebirth_vs_terminal_run);
criterion_main!(benches);
