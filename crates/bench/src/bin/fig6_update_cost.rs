//! Figure 6 — *Number of update messages vs. domain size*, for
//! α = 0.3 and α = 0.8.
//!
//! Counts push and reconciliation messages over the horizon. The paper's
//! observations to reproduce: total messages grow with the domain size
//! but the per-node rate stays almost flat; tightening α from 0.8 to 0.3
//! costs only ≈1.2× more traffic while sharply improving accuracy.

use summary_p2p::config::SimConfig;
use summary_p2p::scenario::figure6;

use sumq_bench::{render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.domain_sizes();
    let alphas = [0.3, 0.8];
    let mut base = SimConfig::paper_defaults(0, 0.3);
    base.seed = cli.seed;

    eprintln!("fig6: sweeping {} sizes x {{0.3, 0.8}} ...", sizes.len());
    let rows = figure6(&sizes, &alphas, &base).expect("valid config");

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", r.alpha),
                r.total_messages.to_string(),
                r.token_counted.to_string(),
                format!("{:.6}", r.per_node_s),
                r.reconciliations.to_string(),
            ]
        })
        .collect();
    let headers = [
        "n",
        "alpha",
        "update_msgs",
        "token_counted",
        "msgs_per_node_s",
        "reconciliations",
    ];
    println!("Figure 6: update messages vs domain size\n");
    println!("{}", render_table(&headers, &table_rows));
    println!("CSV:\n{}", render_csv(&headers, &table_rows));

    // Paper check: cost increase when tightening alpha 0.8 -> 0.3, under
    // both accountings (hop-counted tokens vs the paper's single-message
    // token; the paper's ~1.2 sits between the two).
    let mut hop_ratios = Vec::new();
    let mut token_ratios = Vec::new();
    for &n in &sizes {
        let tight = rows.iter().find(|r| r.n == n && r.alpha == 0.3);
        let lax = rows.iter().find(|r| r.n == n && r.alpha == 0.8);
        if let (Some(t), Some(l)) = (tight, lax) {
            if l.total_messages > 0 {
                hop_ratios.push(t.total_messages as f64 / l.total_messages as f64);
            }
            if l.token_counted > 0 {
                token_ratios.push(t.token_counted as f64 / l.token_counted as f64);
            }
        }
    }
    if !hop_ratios.is_empty() {
        let hop = hop_ratios.iter().sum::<f64>() / hop_ratios.len() as f64;
        let token = token_ratios.iter().sum::<f64>() / token_ratios.len() as f64;
        println!(
            "paper check: avg cost ratio alpha 0.3 / 0.8 = {hop:.2} (hop-counted) \
             / {token:.2} (token-counted); paper: ~1.2"
        );
    }
}
