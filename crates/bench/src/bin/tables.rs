//! Tables 1–3 and Figures 2–3 of the paper, regenerated.
//!
//! * **Table 1** — the raw `Patient` relation;
//! * **Figure 2** — the fuzzy linguistic partition on `age` (sampled);
//! * **Table 2** — the grid-cell mapping with its exact tuple counts
//!   (2 / 0.7 / 0.3);
//! * **Figure 3** — the summary hierarchy built from cells c1–c3;
//! * **Table 3** — the simulation parameters encoded in [`SimConfig`].

use std::collections::BTreeMap;

use fuzzy::BackgroundKnowledge;
use relation::schema::Schema;
use relation::table::Table;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::hierarchy::{NodeId, SummaryTree};
use saintetiq::mapping::Mapper;
use summary_p2p::config::SimConfig;

use sumq_bench::render_table;

fn print_table1(table: &Table) {
    println!("Table 1: Raw data\n");
    let rows: Vec<Vec<String>> = table
        .tuples()
        .iter()
        .map(|t| {
            let mut row = vec![format!("t{}", t.id.0)];
            row.extend(t.values.iter().map(|v| v.to_string()));
            row
        })
        .collect();
    println!(
        "{}",
        render_table(&["Id", "Age", "Sex", "BMI", "Disease"], &rows)
    );
}

fn print_figure2(bk: &BackgroundKnowledge) {
    println!("Figure 2: Fuzzy linguistic partition on age (sampled grades)\n");
    let age = bk.attribute("age").expect("age in CBK");
    let rows: Vec<Vec<String>> = [0.0, 10.0, 17.0, 20.0, 27.0, 40.0, 60.0, 80.0]
        .iter()
        .map(|&x| {
            let grades: Vec<String> = age
                .fuzzify_numeric(x)
                .into_iter()
                .map(|(l, g)| format!("{:.2}/{}", g, age.label_name(l).unwrap()))
                .collect();
            vec![format!("{x}"), grades.join(", ")]
        })
        .collect();
    println!("{}", render_table(&["age", "memberships"], &rows));
}

fn print_table2(bk: &BackgroundKnowledge, table: &Table) {
    println!("Table 2: Grid-cells mapping\n");
    let mapper = Mapper::bind(bk.clone(), &Schema::patient()).expect("CBK binds");
    let (mapped, _) = mapper.map_table(table);
    let age_i = bk.attribute_index("age").unwrap();
    let bmi_i = bk.attribute_index("bmi").unwrap();
    let mut counts: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
    for cells in &mapped {
        for c in cells {
            let age = bk
                .attribute_at(age_i)
                .unwrap()
                .label_name(c.key.0[age_i])
                .unwrap();
            let bmi = bk
                .attribute_at(bmi_i)
                .unwrap()
                .label_name(c.key.0[bmi_i])
                .unwrap();
            let slot = counts.entry((age.into(), bmi.into())).or_insert((0.0, 0.0));
            slot.0 += c.weight;
            slot.1 = slot.1.max(c.grades[age_i]);
        }
    }
    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(i, ((age, bmi), (count, grade)))| {
            let age_str = if *grade < 1.0 {
                format!("{grade:.1}/{age}")
            } else {
                age.clone()
            };
            vec![
                format!("c{}", i + 1),
                age_str,
                bmi.clone(),
                format!("{count:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Id", "Age", "BMI", "tuple count"], &rows)
    );
}

fn print_node(tree: &SummaryTree, mapper: &Mapper, node: NodeId, depth: usize, out: &mut String) {
    let n = tree.node(node);
    let indent = "  ".repeat(depth);
    let bk = mapper.bk();
    let intent: Vec<String> = bk
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, attr)| {
            let labels: Vec<&str> = n.intent.sets[i]
                .iter()
                .filter_map(|l| attr.label_name(l))
                .collect();
            format!("{}:{{{}}}", attr.name(), labels.join("|"))
        })
        .collect();
    out.push_str(&format!(
        "{indent}{} count={:.1} {}\n",
        if n.is_leaf() { "leaf" } else { "node" },
        n.count,
        intent.join(" ")
    ));
    for &c in &n.children {
        print_node(tree, mapper, c, depth + 1, out);
    }
}

fn print_figure3(bk: &BackgroundKnowledge, table: &Table) {
    println!("Figure 3: SaintEtiQ hierarchy over Table 1\n");
    let mut engine = SaintEtiQEngine::new(
        bk.clone(),
        &Schema::patient(),
        EngineConfig::default(),
        SourceId(0),
    )
    .expect("CBK binds");
    engine.summarize_table(table);
    let mapper = engine.mapper().clone();
    let tree = engine.into_tree();
    let mut out = String::new();
    print_node(&tree, &mapper, tree.root(), 0, &mut out);
    println!("{out}");
}

fn print_table3() {
    println!("Table 3: Simulation parameters\n");
    let cfg = SimConfig::paper_defaults(500, 0.3);
    let rows = vec![
        vec![
            "local summary lifetime L".to_string(),
            "skewed (lognormal), mean=3h, median=1h".to_string(),
        ],
        vec!["number of peers n".into(), "16-5000".into()],
        vec!["number of queries q".into(), cfg.query_count.to_string()],
        vec![
            "matching nodes/query hits".into(),
            format!("{:.0}%", cfg.match_fraction * 100.0),
        ],
        vec!["freshness threshold alpha".into(), "0.1-0.8".into()],
        vec![
            "query rate".into(),
            format!("{} q/node/s", SimConfig::QUERY_RATE_PER_NODE_S),
        ],
        vec![
            "topology".into(),
            "power law (Barabasi-Albert m=2), avg degree 4".into(),
        ],
        vec!["flooding TTL".into(), cfg.flood_ttl.to_string()],
        vec![
            "inter-domain degree k".into(),
            cfg.interdomain_k.to_string(),
        ],
    ];
    println!("{}", render_table(&["parameter", "value"], &rows));
}

fn main() {
    let bk = BackgroundKnowledge::medical_cbk();
    let table = Table::patient_table1();
    print_table1(&table);
    print_figure2(&bk);
    print_table2(&bk, &table);
    print_figure3(&bk, &table);
    print_table3();
}
