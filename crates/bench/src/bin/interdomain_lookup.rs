//! Measured inter-domain query routing (§5.2.2): the partial/total
//! lookup companion to Figure 7.
//!
//! Builds the full multi-domain system on a power-law network (domains of
//! ~50 peers), then routes queries with growing result targets `C_t`.
//! Reported: messages, domains visited and recall per target — the
//! measured counterpart of the cost-model's `C_t/((1−FP)·|P_Q|)` domain
//! count in equation (2).

use summary_p2p::config::SimConfig;
use summary_p2p::system::{LookupTarget, MultiDomainSystem};

use sumq_bench::{f1, f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let n = if cli.quick { 400 } else { 2000 };
    let mut cfg = SimConfig::paper_defaults(n, 0.3);
    cfg.seed = cli.seed;
    cfg.records_per_peer = 16;

    eprintln!(
        "interdomain: building {} peers in ~{} domains ...",
        n,
        n / 50
    );
    let mut sys = MultiDomainSystem::build(&cfg, 50).expect("valid config");
    let total_hits = sys.true_matches(0).len();
    eprintln!(
        "built: {} superpeers, {} matching peers for template 0",
        sys.domains().superpeers.len(),
        total_hits
    );

    let mut rows = Vec::new();
    let targets: Vec<(String, LookupTarget)> = [1usize, 5, 10, 25, 50]
        .iter()
        .map(|&ct| (ct.to_string(), LookupTarget::Partial(ct)))
        .chain(std::iter::once(("total".to_string(), LookupTarget::Total)))
        .collect();
    for (name, target) in targets {
        let (msgs, recall, domains) =
            sys.route_averaged(0, target, if cli.quick { 10 } else { 30 }, cli.seed);
        rows.push(vec![name, f1(msgs), f1(domains), f4(recall)]);
    }

    let headers = ["ct", "messages", "domains_visited", "recall"];
    println!("Inter-domain lookup (n = {n}, ~50 peers/domain)\n");
    println!("{}", render_table(&headers, &rows));
    println!("CSV:\n{}", render_csv(&headers, &rows));
    println!(
        "=> partial lookups terminate early; total lookup covers every domain \
         at full recall (the paper's §5.2.2 termination rule)"
    );
}
