//! Summary stability over a data stream (§4.2.1).
//!
//! The paper's maintenance design rests on one empirical claim: *"after a
//! given process time, a summary hierarchy becomes very stable. As more
//! tuples are processed, the need to adapt the hierarchy decreases and
//! [...] incorporating new tuple consists only in sorting it in a
//! tree."* This experiment feeds a stream of records batch by batch and
//! tracks, per batch: new cells created, structural node growth and
//! descriptor drift — all of which must decay toward zero.

use fuzzy::BackgroundKnowledge;
use rand::SeedableRng;
use relation::generator::{random_patient, PatientDistributions};
use relation::schema::Schema;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::maintenance::SummaryObserver;

use sumq_bench::{f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let batches = if cli.quick { 10 } else { 20 };
    let batch_size = 250;

    let bk = BackgroundKnowledge::medical_cbk();
    let mut engine =
        SaintEtiQEngine::new(bk, &Schema::patient(), EngineConfig::default(), SourceId(0))
            .expect("CBK binds");
    let mut rng = rand::rngs::StdRng::seed_from_u64(cli.seed);
    let dist = PatientDistributions::default();

    let mut rows = Vec::new();
    let mut prev_cells = 0usize;
    let mut prev_nodes = 0usize;
    for b in 0..batches {
        let observer = SummaryObserver::snapshot(engine.tree());
        for _ in 0..batch_size {
            engine.add_record(&random_patient(&mut rng, &dist));
        }
        let cells = engine.tree().leaf_count();
        let nodes = engine.tree().live_node_count();
        rows.push(vec![
            ((b + 1) * batch_size).to_string(),
            cells.to_string(),
            (cells - prev_cells).to_string(),
            (nodes as i64 - prev_nodes as i64).to_string(),
            observer.descriptor_drift(engine.tree()).to_string(),
            f4(observer.modification_rate(engine.tree())),
        ]);
        prev_cells = cells;
        prev_nodes = nodes;
    }

    let headers = [
        "tuples",
        "cells",
        "new_cells",
        "node_growth",
        "descriptor_drift",
        "mod_rate",
    ];
    println!("Summary stability: hierarchy adaptation per 250-tuple batch\n");
    println!("{}", render_table(&headers, &rows));
    println!("CSV:\n{}", render_csv(&headers, &rows));

    // The claim, checked: late batches create (almost) nothing new.
    let early: i64 = rows[0][2].parse().unwrap();
    let late: i64 = rows.last().unwrap()[2].parse().unwrap();
    println!(
        "=> first batch created {early} cells; last batch created {late} — \
         incorporation degenerates to sorting into a stable tree (§4.2.1)"
    );
}
