//! Figure 5 — *False negatives vs. domain size* (real case).
//!
//! Same maintenance simulation as Figure 4, but queries route with the
//! precision-maximizing policy `V = P_Q ∩ P_fresh` and the accounting is
//! *real*: a false negative is a peer that **currently** holds matching
//! data yet was not visited — i.e. the stale flag only hurts when the
//! database modification actually affected the query.
//!
//! Paper's claims: ≤3 % for domains below 2000 peers, and a ≈4.5×
//! reduction versus Figure 4's worst-case values.

use summary_p2p::config::SimConfig;
use summary_p2p::scenario::{figure4, figure5};

use sumq_bench::{f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.domain_sizes();
    let mut base = SimConfig::paper_defaults(0, 0.3);
    base.seed = cli.seed;

    eprintln!(
        "fig5: sweeping {} sizes (alpha = 0.3, fresh-only policy) ...",
        sizes.len()
    );
    let real = figure5(&sizes, &base).expect("valid config");
    let worst = figure4(&sizes, &[0.3], &base).expect("valid config");

    let table_rows: Vec<Vec<String>> = real
        .iter()
        .zip(&worst)
        .map(|(r, w)| {
            let reduction = if r.real_fn > 0.0 {
                w.worst_stale / r.real_fn
            } else {
                f64::NAN
            };
            vec![
                r.n.to_string(),
                f4(r.real_fn),
                f4(w.worst_stale),
                format!("{reduction:.1}"),
                f4(r.report.mean_recall()),
            ]
        })
        .collect();
    let headers = ["n", "real_fn_frac", "worst_stale", "reduction_x", "recall"];
    println!("Figure 5: fraction of (real) false negatives vs domain size\n");
    println!("{}", render_table(&headers, &table_rows));
    println!("CSV:\n{}", render_csv(&headers, &table_rows));

    let below_2000: Vec<&summary_p2p::scenario::StalePoint> =
        real.iter().filter(|r| r.n < 2000).collect();
    if !below_2000.is_empty() {
        let max_fn = below_2000.iter().map(|r| r.real_fn).fold(0.0, f64::max);
        println!("paper check: max real-FN fraction below n=2000 is {max_fn:.3} (paper: <=0.03)");
    }
}
