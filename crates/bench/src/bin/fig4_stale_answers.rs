//! Figure 4 — *Stale answers vs. domain size* (worst case).
//!
//! Sweeps domain sizes 16–5000 and freshness thresholds α, running the
//! full maintenance simulation (drift pushes, churn, reconciliation
//! rings) and reporting the worst-case stale-answer fraction: every
//! stale-flagged partner counts as a false positive when selected in
//! `P_Q` and as a false negative otherwise, exactly as §6.2.2 describes.
//!
//! Paper's reference point: ≈11 % for a 500-peer domain at α = 0.3.

use summary_p2p::config::SimConfig;
use summary_p2p::scenario::figure4;

use sumq_bench::{f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.domain_sizes();
    let alphas = [0.1, 0.3, 0.5, 0.8];
    let mut base = SimConfig::paper_defaults(0, 0.3);
    base.seed = cli.seed;

    eprintln!(
        "fig4: sweeping {} sizes x {} alphas ...",
        sizes.len(),
        alphas.len()
    );
    let rows = figure4(&sizes, &alphas, &base).expect("valid config");

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", r.alpha),
                f4(r.worst_stale),
                f4(r.report.mean_stale_selected / r.n as f64),
                f4(r.report.mean_stale_unselected / r.n as f64),
                r.report.reconciliations.to_string(),
            ]
        })
        .collect();
    let headers = [
        "n",
        "alpha",
        "stale_frac",
        "fp_component",
        "fn_component",
        "reconciliations",
    ];
    println!("Figure 4: fraction of stale answers (worst case) vs domain size\n");
    println!("{}", render_table(&headers, &table_rows));
    println!("CSV:\n{}", render_csv(&headers, &table_rows));

    // The paper's calibration point.
    if let Some(r) = rows
        .iter()
        .find(|r| r.n == 500 && (r.alpha - 0.3).abs() < 1e-9)
    {
        println!(
            "paper check: n=500, alpha=0.3 -> stale fraction {:.3} (paper: ~0.11)",
            r.worst_stale
        );
    }
}
