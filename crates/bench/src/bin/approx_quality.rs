//! Approximate-answer quality: how faithful is the summary-domain answer
//! (§5.2.2) to the exact answer distribution?
//!
//! The paper motivates approximate answering qualitatively ("dead Malaria
//! patients are typically children and old"); this experiment quantifies
//! it. For a sweep of cohort sizes we generate ground-truth populations
//! whose queried attribute concentrates in one fuzzy label, then check
//! that (a) the dominant label of the approximate answer matches the
//! dominant label of the exact answer, and (b) the answer's weight tracks
//! the true cohort size.

use fuzzy::BackgroundKnowledge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::predicate::Predicate;
use relation::query::SelectQuery;
use relation::schema::Schema;
use relation::table::Table;
use relation::value::Value;
use saintetiq::cell::SourceId;
use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
use saintetiq::query::approx::approximate_answer;
use saintetiq::query::proposition::reformulate;

use sumq_bench::{f4, render_csv, render_table, Cli};

/// Builds a population whose malaria cohort is drawn around `age_mean`.
fn cohort_table(rng: &mut StdRng, cohort: usize, noise: usize, age_mean: f64) -> Table {
    let mut t = Table::new(Schema::patient());
    for _ in 0..cohort {
        let age = (age_mean + rng.gen_range(-8.0..8.0)).clamp(0.0, 100.0);
        t.insert(vec![
            Value::Int(age as i64),
            Value::text(if rng.gen_bool(0.5) { "female" } else { "male" }),
            Value::Float(rng.gen_range(16.0..30.0)),
            Value::text("malaria"),
        ])
        .expect("valid row");
    }
    for _ in 0..noise {
        let age = rng.gen_range(0..100i64);
        t.insert(vec![
            Value::Int(age),
            Value::text("male"),
            Value::Float(rng.gen_range(16.0..30.0)),
            Value::text("asthma"),
        ])
        .expect("valid row");
    }
    t
}

fn dominant_label(bk: &BackgroundKnowledge, ages: &[f64]) -> String {
    let vocab = bk.attribute("age").expect("age vocabulary");
    let mut weights = std::collections::BTreeMap::<String, f64>::new();
    for &a in ages {
        for (l, g) in vocab.fuzzify_numeric(a) {
            *weights
                .entry(vocab.label_name(l).unwrap().to_string())
                .or_insert(0.0) += g;
        }
    }
    weights
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(l, _)| l)
        .unwrap_or_default()
}

fn main() {
    let cli = Cli::parse();
    let bk = BackgroundKnowledge::medical_cbk();
    let query = SelectQuery::new(
        vec!["age".into()],
        vec![Predicate::eq("disease", "malaria")],
    );
    let sq = reformulate(&query, &bk).expect("routable");

    let mut rows = Vec::new();
    let mut agreements = 0usize;
    let mut trials = 0usize;
    for &(age_mean, label) in &[
        (10.0, "young"),
        (40.0, "adult"),
        (80.0, "old"),
        (22.0, "young/adult"),
    ] {
        for &cohort in &[5usize, 20, 100] {
            let mut rng = StdRng::seed_from_u64(cli.seed ^ (cohort as u64) ^ age_mean as u64);
            let table = cohort_table(&mut rng, cohort, 200, age_mean);
            let mut engine = SaintEtiQEngine::new(
                bk.clone(),
                &Schema::patient(),
                EngineConfig::default(),
                SourceId(0),
            )
            .expect("CBK binds");
            engine.summarize_table(&table);

            // Exact cohort ages (ground truth).
            let exact = query.evaluate_projected(&table).expect("valid query");
            let ages: Vec<f64> = exact.iter().map(|r| r[0].as_f64().unwrap()).collect();
            let truth = dominant_label(&bk, &ages);

            // Approximate answer: dominant descriptor by weight.
            let answers = approximate_answer(engine.tree(), &sq);
            let age_attr = bk.attribute_index("age").unwrap();
            let vocab = bk.attribute_at(age_attr).unwrap();
            let mut weights = std::collections::BTreeMap::<String, f64>::new();
            let mut total_w = 0.0;
            for a in &answers {
                total_w += a.weight;
                for (attr, set) in &a.answer {
                    if *attr == age_attr {
                        for l in set.iter() {
                            *weights
                                .entry(vocab.label_name(l).unwrap().to_string())
                                .or_insert(0.0) += a.weight;
                        }
                    }
                }
            }
            let approx = weights
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(l, _)| l.clone())
                .unwrap_or_default();

            let agree = truth == approx;
            trials += 1;
            agreements += agree as usize;
            rows.push(vec![
                label.to_string(),
                cohort.to_string(),
                truth,
                approx,
                f4(total_w / cohort as f64),
                agree.to_string(),
            ]);
        }
    }

    let headers = [
        "cohort_kind",
        "size",
        "exact_dominant",
        "approx_dominant",
        "weight_ratio",
        "agree",
    ];
    println!("Approximate answering quality (age of malaria patients)\n");
    println!("{}", render_table(&headers, &rows));
    println!("CSV:\n{}", render_csv(&headers, &rows));
    println!(
        "agreement: {agreements}/{trials} cohorts; weight_ratio ~1.0 means the \
         answer's mass tracks the true cohort size"
    );
}
