//! Ablation (DESIGN.md): *selective* walks (highest-degree neighbor,
//! §4.1 after Adamic et al. \[23\]) vs plain random walks for finding a
//! summary peer on a power-law topology.
//!
//! The paper chooses the selective walk because hubs are found in very
//! few hops on heavy-tailed graphs; this measures exactly that.

use p2psim::network::{Network, NodeId};
use p2psim::topology::{Graph, TopologyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use summary_p2p::construction::elect_superpeers;

use sumq_bench::{f1, f4, render_csv, render_table, Cli};

/// Random walk until an SP (or a dead end / hop budget); returns hops.
fn random_walk_hops(
    net: &Network,
    rng: &mut StdRng,
    origin: NodeId,
    sps: &[NodeId],
    max_hops: u32,
) -> Option<u32> {
    let mut cur = origin;
    for hop in 1..=max_hops {
        let next = net.random_step(cur, rng)?;
        if sps.contains(&next) {
            return Some(hop);
        }
        cur = next;
    }
    None
}

fn main() {
    let cli = Cli::parse();
    let mut rows = Vec::new();
    for &n in &(if cli.quick {
        vec![200usize, 800]
    } else {
        vec![200usize, 800, 3000]
    }) {
        let mut rng = StdRng::seed_from_u64(cli.seed);
        let topo = TopologyConfig {
            nodes: n,
            m: 2,
            ..Default::default()
        };
        let net = Network::new(Graph::barabasi_albert(&topo, &mut rng));
        let sps = elect_superpeers(&net, (n / 60).max(2));
        let max_hops = 64u32;
        let trials = if cli.quick { 100 } else { 400 };

        let mut sel_hops = 0u64;
        let mut sel_found = 0usize;
        let mut rnd_hops = 0u64;
        let mut rnd_found = 0usize;
        for _ in 0..trials {
            let origin = NodeId(rng.gen_range(0..n as u32));
            if sps.contains(&origin) {
                continue;
            }
            let (path, found) = net.selective_walk(origin, max_hops, |v| sps.contains(&v));
            if found {
                sel_found += 1;
                sel_hops += path.len() as u64;
            }
            if let Some(h) = random_walk_hops(&net, &mut rng, origin, &sps, max_hops) {
                rnd_found += 1;
                rnd_hops += h as u64;
            }
        }
        rows.push(vec![
            n.to_string(),
            f1(sel_hops as f64 / sel_found.max(1) as f64),
            f4(sel_found as f64 / trials as f64),
            f1(rnd_hops as f64 / rnd_found.max(1) as f64),
            f4(rnd_found as f64 / trials as f64),
        ]);
    }

    let headers = [
        "n",
        "selective_hops",
        "selective_found",
        "random_hops",
        "random_found",
    ];
    println!("Ablation: selective vs random walk to find a summary peer\n");
    println!("{}", render_table(&headers, &rows));
    println!("CSV:\n{}", render_csv(&headers, &rows));
    println!("=> the §4.1 selective walk reaches an SP in a fraction of the hops");
}
