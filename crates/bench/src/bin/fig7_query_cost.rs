//! Figure 7 — *Query cost vs. number of peers*: summary querying (SQ)
//! vs. pure flooding (TTL 3) vs. a centralized index.
//!
//! Exactly as §6.2.3: the centralized cost is the closed form
//! `1 + 2·(0.1·n)`; SQ is `C_Q = 10·C_d + 9·C_f` from the cost model
//! with the worst-case false-positive fraction measured in Figure 4 at
//! α = 0.3; flooding is measured on the simulated power-law topology and
//! reported both raw and normalized to full recall (see EXPERIMENTS.md).
//!
//! Paper's reference point: SQ reduces query cost ≈3.5× vs flooding at
//! n = 2000, and the gap widens with network size.

use summary_p2p::config::SimConfig;
use summary_p2p::scenario::{figure4, figure7};

use sumq_bench::{f1, f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.network_sizes();
    let mut base = SimConfig::paper_defaults(0, 0.3);
    base.seed = cli.seed;

    // Measure the FP fraction the paper injects into the SQ curve
    // (Figure 4, worst case, alpha = 0.3, 500-peer domain).
    eprintln!("fig7: measuring worst-case FP at alpha=0.3 ...");
    let fp = {
        let mut cfg = base;
        cfg.horizon = p2psim::time::SimTime::from_hours(8);
        let pts =
            figure4(&[if cli.quick { 100 } else { 500 }], &[0.3], &cfg).expect("valid config");
        pts[0].worst_stale
    };
    eprintln!(
        "fig7: using FP = {fp:.3} (paper: ~0.11); sweeping {} sizes ...",
        sizes.len()
    );

    let rows = figure7(&sizes, fp, &base, if cli.quick { 10 } else { 40 });
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                f1(r.centralized),
                f1(r.summary_querying),
                f1(r.flooding),
                f1(r.flooding_raw),
                f4(r.flooding_recall),
                format!("{:.2}", r.flooding / r.summary_querying),
            ]
        })
        .collect();
    let headers = [
        "n",
        "centralized",
        "sq",
        "flooding",
        "flooding_raw",
        "flood_recall",
        "gain_vs_flood",
    ];
    println!("Figure 7: query cost (messages) vs number of peers\n");
    println!("{}", render_table(&headers, &table_rows));
    println!("CSV:\n{}", render_csv(&headers, &table_rows));

    if let Some(r) = rows.iter().find(|r| r.n == 2000) {
        println!(
            "paper check: n=2000 -> SQ {:.0} msgs, flooding {:.0} (x{:.1} reduction; paper: ~3.5x)",
            r.summary_querying,
            r.flooding,
            r.flooding / r.summary_querying
        );
    }
}
