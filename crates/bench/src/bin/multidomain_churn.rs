//! Multi-domain routing under churn — the unified-kernel experiment.
//!
//! Builds the full multi-domain system on a power-law network and runs
//! §5.2.2 inter-domain lookups *while* summary drift, churn sessions and
//! α-gated reconciliation mutate every domain's GS/CL in one virtual
//! clock. Sweeps churn intensity at two freshness thresholds and
//! reports network-wide recall, stale answers, false negatives and the
//! maintenance traffic the recall was bought with.
//!
//! Reading: at the paper's α, reconciliation frequency adapts to the
//! churn rate and recall stays in the α-band; with a lax α the pull
//! cannot keep up and recall degrades monotonically with churn.

use summary_p2p::config::SimConfig;
use summary_p2p::kernel::LookupTarget;
use summary_p2p::scenario::figure_multidomain_churn;

use sumq_bench::{f1, f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    let n = if cli.quick { 300 } else { 1500 };
    let scales: &[f64] = if cli.quick {
        &[0.5, 2.0, 4.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let alphas = [0.3, 0.8];

    let mut rows = Vec::new();
    for &alpha in &alphas {
        let mut base = SimConfig::paper_defaults(n, alpha);
        base.seed = cli.seed;
        base.records_per_peer = 16;
        base.query_count = if cli.quick { 60 } else { 200 };

        eprintln!(
            "multidomain-churn: {} peers in ~{} domains, alpha {alpha}, {} churn scales ...",
            n,
            n / 50,
            scales.len()
        );
        let points =
            figure_multidomain_churn(scales, &base, 50, LookupTarget::Total).expect("valid config");
        for p in points {
            rows.push(vec![
                f1(p.churn_scale),
                format!("{alpha:.1}"),
                p.report.queries.to_string(),
                f4(p.mean_recall),
                f4(p.mean_stale_answers),
                f4(p.mean_false_negatives),
                f1(p.mean_messages),
                p.reconciliations.to_string(),
                p.report.push_messages.to_string(),
                p.report.cache_hits.to_string(),
            ]);
        }
    }

    let headers = [
        "churn_scale",
        "alpha",
        "queries",
        "recall",
        "stale_answers",
        "false_negatives",
        "msgs_per_query",
        "reconciliations",
        "push_msgs",
        "cache_hits",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("{}", render_csv(&headers, &rows));
}
