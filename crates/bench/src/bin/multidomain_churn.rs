//! Multi-domain routing under churn — the unified-kernel experiment.
//!
//! Builds the full multi-domain system on a power-law network and runs
//! §5.2.2 inter-domain lookups *while* summary drift, churn sessions and
//! α-gated reconciliation mutate every domain's GS/CL in one virtual
//! clock. Sweeps churn intensity at two freshness thresholds and
//! reports network-wide recall, stale answers, false negatives and the
//! maintenance traffic the recall was bought with.
//!
//! With `--latency` the message plane is enabled: every push, token,
//! query and flood rides a virtual-time delivery event, the table gains
//! a time-to-answer column, and a `BENCH_latency.json` summary (mean
//! time-to-answer, peak messages in flight, per-hop sweep) is written
//! for the perf trajectory.
//!
//! With `--reconcile` the binary instead measures one §4.2.2 pull
//! full-scratch vs incrementally (`scenario::reconcile_cost_sweep`) at
//! two domain sizes and several drift fractions, and writes
//! `BENCH_reconcile.json` — the perf-trajectory evidence that per-round
//! merge work scales with the stale subset, not total membership, and
//! that the incremental GS stays byte-identical to the from-scratch
//! oracle.
//!
//! With `--adaptive` the binary runs the staleness/bandwidth frontier
//! experiment instead (`scenario::figure_alpha_adaptive`): the same
//! heterogeneous-drift network once per fixed α and once under the
//! feedback control plane, and writes `BENCH_alpha.json` — whether
//! adaptive per-domain α holds the network-wide stale-answer fraction
//! within ±20% of its target while spending no more reconciliation
//! delta bytes than the best fixed α of comparable staleness.
//!
//! With `--rebirth` the binary runs the long-horizon SP-churn
//! stationarity experiment instead (`scenario::figure_rebirth`): the
//! same network once with terminal §4.3 dissolutions (departed summary
//! peers never return — the live-domain count decays monotonically)
//! and once with SP rebirth enabled (each dissolved domain re-elects a
//! replacement SP from its own live hubs, latency-aware on the message
//! plane), and writes `BENCH_rebirth.json` — the live-domain-count
//! trajectory, rebirth counts, and whether the time-weighted mean
//! domain count stayed within ±10% of its initial value.
//!
//! With `--zipf` the workload draws query templates from a Zipf(1.2)
//! popularity distribution instead of round-robin. Both `--zipf` and
//! `--latency` compose with the churn table and with `--adaptive` /
//! `--rebirth`. Run with `--help` for the full flag ↔ BENCH-artifact
//! map.
//!
//! Reading: at the paper's α, reconciliation frequency adapts to the
//! churn rate and recall stays in the α-band; with a lax α the pull
//! cannot keep up and recall degrades monotonically with churn.

use std::fs;

use p2psim::time::SimTime;
use summary_p2p::config::SimConfig;
use summary_p2p::control::ControlPolicy;
use summary_p2p::kernel::LookupTarget;
use summary_p2p::scenario::{
    figure_alpha_adaptive, figure_latency_sweep, figure_multidomain_churn, figure_rebirth,
    reconcile_cost_sweep, with_heterogeneous_drift, with_latency,
};

use sumq_bench::{f1, f4, render_csv, render_table, Cli};

fn main() {
    let cli = Cli::parse();
    if cli.reconcile {
        write_reconcile_summary(&cli);
        return;
    }
    if cli.adaptive {
        write_alpha_summary(&cli);
        return;
    }
    if cli.rebirth {
        write_rebirth_summary(&cli);
        return;
    }
    let n = if cli.quick { 300 } else { 1500 };
    let scales: &[f64] = if cli.quick {
        &[0.5, 2.0, 4.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let alphas = [0.3, 0.8];

    let mut rows = Vec::new();
    for &alpha in &alphas {
        let mut base = SimConfig::paper_defaults(n, alpha);
        base.seed = cli.seed;
        base.records_per_peer = 16;
        base.query_count = if cli.quick { 60 } else { 200 };
        if cli.latency {
            base = with_latency(&base, SimTime::from_millis(50));
        }
        if cli.zipf {
            base.zipf_exponent = Some(1.2);
        }

        eprintln!(
            "multidomain-churn: {} peers in ~{} domains, alpha {alpha}, {} churn scales{} ...",
            n,
            n / 50,
            scales.len(),
            if cli.latency {
                ", latency plane on"
            } else {
                ""
            }
        );
        let points =
            figure_multidomain_churn(scales, &base, 50, LookupTarget::Total).expect("valid config");
        for p in points {
            rows.push(vec![
                f1(p.churn_scale),
                format!("{alpha:.1}"),
                p.report.queries.to_string(),
                f4(p.mean_recall),
                f4(p.mean_stale_answers),
                f4(p.mean_false_negatives),
                f1(p.mean_messages),
                f4(p.mean_time_to_answer_s),
                p.reconciliations.to_string(),
                p.report.push_messages.to_string(),
                p.report.cache_hits.to_string(),
            ]);
        }
    }

    let headers = [
        "churn_scale",
        "alpha",
        "queries",
        "recall",
        "stale_answers",
        "false_negatives",
        "msgs_per_query",
        "tta_s",
        "reconciliations",
        "push_msgs",
        "cache_hits",
    ];
    println!("{}", render_table(&headers, &rows));
    println!("{}", render_csv(&headers, &rows));

    if cli.latency {
        write_latency_summary(&cli, n);
    }
}

/// Runs the hop-latency sweep and writes `BENCH_latency.json` — the
/// perf-trajectory summary of the message plane.
fn write_latency_summary(cli: &Cli, n: usize) {
    let hops: &[u64] = if cli.quick {
        &[5, 200, 2000]
    } else {
        &[1, 5, 50, 200, 2000, 20_000]
    };
    let mut base = SimConfig::paper_defaults(n, 0.3);
    base.seed = cli.seed;
    base.records_per_peer = 16;
    base.query_count = if cli.quick { 60 } else { 200 };
    eprintln!("latency sweep: {} hop settings ...", hops.len());
    let points = figure_latency_sweep(hops, &base, 50, LookupTarget::Total).expect("valid config");

    let mut sweep = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            sweep.push(',');
        }
        sweep.push_str(&format!(
            "\n    {{\"hop_ms\": {}, \"mean_time_to_answer_s\": {:.6}, \"peak_in_flight\": {}, \
             \"mean_recall\": {:.6}, \"mean_stale_answers\": {:.6}, \"mean_messages\": {:.2}}}",
            p.hop_ms,
            p.mean_time_to_answer_s,
            p.peak_in_flight,
            p.mean_recall,
            p.mean_stale_answers,
            p.mean_messages
        ));
    }
    let mid = &points[points.len() / 2];
    let json = format!(
        "{{\n  \"bench\": \"latency_plane\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"mean_time_to_answer_s\": {:.6},\n  \"peak_in_flight\": {},\n  \"sweep\": [{}\n  ]\n}}\n",
        n, cli.seed, mid.mean_time_to_answer_s, mid.peak_in_flight, sweep
    );
    fs::write("BENCH_latency.json", &json).expect("write BENCH_latency.json");
    eprintln!("wrote BENCH_latency.json");
}

/// Runs the heterogeneous-drift fixed-α sweep vs the adaptive control
/// plane and writes `BENCH_alpha.json`: the staleness/bandwidth
/// frontier plus the acceptance comparison — adaptive within ±20% of
/// its staleness target, at no more pull bytes than the best fixed α
/// of comparable staleness.
fn write_alpha_summary(cli: &Cli) {
    let n = if cli.quick { 300 } else { 1500 };
    let fixed: &[f64] = &[0.1, 0.2, 0.3, 0.5, 0.8];
    let target_staleness = 0.2;
    let policy = ControlPolicy::Adaptive {
        target_staleness,
        alpha_min: 0.05,
        alpha_max: 0.9,
        gain: 0.6,
        epoch_s: 600.0,
    };
    // base.alpha doubles as the adaptive controller's starting point:
    // mid-range, so neither frontier end is favored by the transient.
    let mut base = SimConfig::paper_defaults(n, 0.5);
    base.seed = cli.seed;
    base.records_per_peer = 16;
    base.query_count = if cli.quick { 120 } else { 200 };
    if cli.latency {
        base = with_latency(&base, SimTime::from_millis(50));
    }
    if cli.zipf {
        base.zipf_exponent = Some(1.2);
    }
    let base = with_heterogeneous_drift(&base, 4.0);
    eprintln!(
        "adaptive-alpha frontier: {} peers, drift spread 4.0, {} fixed alphas + adaptive{}{} ...",
        n,
        fixed.len(),
        if cli.latency {
            ", latency plane on"
        } else {
            ""
        },
        if cli.zipf { ", zipf workload" } else { "" }
    );
    let points =
        figure_alpha_adaptive(fixed, policy, &base, 50, LookupTarget::Total).expect("valid config");

    let headers = [
        "policy",
        "stale_fraction",
        "recall",
        "delta_kb",
        "reconciliations",
        "mean_final_alpha",
        "alpha_spread",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (lo, hi) = p
                .final_alphas
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &a| {
                    (lo.min(a), hi.max(a))
                });
            vec![
                p.label.clone(),
                f4(p.stale_answer_fraction),
                f4(p.mean_recall),
                f1(p.reconcile_delta_bytes as f64 / 1024.0),
                p.reconciliations.to_string(),
                f4(p.mean_final_alpha),
                format!("{lo:.2}..{hi:.2}"),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("{}", render_csv(&headers, &rows));

    let adaptive = points.last().expect("adaptive row is always appended");
    let stale_within_band =
        (adaptive.stale_answer_fraction - target_staleness).abs() <= 0.2 * target_staleness;
    // The fixed comparator: cheapest pull bytes among the fixed rows
    // achieving staleness at least as good as the adaptive run did (a
    // staler fixed α is not achieving comparable staleness — it sits
    // on an easier point of the frontier).
    let best_fixed = points[..points.len() - 1]
        .iter()
        .filter(|p| p.stale_answer_fraction <= adaptive.stale_answer_fraction * 1.05)
        .min_by_key(|p| p.reconcile_delta_bytes);
    let bytes_within_best_fixed =
        best_fixed.is_none_or(|b| adaptive.reconcile_delta_bytes <= b.reconcile_delta_bytes);

    let mut sweep = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            sweep.push(',');
        }
        let alphas = p
            .final_alphas
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        sweep.push_str(&format!(
            "\n    {{\"policy\": \"{}\", \"stale_answer_fraction\": {:.6}, \
             \"mean_recall\": {:.6}, \"reconcile_delta_bytes\": {}, \
             \"reconciliations\": {}, \"mean_final_alpha\": {:.6}, \
             \"final_alphas\": [{}]}}",
            p.label,
            p.stale_answer_fraction,
            p.mean_recall,
            p.reconcile_delta_bytes,
            p.reconciliations,
            p.mean_final_alpha,
            alphas
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"alpha_adaptive\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"drift_spread\": 4.0,\n  \"target_staleness\": {:.4},\n  \
         \"adaptive_stale_answer_fraction\": {:.6},\n  \"stale_within_20pct_of_target\": {},\n  \
         \"adaptive_delta_bytes\": {},\n  \"best_fixed_alpha\": {},\n  \
         \"best_fixed_delta_bytes\": {},\n  \"bytes_within_best_fixed\": {},\n  \
         \"sweep\": [{}\n  ]\n}}\n",
        n,
        cli.seed,
        target_staleness,
        adaptive.stale_answer_fraction,
        stale_within_band,
        adaptive.reconcile_delta_bytes,
        best_fixed
            .and_then(|b| b.fixed_alpha)
            .map_or("null".into(), |a| format!("{a:.2}")),
        best_fixed.map_or("null".into(), |b| b.reconcile_delta_bytes.to_string()),
        bytes_within_best_fixed,
        sweep
    );
    fs::write("BENCH_alpha.json", &json).expect("write BENCH_alpha.json");
    eprintln!(
        "wrote BENCH_alpha.json (stale_within_band: {stale_within_band}, \
         bytes_within_best_fixed: {bytes_within_best_fixed})"
    );
}

/// Runs the long-horizon SP-churn stationarity experiment — terminal
/// dissolutions vs latency-aware SP rebirth — and writes
/// `BENCH_rebirth.json`: both rows, the rebirth run's live-domain
/// trajectory, and the ±10% stationarity check on the time-weighted
/// mean live-domain count.
fn write_rebirth_summary(cli: &Cli) {
    let n = if cli.quick { 300 } else { 1500 };
    let horizon_h = if cli.quick { 12 } else { 24 };
    let sp_mean_s = if cli.quick {
        2.0 * 3600.0
    } else {
        4.0 * 3600.0
    };
    let mut base = SimConfig::paper_defaults(n, 0.3);
    base.seed = cli.seed;
    base.records_per_peer = 16;
    base.query_count = if cli.quick { 60 } else { 200 };
    base.horizon = SimTime::from_hours(horizon_h);
    if cli.latency {
        base = with_latency(&base, SimTime::from_millis(50));
    }
    if cli.zipf {
        base.zipf_exponent = Some(1.2);
    }
    eprintln!(
        "sp-rebirth stationarity: {n} peers in ~{} domains over {horizon_h} h, \
         SP mean lifetime {:.0} h, rebirth off vs on{} ...",
        n / 50,
        sp_mean_s / 3600.0,
        if cli.latency {
            ", latency plane on"
        } else {
            ""
        }
    );
    let points = figure_rebirth(&base, sp_mean_s, 50, LookupTarget::Total).expect("valid config");

    let headers = [
        "rebirth",
        "initial_domains",
        "final_domains",
        "min_domains",
        "mean_domains",
        "rebirths",
        "recall",
        "stale_answers",
        "reconciliations",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rebirth.to_string(),
                p.initial_domains.to_string(),
                p.final_domains.to_string(),
                p.min_live_domains.to_string(),
                f1(p.mean_live_domains),
                p.rebirths.to_string(),
                f4(p.mean_recall),
                f4(p.mean_stale_answers),
                p.reconciliations.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("{}", render_csv(&headers, &rows));

    let off = &points[0];
    let on = &points[1];
    let initial = on.initial_domains as f64;
    let stationary_within_10pct =
        initial > 0.0 && (on.mean_live_domains - initial).abs() <= 0.1 * initial;
    let trajectory = on
        .report
        .domain_count_trajectory
        .iter()
        .map(|(t, n)| format!("[{t:.1}, {n}]"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"sp_rebirth\",\n  \"n_peers\": {},\n  \"seed\": {},\n  \
         \"horizon_h\": {},\n  \"sp_mean_lifetime_s\": {:.0},\n  \
         \"initial_domains\": {},\n  \"off_final_domains\": {},\n  \
         \"off_mean_live_domains\": {:.3},\n  \"on_final_domains\": {},\n  \
         \"on_min_live_domains\": {},\n  \"on_mean_live_domains\": {:.3},\n  \
         \"rebirths\": {},\n  \"stationary_within_10pct\": {},\n  \
         \"off_mean_recall\": {:.6},\n  \"on_mean_recall\": {:.6},\n  \
         \"on_domain_count_trajectory\": [{}]\n}}\n",
        n,
        cli.seed,
        horizon_h,
        sp_mean_s,
        on.initial_domains,
        off.final_domains,
        off.mean_live_domains,
        on.final_domains,
        on.min_live_domains,
        on.mean_live_domains,
        on.rebirths,
        stationary_within_10pct,
        off.mean_recall,
        on.mean_recall,
        trajectory
    );
    fs::write("BENCH_rebirth.json", &json).expect("write BENCH_rebirth.json");
    eprintln!(
        "wrote BENCH_rebirth.json (rebirths: {}, stationary_within_10pct: \
         {stationary_within_10pct}, off decayed to {}/{} domains)",
        on.rebirths, off.final_domains, off.initial_domains
    );
}

/// Runs the full-vs-incremental reconciliation sweep and writes
/// `BENCH_reconcile.json` — per-round merge work and wall-clock of one
/// pull, both ways, at two domain sizes.
fn write_reconcile_summary(cli: &Cli) {
    let sizes: &[usize] = if cli.quick {
        &[300, 1000]
    } else {
        &[1000, 5000]
    };
    let fractions = [0.01, 0.1, 0.5];
    let mut base = SimConfig::paper_defaults(sizes[0], 0.3);
    base.seed = cli.seed;
    base.records_per_peer = if cli.quick { 10 } else { 16 };
    eprintln!(
        "reconcile sweep: {} domain sizes x {} drift fractions ...",
        sizes.len(),
        fractions.len()
    );
    let points = reconcile_cost_sweep(sizes, &fractions, &base).expect("valid config");

    let headers = [
        "n",
        "drift",
        "stale",
        "incr_merged",
        "incr_skipped",
        "incr_delta_kb",
        "incr_hops",
        "incr_ms",
        "full_merged",
        "full_ms",
        "equivalent",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.2}", p.drift_fraction),
                p.stale_members.to_string(),
                p.incr_merged.to_string(),
                p.incr_skipped.to_string(),
                f1(p.incr_delta_bytes as f64 / 1024.0),
                p.incr_token_hops.to_string(),
                f1(p.incr_micros as f64 / 1000.0),
                p.full_merged.to_string(),
                f1(p.full_micros as f64 / 1000.0),
                p.equivalent.to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!("{}", render_csv(&headers, &rows));

    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n    {{\"n\": {}, \"drift_fraction\": {:.2}, \"stale_members\": {}, \
             \"incr_merged_members\": {}, \"incr_skipped_members\": {}, \
             \"incr_delta_bytes\": {}, \"incr_token_hops\": {}, \"incr_micros\": {}, \
             \"full_merged_members\": {}, \"full_micros\": {}, \"gs_bytes\": {}, \
             \"equivalent\": {}}}",
            p.n,
            p.drift_fraction,
            p.stale_members,
            p.incr_merged,
            p.incr_skipped,
            p.incr_delta_bytes,
            p.incr_token_hops,
            p.incr_micros,
            p.full_merged,
            p.full_micros,
            p.gs_bytes,
            p.equivalent
        ));
    }
    // Headline: the 1%-drift round at the largest size.
    let headline = points
        .iter()
        .filter(|p| p.drift_fraction <= 0.011)
        .max_by_key(|p| p.n)
        .expect("sweep is non-empty");
    assert!(
        headline.equivalent,
        "incremental GS diverged from the from-scratch oracle"
    );
    let json = format!(
        "{{\n  \"bench\": \"reconcile_incremental\",\n  \"seed\": {},\n  \
         \"headline_n\": {},\n  \"headline_drift_fraction\": {:.2},\n  \
         \"headline_incr_merged_members\": {},\n  \"headline_full_merged_members\": {},\n  \
         \"headline_incr_micros\": {},\n  \"headline_full_micros\": {},\n  \
         \"sweep\": [{}\n  ]\n}}\n",
        cli.seed,
        headline.n,
        headline.drift_fraction,
        headline.incr_merged,
        headline.full_merged,
        headline.incr_micros,
        headline.full_micros,
        body
    );
    fs::write("BENCH_reconcile.json", &json).expect("write BENCH_reconcile.json");
    eprintln!("wrote BENCH_reconcile.json");
}
