#![warn(missing_docs)]

//! Shared experiment-harness utilities for the `sumq-bench` binaries.
//!
//! Every figure of the paper has a binary in `src/bin/` that sweeps the
//! paper's parameter grid and prints an aligned table plus a CSV block
//! (easy to plot). This module holds the common bits: CLI parsing,
//! table rendering and the default sweeps.

use std::env;

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Quick mode (`--quick`): smaller grids for CI-speed runs.
    pub quick: bool,
    /// Message plane on (`--latency`): protocol traffic rides
    /// virtual-time delivery events instead of applying instantly.
    pub latency: bool,
    /// Reconciliation cost mode (`--reconcile`, `multidomain_churn`
    /// only): run the full-vs-incremental GS maintenance sweep and emit
    /// `BENCH_reconcile.json` instead of the churn table.
    pub reconcile: bool,
    /// Adaptive-α mode (`--adaptive`, `multidomain_churn` only): run
    /// the heterogeneous-drift fixed-α sweep vs the feedback control
    /// plane and emit `BENCH_alpha.json` instead of the churn table.
    pub adaptive: bool,
    /// Zipf workload (`--zipf`): draw query templates from a Zipf(1.2)
    /// popularity distribution instead of round-robin.
    pub zipf: bool,
    /// SP-rebirth mode (`--rebirth`, `multidomain_churn` only): run
    /// the long-horizon SP-churn stationarity experiment (rebirth off
    /// vs on) and emit `BENCH_rebirth.json` instead of the churn table.
    pub rebirth: bool,
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut cli = Cli {
            seed: 42,
            quick: false,
            latency: false,
            reconcile: false,
            adaptive: false,
            zipf: false,
            rebirth: false,
        };
        let mut args = env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--seed" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing value for --seed"));
                    cli.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage("--seed takes an integer"));
                }
                "--quick" => cli.quick = true,
                "--latency" => cli.latency = true,
                "--reconcile" => cli.reconcile = true,
                "--adaptive" => cli.adaptive = true,
                "--zipf" => cli.zipf = true,
                "--rebirth" => cli.rebirth = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag `{other}`")),
            }
        }
        cli
    }

    /// The domain-size sweep: the paper's 16–5000 grid, or a reduced one
    /// under `--quick`.
    pub fn domain_sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![16, 50, 100, 250]
        } else {
            vec![16, 50, 100, 500, 1000, 2000, 5000]
        }
    }

    /// The network-size sweep for Figure 7.
    pub fn network_sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![16, 100, 500]
        } else {
            vec![16, 100, 500, 1000, 2000, 3500, 5000]
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("{USAGE}");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The shared usage text of the `sumq-bench` binaries. Every flag is
/// accepted by every binary; the mode flags only change behaviour in
/// `multidomain_churn`, where each selects one experiment and one
/// `BENCH_*.json` artifact.
pub const USAGE: &str = "\
usage: <fig binary> [--seed N] [--quick] [--latency] [--zipf]
                    [--reconcile | --adaptive | --rebirth]

Common options
  --seed N      master seed for every stochastic choice (default 42);
                runs are deterministic per seed in both delivery modes
  --quick       reduced grids / smaller networks for CI-speed runs
  -h, --help    this text

Workload / delivery modifiers (compose with any mode)
  --latency     enable the latency message plane: every push, token,
                query and flood rides a virtual-time delivery event
                costed from topology link latencies + wire size; in
                multidomain_churn the churn table gains a
                time-to-answer column and a hop-latency sweep is
                written to BENCH_latency.json
  --zipf        draw query templates from a Zipf(1.2) popularity law
                instead of round-robin

multidomain_churn modes (mutually exclusive; default: churn table)
  (none)        inter-domain lookups under churn, swept over churn
                intensity at two freshness thresholds; with --latency
                also emits BENCH_latency.json
  --reconcile   full-scratch vs incremental GS maintenance sweep;
                emits BENCH_reconcile.json
  --adaptive    fixed-alpha frontier vs the per-domain adaptive-alpha
                control plane on a heterogeneous-drift network;
                emits BENCH_alpha.json
  --rebirth     long-horizon SP-churn stationarity: terminal
                dissolutions (rebirth off) vs latency-aware SP
                re-election (rebirth on); emits BENCH_rebirth.json

BENCH artifacts (written to the working directory)
  BENCH_latency.json    mean time-to-answer, peak in-flight, hop sweep
  BENCH_reconcile.json  per-round merge work, incremental vs oracle
  BENCH_alpha.json      staleness/bandwidth frontier, adaptive vs fixed
  BENCH_rebirth.json    live-domain trajectory, rebirth counts, the
                        ±10% stationarity check";

/// Renders an aligned text table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders the same rows as CSV (for plotting).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with 4 decimals (figure precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let rows = vec![
            vec!["16".into(), "0.1100".into()],
            vec!["5000".into(), "0.0900".into()],
        ];
        let t = render_table(&["n", "stale"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].starts_with("5000"));
    }

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".into(), "2".into()]];
        let c = render_csv(&["a", "b"], &rows);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn float_formats() {
        assert_eq!(f4(0.11), "0.1100");
        assert_eq!(f1(1012.34), "1012.3");
    }

    #[test]
    fn default_sweeps_cover_paper_grid() {
        let cli = Cli {
            seed: 42,
            quick: false,
            latency: false,
            reconcile: false,
            adaptive: false,
            zipf: false,
            rebirth: false,
        };
        assert_eq!(cli.domain_sizes().first(), Some(&16));
        assert_eq!(cli.domain_sizes().last(), Some(&5000));
        let quick = Cli {
            seed: 42,
            quick: true,
            latency: false,
            reconcile: false,
            adaptive: false,
            zipf: false,
            rebirth: false,
        };
        assert!(quick.domain_sizes().len() < cli.domain_sizes().len());
    }
}
