//! Membership functions over numeric domains.
//!
//! A membership function `μ : ℝ → [0, 1]` tells how well a raw value fits a
//! linguistic label (Zadeh 1965). The paper's Figure 2 uses trapezoidal
//! functions (`young`, `adult`, `old` over *age*); we also provide the
//! shapes needed by tests, generators and user-defined vocabularies.

use serde::{Deserialize, Serialize};

use crate::error::FuzzyError;

/// A parametric membership function.
///
/// All shapes guarantee `0.0 <= eval(x) <= 1.0` for every finite `x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MembershipFunction {
    /// Trapezoid `(a, b, c, d)`: ramps up on `[a, b]`, is 1 on `[b, c]`,
    /// ramps down on `[c, d]`. Degenerate ramps (`a == b` / `c == d`) give
    /// crisp shoulders, which is how unbounded edge labels are modelled.
    Trapezoidal {
        /// Support start.
        a: f64,
        /// Core start.
        b: f64,
        /// Core end.
        c: f64,
        /// Support end.
        d: f64,
    },
    /// Triangle `(a, b, c)`: 1 only at the peak `b`.
    Triangular {
        /// Support start.
        a: f64,
        /// Peak.
        b: f64,
        /// Support end.
        c: f64,
    },
    /// Crisp interval `[lo, hi]`: membership 1 inside, 0 outside.
    Crisp {
        /// Interval start (inclusive).
        lo: f64,
        /// Interval end (inclusive).
        hi: f64,
    },
    /// Singleton: membership 1 exactly at `at`, 0 elsewhere.
    Singleton {
        /// The single covered point.
        at: f64,
    },
}

impl MembershipFunction {
    /// Builds a validated trapezoid. Requires `a <= b <= c <= d`.
    pub fn trapezoid(a: f64, b: f64, c: f64, d: f64) -> Result<Self, FuzzyError> {
        if a > b || b > c || c > d || !a.is_finite() || !d.is_finite() {
            return Err(FuzzyError::InvalidShape(format!(
                "trapezoid requires finite a<=b<=c<=d, got ({a}, {b}, {c}, {d})"
            )));
        }
        Ok(Self::Trapezoidal { a, b, c, d })
    }

    /// Builds a validated triangle. Requires `a <= b <= c`.
    pub fn triangle(a: f64, b: f64, c: f64) -> Result<Self, FuzzyError> {
        if a > b || b > c || !a.is_finite() || !c.is_finite() {
            return Err(FuzzyError::InvalidShape(format!(
                "triangle requires finite a<=b<=c, got ({a}, {b}, {c})"
            )));
        }
        Ok(Self::Triangular { a, b, c })
    }

    /// Builds a validated crisp interval. Requires `lo <= hi`.
    pub fn crisp(lo: f64, hi: f64) -> Result<Self, FuzzyError> {
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) && lo != hi {
            return Err(FuzzyError::InvalidShape(format!(
                "crisp interval requires lo<=hi, got [{lo}, {hi}]"
            )));
        }
        Ok(Self::Crisp { lo, hi })
    }

    /// Membership grade of `x`, always in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        let g = match *self {
            Self::Trapezoidal { a, b, c, d } => {
                if x < a || x > d {
                    0.0
                } else if x < b {
                    // a <= x < b implies a < b, so the ramp is well defined.
                    (x - a) / (b - a)
                } else if x <= c {
                    1.0
                } else {
                    (d - x) / (d - c)
                }
            }
            Self::Triangular { a, b, c } => {
                if x < a || x > c {
                    0.0
                } else if x < b {
                    (x - a) / (b - a)
                } else if x == b {
                    1.0
                } else {
                    (c - x) / (c - b)
                }
            }
            Self::Crisp { lo, hi } => {
                if x >= lo && x <= hi {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Singleton { at } => {
                if x == at {
                    1.0
                } else {
                    0.0
                }
            }
        };
        g.clamp(0.0, 1.0)
    }

    /// The support: smallest closed interval outside which membership is 0.
    pub fn support(&self) -> (f64, f64) {
        match *self {
            Self::Trapezoidal { a, d, .. } => (a, d),
            Self::Triangular { a, c, .. } => (a, c),
            Self::Crisp { lo, hi } => (lo, hi),
            Self::Singleton { at } => (at, at),
        }
    }

    /// The core: the interval where membership is exactly 1
    /// (may be a single point).
    pub fn core(&self) -> (f64, f64) {
        match *self {
            Self::Trapezoidal { b, c, .. } => (b, c),
            Self::Triangular { b, .. } => (b, b),
            Self::Crisp { lo, hi } => (lo, hi),
            Self::Singleton { at } => (at, at),
        }
    }

    /// The α-cut `{x | μ(x) >= alpha}` as a closed interval, or `None` when
    /// the cut is empty. `alpha` must lie in `(0, 1]`.
    pub fn alpha_cut(&self, alpha: f64) -> Option<(f64, f64)> {
        if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return None;
        }
        match *self {
            Self::Trapezoidal { a, b, c, d } => {
                let lo = if a == b { a } else { a + alpha * (b - a) };
                let hi = if c == d { d } else { d - alpha * (d - c) };
                Some((lo, hi))
            }
            Self::Triangular { a, b, c } => {
                let lo = if a == b { a } else { a + alpha * (b - a) };
                let hi = if b == c { c } else { c - alpha * (c - b) };
                Some((lo, hi))
            }
            Self::Crisp { lo, hi } => Some((lo, hi)),
            Self::Singleton { at } => Some((at, at)),
        }
    }

    /// True when the grade of `x` is exactly 1.
    pub fn is_core(&self, x: f64) -> bool {
        let (lo, hi) = self.core();
        x >= lo && x <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn trapezoid_shape() {
        // The paper's `young` label: full up to 17, fading out by 27.
        let young = MembershipFunction::trapezoid(0.0, 0.0, 17.0, 27.0).unwrap();
        assert_close(young.eval(10.0), 1.0);
        assert_close(young.eval(17.0), 1.0);
        assert_close(young.eval(20.0), 0.7); // Figure 2: 0.7/young at age 20
        assert_close(young.eval(27.0), 0.0);
        assert_close(young.eval(40.0), 0.0);
    }

    #[test]
    fn adult_ramp_matches_figure2() {
        let adult = MembershipFunction::trapezoid(17.0, 27.0, 55.0, 65.0).unwrap();
        assert_close(adult.eval(20.0), 0.3); // Figure 2: 0.3/adult at age 20
        assert_close(adult.eval(30.0), 1.0);
        assert_close(adult.eval(65.0), 0.0);
    }

    #[test]
    fn triangle_peak_and_edges() {
        let t = MembershipFunction::triangle(0.0, 5.0, 10.0).unwrap();
        assert_close(t.eval(0.0), 0.0);
        assert_close(t.eval(5.0), 1.0);
        assert_close(t.eval(7.5), 0.5);
        assert_close(t.eval(10.0), 0.0);
    }

    #[test]
    fn degenerate_triangle_is_singleton_like() {
        let t = MembershipFunction::triangle(3.0, 3.0, 3.0).unwrap();
        assert_close(t.eval(3.0), 1.0);
        assert_close(t.eval(3.1), 0.0);
    }

    #[test]
    fn crisp_interval() {
        let c = MembershipFunction::crisp(1.0, 2.0).unwrap();
        assert_close(c.eval(1.0), 1.0);
        assert_close(c.eval(1.5), 1.0);
        assert_close(c.eval(2.0), 1.0);
        assert_close(c.eval(2.00001), 0.0);
    }

    #[test]
    fn singleton() {
        let s = MembershipFunction::Singleton { at: 4.2 };
        assert_close(s.eval(4.2), 1.0);
        assert_close(s.eval(4.200001), 0.0);
        assert_eq!(s.support(), (4.2, 4.2));
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(MembershipFunction::trapezoid(2.0, 1.0, 3.0, 4.0).is_err());
        assert!(MembershipFunction::trapezoid(0.0, 1.0, 3.0, 2.0).is_err());
        assert!(MembershipFunction::triangle(5.0, 1.0, 9.0).is_err());
        assert!(MembershipFunction::crisp(2.0, 1.0).is_err());
        assert!(MembershipFunction::trapezoid(f64::NAN, 1.0, 2.0, 3.0).is_err());
    }

    #[test]
    fn support_and_core() {
        let t = MembershipFunction::trapezoid(1.0, 2.0, 3.0, 5.0).unwrap();
        assert_eq!(t.support(), (1.0, 5.0));
        assert_eq!(t.core(), (2.0, 3.0));
        assert!(t.is_core(2.5));
        assert!(!t.is_core(1.5));
    }

    #[test]
    fn alpha_cut_trapezoid() {
        let t = MembershipFunction::trapezoid(0.0, 10.0, 20.0, 30.0).unwrap();
        let (lo, hi) = t.alpha_cut(0.5).unwrap();
        assert_close(lo, 5.0);
        assert_close(hi, 25.0);
        let (lo, hi) = t.alpha_cut(1.0).unwrap();
        assert_close(lo, 10.0);
        assert_close(hi, 20.0);
        assert!(t.alpha_cut(0.0).is_none());
        assert!(t.alpha_cut(1.5).is_none());
    }

    proptest! {
        #[test]
        fn eval_always_in_unit_interval(
            pts in proptest::collection::vec(-1e6..1e6f64, 4),
            x in -2e6..2e6f64,
        ) {
            let mut p = pts.clone();
            p.sort_by(|u, v| u.partial_cmp(v).unwrap());
            let t = MembershipFunction::trapezoid(p[0], p[1], p[2], p[3]).unwrap();
            let g = t.eval(x);
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn alpha_cuts_are_nested(
            pts in proptest::collection::vec(-1e6..1e6f64, 4),
            a1 in 0.01..0.99f64,
            delta in 0.001..0.5f64,
        ) {
            let mut p = pts.clone();
            p.sort_by(|u, v| u.partial_cmp(v).unwrap());
            let t = MembershipFunction::trapezoid(p[0], p[1], p[2], p[3]).unwrap();
            let a2 = (a1 + delta).min(1.0);
            let (lo1, hi1) = t.alpha_cut(a1).unwrap();
            let (lo2, hi2) = t.alpha_cut(a2).unwrap();
            // Higher alpha => smaller (nested) cut.
            prop_assert!(lo2 >= lo1 - 1e-9);
            prop_assert!(hi2 <= hi1 + 1e-9);
        }

        #[test]
        fn core_points_eval_to_one(
            pts in proptest::collection::vec(-1e3..1e3f64, 4),
        ) {
            let mut p = pts.clone();
            p.sort_by(|u, v| u.partial_cmp(v).unwrap());
            let t = MembershipFunction::trapezoid(p[0], p[1], p[2], p[3]).unwrap();
            let (b, c) = t.core();
            let mid = (b + c) / 2.0;
            prop_assert!((t.eval(mid) - 1.0).abs() < 1e-12);
        }
    }
}
