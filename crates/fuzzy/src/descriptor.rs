//! Interned descriptors and compact descriptor sets.
//!
//! Summary intents, grid cells and query clauses all manipulate *sets of
//! labels of one attribute*. Vocabularies are small (the paper's BK has a
//! handful of labels per attribute; even SNOMED-style taxonomies are cut to
//! a working vocabulary), so we intern each label to a [`LabelId`] (`u16`)
//! and represent a set as a 128-bit bitset ([`DescriptorSet`]). Set algebra
//! (the hot path of valuation during query routing) becomes single-word
//! bit operations.

use serde::{Deserialize, Serialize};

/// Maximum number of labels a single attribute vocabulary may hold.
///
/// 128 labels is far beyond the granularity the paper uses (3–7 labels per
/// attribute) while keeping [`DescriptorSet`] `Copy` and branch-free.
pub const MAX_LABELS: usize = 128;

/// Index of a label inside one attribute's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelId(pub u16);

impl LabelId {
    /// The label index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A membership grade in `[0, 1]`.
pub type Grade = f64;

/// A set of labels of a single attribute, as a 128-bit bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DescriptorSet(pub u128);

impl DescriptorSet {
    /// The empty set.
    pub const EMPTY: Self = Self(0);

    /// Builds a set holding a single label.
    #[inline]
    pub fn singleton(label: LabelId) -> Self {
        debug_assert!(label.index() < MAX_LABELS);
        Self(1u128 << label.index())
    }

    /// Builds a set from an iterator of labels.
    pub fn from_labels<I: IntoIterator<Item = LabelId>>(labels: I) -> Self {
        let mut s = Self::EMPTY;
        for l in labels {
            s.insert(l);
        }
        s
    }

    /// Builds the full set over the first `n` labels.
    pub fn all(n: usize) -> Self {
        assert!(n <= MAX_LABELS, "vocabulary too large");
        if n == MAX_LABELS {
            Self(u128::MAX)
        } else {
            Self((1u128 << n) - 1)
        }
    }

    /// Inserts a label.
    #[inline]
    pub fn insert(&mut self, label: LabelId) {
        debug_assert!(label.index() < MAX_LABELS);
        self.0 |= 1u128 << label.index();
    }

    /// Removes a label.
    #[inline]
    pub fn remove(&mut self, label: LabelId) {
        self.0 &= !(1u128 << label.index());
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, label: LabelId) -> bool {
        self.0 & (1u128 << label.index()) != 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no label is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// True when every label of `self` is in `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True when the two sets share at least one label.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of labels present in `self` but not in `other` plus the
    /// converse: the symmetric-difference cardinality. Used by the
    /// maintenance layer to quantify descriptor appearance/disappearance.
    #[inline]
    pub fn symmetric_distance(&self, other: &Self) -> usize {
        (self.0 ^ other.0).count_ones() as usize
    }

    /// Iterates over the labels in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        let bits = self.0;
        (0..MAX_LABELS as u16).filter_map(move |i| {
            if bits & (1u128 << i) != 0 {
                Some(LabelId(i))
            } else {
                None
            }
        })
    }
}

impl FromIterator<LabelId> for DescriptorSet {
    fn from_iter<T: IntoIterator<Item = LabelId>>(iter: T) -> Self {
        Self::from_labels(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singleton_and_contains() {
        let s = DescriptorSet::singleton(LabelId(3));
        assert!(s.contains(LabelId(3)));
        assert!(!s.contains(LabelId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = DescriptorSet::EMPTY;
        assert!(s.is_empty());
        s.insert(LabelId(0));
        s.insert(LabelId(127));
        assert_eq!(s.len(), 2);
        s.remove(LabelId(0));
        assert!(!s.contains(LabelId(0)));
        assert!(s.contains(LabelId(127)));
    }

    #[test]
    fn all_covers_prefix() {
        let s = DescriptorSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(LabelId(4)));
        assert!(!s.contains(LabelId(5)));
        assert_eq!(DescriptorSet::all(MAX_LABELS).len(), MAX_LABELS);
    }

    #[test]
    fn set_algebra() {
        let a = DescriptorSet::from_labels([LabelId(0), LabelId(1), LabelId(2)]);
        let b = DescriptorSet::from_labels([LabelId(2), LabelId(3)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 1);
        assert_eq!(a.difference(b).len(), 2);
        assert!(a.intersects(&b));
        assert!(!a.is_subset_of(&b));
        assert!(DescriptorSet::singleton(LabelId(2)).is_subset_of(&a));
        assert_eq!(a.symmetric_distance(&b), 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = DescriptorSet::from_labels([LabelId(9), LabelId(1), LabelId(64)]);
        let labels: Vec<u16> = s.iter().map(|l| l.0).collect();
        assert_eq!(labels, vec![1, 9, 64]);
    }

    proptest! {
        #[test]
        fn union_is_superset(a in any::<u128>(), b in any::<u128>()) {
            let (a, b) = (DescriptorSet(a), DescriptorSet(b));
            prop_assert!(a.is_subset_of(&a.union(b)));
            prop_assert!(b.is_subset_of(&a.union(b)));
        }

        #[test]
        fn intersection_is_subset(a in any::<u128>(), b in any::<u128>()) {
            let (a, b) = (DescriptorSet(a), DescriptorSet(b));
            prop_assert!(a.intersection(b).is_subset_of(&a));
            prop_assert!(a.intersection(b).is_subset_of(&b));
        }

        #[test]
        fn demorgan_cardinality(a in any::<u128>(), b in any::<u128>()) {
            let (a, b) = (DescriptorSet(a), DescriptorSet(b));
            // |A ∪ B| = |A| + |B| − |A ∩ B|
            prop_assert_eq!(
                a.union(b).len(),
                a.len() + b.len() - a.intersection(b).len()
            );
        }

        #[test]
        fn from_iter_roundtrip(labels in proptest::collection::btree_set(0u16..128, 0..40)) {
            let s: DescriptorSet = labels.iter().copied().map(LabelId).collect();
            prop_assert_eq!(s.len(), labels.len());
            let back: Vec<u16> = s.iter().map(|l| l.0).collect();
            let want: Vec<u16> = labels.into_iter().collect();
            prop_assert_eq!(back, want);
        }
    }
}
