//! Error type for background-knowledge construction and validation.

use std::fmt;

/// Errors raised while building or validating fuzzy vocabularies.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A membership function was given parameters that do not describe a
    /// valid shape (e.g. a trapezoid with `a > b`).
    InvalidShape(String),
    /// A vocabulary exceeded [`crate::descriptor::MAX_LABELS`] labels.
    TooManyLabels {
        /// The offending attribute.
        attribute: String,
        /// How many labels were supplied.
        got: usize,
    },
    /// Two labels in the same vocabulary share a name.
    DuplicateLabel {
        /// The offending attribute.
        attribute: String,
        /// The repeated label.
        label: String,
    },
    /// A partition failed Ruspini validation (memberships do not sum to 1).
    NotRuspini {
        /// The offending attribute.
        attribute: String,
        /// Domain point where the violation was found.
        at: f64,
        /// The membership sum observed there.
        sum: f64,
    },
    /// A partition leaves part of the domain uncovered.
    UncoveredDomain {
        /// The offending attribute.
        attribute: String,
        /// Uncovered domain point.
        at: f64,
    },
    /// An attribute name was not found in the background knowledge.
    UnknownAttribute(String),
    /// A label name was not found in an attribute vocabulary.
    UnknownLabel {
        /// The attribute whose vocabulary was searched.
        attribute: String,
        /// The missing label.
        label: String,
    },
    /// A taxonomy edge refers to a missing node or would create a cycle.
    BadTaxonomy(String),
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidShape(msg) => write!(f, "invalid membership shape: {msg}"),
            FuzzyError::TooManyLabels { attribute, got } => write!(
                f,
                "vocabulary for `{attribute}` has {got} labels, max is {}",
                crate::descriptor::MAX_LABELS
            ),
            FuzzyError::DuplicateLabel { attribute, label } => {
                write!(
                    f,
                    "duplicate label `{label}` in vocabulary for `{attribute}`"
                )
            }
            FuzzyError::NotRuspini { attribute, at, sum } => write!(
                f,
                "partition on `{attribute}` is not Ruspini: memberships at {at} sum to {sum}"
            ),
            FuzzyError::UncoveredDomain { attribute, at } => {
                write!(
                    f,
                    "partition on `{attribute}` does not cover domain point {at}"
                )
            }
            FuzzyError::UnknownAttribute(name) => {
                write!(f, "attribute `{name}` not found in background knowledge")
            }
            FuzzyError::UnknownLabel { attribute, label } => {
                write!(
                    f,
                    "label `{label}` not found in vocabulary for `{attribute}`"
                )
            }
            FuzzyError::BadTaxonomy(msg) => write!(f, "bad taxonomy: {msg}"),
        }
    }
}

impl std::error::Error for FuzzyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = FuzzyError::UnknownAttribute("bmi".into());
        assert!(err.to_string().contains("bmi"));
        let err = FuzzyError::NotRuspini {
            attribute: "age".into(),
            at: 20.0,
            sum: 1.4,
        };
        let s = err.to_string();
        assert!(s.contains("age") && s.contains("1.4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FuzzyError>();
    }
}
