//! Background Knowledge (BK): the per-attribute vocabularies that drive
//! summarization.
//!
//! The paper (§3.2.1): *"The fuzzy set theory is used to translate records
//! according to a Background Knowledge (BK) provided by the user [...] built
//! over the attributes that are considered relevant to the summarization
//! process."* In the P2P setting all peers share a **Common Background
//! Knowledge (CBK)** (§4.1) so their summaries can be merged; the cited
//! real-world example is SNOMED CT.
//!
//! [`BackgroundKnowledge::medical_cbk`] reproduces the paper's running
//! example exactly (Figure 2 + Tables 1–2): linguistic partitions on `age`
//! and `bmi`, flat taxonomies on `sex` and `disease`.

use serde::{Deserialize, Serialize};

use crate::descriptor::{DescriptorSet, Grade, LabelId};
use crate::error::FuzzyError;
use crate::linguistic::LinguisticVariable;
use crate::partition::FuzzyPartition;
use crate::taxonomy::Taxonomy;

/// The vocabulary of one summarized attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeVocabulary {
    /// Numeric attribute described by a linguistic variable.
    Numeric(LinguisticVariable),
    /// Categorical attribute described by a taxonomy.
    Categorical(Taxonomy),
}

impl AttributeVocabulary {
    /// The attribute name.
    pub fn name(&self) -> &str {
        match self {
            Self::Numeric(v) => v.name(),
            Self::Categorical(t) => t.name(),
        }
    }

    /// Number of labels in the vocabulary.
    pub fn label_count(&self) -> usize {
        match self {
            Self::Numeric(v) => v.label_count(),
            Self::Categorical(t) => t.label_count(),
        }
    }

    /// Looks a label up by name.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        match self {
            Self::Numeric(v) => v.label_id(label),
            Self::Categorical(t) => t.label_id(label),
        }
    }

    /// The name of a label id.
    pub fn label_name(&self, id: LabelId) -> Option<&str> {
        match self {
            Self::Numeric(v) => v.label_name(id),
            Self::Categorical(t) => t.label_name(id),
        }
    }

    /// Fuzzifies a numeric value (no-op set for categorical vocabularies).
    pub fn fuzzify_numeric(&self, x: f64) -> Vec<(LabelId, Grade)> {
        match self {
            Self::Numeric(v) => v.fuzzify(x),
            Self::Categorical(_) => Vec::new(),
        }
    }

    /// Fuzzifies with threshold `tau` and renormalization (numeric) or
    /// crisp categorization (categorical).
    pub fn descriptors_for_numeric(&self, x: f64, tau: f64) -> Vec<(LabelId, Grade)> {
        match self {
            Self::Numeric(v) => v.fuzzify_pruned(x, tau),
            Self::Categorical(_) => Vec::new(),
        }
    }

    /// Maps a categorical value to descriptors (empty for numeric).
    pub fn descriptors_for_text(&self, value: &str) -> Vec<(LabelId, Grade)> {
        match self {
            Self::Numeric(_) => Vec::new(),
            Self::Categorical(t) => t.categorize(value),
        }
    }

    /// Descriptor set for a numeric range predicate (`lo..=hi`).
    pub fn labels_for_range(&self, lo: f64, hi: f64) -> DescriptorSet {
        match self {
            Self::Numeric(v) => v.labels_overlapping(lo, hi, 0.01),
            Self::Categorical(_) => DescriptorSet::EMPTY,
        }
    }

    /// The numeric support interval covered by a descriptor set: the
    /// union of the labels' supports (`None` for categorical attributes
    /// or empty sets). Lets answer renderers turn `bmi = {underweight,
    /// normal}` back into a concrete range like `[0, 27]`.
    pub fn support_of_set(&self, set: DescriptorSet) -> Option<(f64, f64)> {
        match self {
            Self::Numeric(var) => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for l in set.iter() {
                    let term = var.terms().get(l.index())?;
                    let (a, b) = term.mf.support();
                    lo = lo.min(a);
                    hi = hi.max(b);
                }
                (lo <= hi).then_some((lo, hi))
            }
            Self::Categorical(_) => None,
        }
    }

    /// Descriptor set for an equality predicate on a label/term name,
    /// expanded down the taxonomy for categorical attributes so that
    /// querying an inner term also matches its specializations.
    pub fn labels_for_term(&self, term: &str) -> Result<DescriptorSet, FuzzyError> {
        let id = self
            .label_id(term)
            .ok_or_else(|| FuzzyError::UnknownLabel {
                attribute: self.name().to_string(),
                label: term.to_string(),
            })?;
        Ok(match self {
            Self::Numeric(_) => DescriptorSet::singleton(id),
            Self::Categorical(t) => t.expand_down(DescriptorSet::singleton(id)),
        })
    }
}

/// The Background Knowledge: an ordered list of attribute vocabularies.
///
/// Attribute order is significant — it defines the attribute indices used
/// by grid cells and summary intents, so all peers sharing a CBK agree on
/// it (that is precisely what "common" buys the protocol).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundKnowledge {
    name: String,
    attributes: Vec<AttributeVocabulary>,
    /// Mapping-service pruning threshold τ (see
    /// [`LinguisticVariable::fuzzify_pruned`]). Default 0.2.
    pub tau: f64,
}

impl BackgroundKnowledge {
    /// Creates an empty BK.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            tau: 0.2,
        }
    }

    /// The BK's name (e.g. "medical-cbk-v1"); peers must agree on it.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an attribute vocabulary; order of insertion = attribute index.
    pub fn push_attribute(&mut self, vocab: AttributeVocabulary) -> Result<usize, FuzzyError> {
        if self.attributes.iter().any(|a| a.name() == vocab.name()) {
            return Err(FuzzyError::DuplicateLabel {
                attribute: vocab.name().to_string(),
                label: "<attribute>".to_string(),
            });
        }
        self.attributes.push(vocab);
        Ok(self.attributes.len() - 1)
    }

    /// Number of summarized attributes (the dimension `n` of the space
    /// `E = ⟨A1..An⟩` in Definition 1).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The vocabularies in attribute-index order.
    pub fn attributes(&self) -> &[AttributeVocabulary] {
        &self.attributes
    }

    /// Vocabulary by attribute name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeVocabulary> {
        self.attributes.iter().find(|a| a.name() == name)
    }

    /// Attribute index by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Vocabulary by index.
    pub fn attribute_at(&self, idx: usize) -> Option<&AttributeVocabulary> {
        self.attributes.get(idx)
    }

    /// Upper bound on the number of distinct grid cells this BK can
    /// produce: the product of per-attribute label counts. §6.1.1 uses
    /// this to argue summary storage is bounded ("a maximum number of
    /// leaves that cover all the possible combinations of the BK
    /// descriptors").
    pub fn max_cells(&self) -> u128 {
        self.attributes
            .iter()
            .map(|a| a.label_count() as u128)
            .product()
    }

    /// The paper's running medical CBK:
    ///
    /// * `age`: `young / adult / old` with Figure 2's crossings
    ///   (`20 ↦ {0.7/young, 0.3/adult}`),
    /// * `sex`: `female / male`,
    /// * `bmi`: `underweight / normal / overweight` with the §3.2.1 cores
    ///   (underweight ⊇ [15, 17.5] at grade 1, normal ⊇ [19.5, 24]),
    /// * `disease`: a small SNOMED-shaped taxonomy containing the diseases
    ///   of Table 1 (anorexia, malaria) among others.
    pub fn medical_cbk() -> Self {
        let mut bk = Self::new("medical-cbk-v1");
        bk.push_attribute(AttributeVocabulary::Numeric(
            FuzzyPartition::from_cores(
                "age",
                (0.0, 120.0),
                &[
                    ("young", 0.0, 17.0),
                    ("adult", 27.0, 55.0),
                    ("old", 65.0, 120.0),
                ],
            )
            .expect("static partition"),
        ))
        .expect("fresh attr");
        bk.push_attribute(AttributeVocabulary::Categorical(
            Taxonomy::flat("sex", "any_sex", &["female", "male"]).expect("static taxonomy"),
        ))
        .expect("fresh attr");
        bk.push_attribute(AttributeVocabulary::Numeric(
            FuzzyPartition::from_cores(
                "bmi",
                (0.0, 60.0),
                &[
                    ("underweight", 0.0, 17.5),
                    ("normal", 19.5, 24.0),
                    ("overweight", 27.0, 60.0),
                ],
            )
            .expect("static partition"),
        ))
        .expect("fresh attr");
        let mut disease = Taxonomy::new("disease", "any_disease");
        let infectious = disease
            .add_child(disease.root(), "infectious")
            .expect("static");
        disease.add_child(infectious, "malaria").expect("static");
        disease
            .add_child(infectious, "tuberculosis")
            .expect("static");
        disease.add_child(infectious, "influenza").expect("static");
        let eating = disease
            .add_child(disease.root(), "eating_disorder")
            .expect("static");
        disease.add_child(eating, "anorexia").expect("static");
        disease.add_child(eating, "bulimia").expect("static");
        let chronic = disease
            .add_child(disease.root(), "chronic")
            .expect("static");
        disease.add_child(chronic, "diabetes").expect("static");
        disease.add_child(chronic, "hypertension").expect("static");
        disease.add_child(chronic, "asthma").expect("static");
        bk.push_attribute(AttributeVocabulary::Categorical(disease))
            .expect("fresh attr");
        bk
    }

    /// A synthetic CBK with `arity` numeric attributes of `labels` labels
    /// each — the knob benchmarks turn to grow the grid (K cells) without
    /// touching the engine. Granularity drives cell count, as §3.2.3 notes.
    pub fn synthetic(arity: usize, labels: usize) -> Result<Self, FuzzyError> {
        let mut bk = Self::new(format!("synthetic-{arity}x{labels}"));
        for i in 0..arity {
            bk.push_attribute(AttributeVocabulary::Numeric(FuzzyPartition::uniform(
                format!("attr{i}"),
                (0.0, 100.0),
                "v",
                labels,
                0.6,
            )?))?;
        }
        Ok(bk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medical_cbk_layout() {
        let bk = BackgroundKnowledge::medical_cbk();
        assert_eq!(bk.arity(), 4);
        assert_eq!(bk.attribute_index("age"), Some(0));
        assert_eq!(bk.attribute_index("sex"), Some(1));
        assert_eq!(bk.attribute_index("bmi"), Some(2));
        assert_eq!(bk.attribute_index("disease"), Some(3));
        assert!(bk.attribute("nope").is_none());
    }

    #[test]
    fn figure2_grades_via_bk() {
        let bk = BackgroundKnowledge::medical_cbk();
        let age = bk.attribute("age").unwrap();
        let pairs = age.fuzzify_numeric(20.0);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].1 - 0.7).abs() < 1e-12, "young 0.7");
        assert!((pairs[1].1 - 0.3).abs() < 1e-12, "adult 0.3");
    }

    #[test]
    fn bmi_cores_match_section_321() {
        let bk = BackgroundKnowledge::medical_cbk();
        let bmi = bk.attribute("bmi").unwrap();
        // "underweight perfectly matches (with degree 1) range [15, 17.5]"
        for x in [15.0, 16.5, 17.0, 17.5] {
            let best = bmi.descriptors_for_numeric(x, 0.2);
            assert_eq!(bmi.label_name(best[0].0).unwrap(), "underweight");
            assert!((best[0].1 - 1.0).abs() < 1e-9, "bmi {x}");
        }
        // "normal perfectly matches range [19.5, 24]"
        for x in [19.5, 20.0, 24.0] {
            let best = bmi.descriptors_for_numeric(x, 0.2);
            assert_eq!(bmi.label_name(best[0].0).unwrap(), "normal");
            assert!((best[0].1 - 1.0).abs() < 1e-9, "bmi {x}");
        }
    }

    #[test]
    fn disease_terms_of_table1_exist() {
        let bk = BackgroundKnowledge::medical_cbk();
        let d = bk.attribute("disease").unwrap();
        assert!(d.label_id("anorexia").is_some());
        assert!(d.label_id("malaria").is_some());
        let pairs = d.descriptors_for_text("malaria");
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, 1.0);
    }

    #[test]
    fn query_reformulation_helpers() {
        let bk = BackgroundKnowledge::medical_cbk();
        // §5.1: BMI < 19 → {underweight, normal}
        let bmi = bk.attribute("bmi").unwrap();
        let set = bmi.labels_for_range(0.0, 19.0);
        assert_eq!(set.len(), 2);
        // Inner taxonomy term expands to its leaves.
        let disease = bk.attribute("disease").unwrap();
        let inf = disease.labels_for_term("infectious").unwrap();
        assert_eq!(inf.len(), 4); // infectious + malaria + tuberculosis + influenza
        assert!(disease.labels_for_term("gout").is_err());
    }

    #[test]
    fn support_of_set_unions_label_supports() {
        let bk = BackgroundKnowledge::medical_cbk();
        let bmi = bk.attribute("bmi").unwrap();
        let set = DescriptorSet::from_labels([
            bmi.label_id("underweight").unwrap(),
            bmi.label_id("normal").unwrap(),
        ]);
        let (lo, hi) = bmi.support_of_set(set).unwrap();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 27.0, "normal's support ends at overweight's core start");
        assert!(bmi.support_of_set(DescriptorSet::EMPTY).is_none());
        let sex = bk.attribute("sex").unwrap();
        assert!(sex.support_of_set(DescriptorSet::all(2)).is_none());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut bk = BackgroundKnowledge::medical_cbk();
        let dup = AttributeVocabulary::Categorical(Taxonomy::flat("sex", "any", &["x"]).unwrap());
        assert!(bk.push_attribute(dup).is_err());
    }

    #[test]
    fn max_cells_product() {
        let bk = BackgroundKnowledge::synthetic(3, 5).unwrap();
        assert_eq!(bk.max_cells(), 125);
        let medical = BackgroundKnowledge::medical_cbk();
        // 3 (age) * 3 (sex taxonomy) * 3 (bmi) * 12 (disease taxonomy)
        assert_eq!(medical.max_cells(), 3 * 3 * 3 * 12);
    }

    #[test]
    fn synthetic_bk_partitions_validate() {
        let bk = BackgroundKnowledge::synthetic(2, 7).unwrap();
        for attr in bk.attributes() {
            if let AttributeVocabulary::Numeric(v) = attr {
                crate::partition::FuzzyPartition::validate(v, 512, 1e-9).unwrap();
            }
        }
    }

    #[test]
    fn serde_roundtrip_via_tokens() {
        // serde derive is exercised through a lossless clone through the
        // `serde_test`-free route: Debug equality after a serialize +
        // deserialize through a serde-aware in-memory format would need an
        // extra dependency, so assert the derives exist by checking trait
        // bounds instead.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<BackgroundKnowledge>();
        assert_serde::<AttributeVocabulary>();
    }
}
