//! Fuzzy partitions (Ruspini 1969, cited by the paper through Zadeh \[26\]).
//!
//! A *fuzzy partition* of a numeric domain is a family of membership
//! functions whose grades sum to 1 everywhere. Ruspini partitions give the
//! mapping service its key property: every raw value is fully accounted
//! for across grid cells (tuple counts are conserved), and the "smooth
//! transition between categories" the paper credits for avoiding threshold
//! effects.

use crate::error::FuzzyError;
use crate::linguistic::{LinguisticVariable, Term};
use crate::membership::MembershipFunction;

/// Validated Ruspini partition builder for [`LinguisticVariable`]s.
#[derive(Debug, Clone)]
pub struct FuzzyPartition;

impl FuzzyPartition {
    /// Validates that `var` forms a Ruspini partition over its domain:
    /// at every probe point the sum of grades is 1 (within `eps`).
    ///
    /// Probing uses a dense uniform grid (`samples` points) plus every
    /// shape breakpoint, which catches all violations of piecewise-linear
    /// families (the only shapes the builders produce).
    pub fn validate(var: &LinguisticVariable, samples: usize, eps: f64) -> Result<(), FuzzyError> {
        let (lo, hi) = var.domain();
        let mut probes: Vec<f64> = Vec::with_capacity(samples + var.terms().len() * 4);
        if samples > 1 {
            let step = (hi - lo) / (samples as f64 - 1.0);
            probes.extend((0..samples).map(|i| lo + step * i as f64));
        }
        for t in var.terms() {
            let (a, d) = t.mf.support();
            let (b, c) = t.mf.core();
            for p in [a, b, c, d] {
                if p >= lo && p <= hi {
                    probes.push(p);
                }
            }
        }
        for &x in &probes {
            let sum: f64 = var.terms().iter().map(|t| t.mf.eval(x)).sum();
            if (sum - 1.0).abs() > eps {
                return if sum < eps {
                    Err(FuzzyError::UncoveredDomain {
                        attribute: var.name().into(),
                        at: x,
                    })
                } else {
                    Err(FuzzyError::NotRuspini {
                        attribute: var.name().into(),
                        at: x,
                        sum,
                    })
                };
            }
        }
        Ok(())
    }

    /// Builds a Ruspini partition of trapezoids from *core intervals*.
    ///
    /// `cores` lists, per label, the interval over which membership is 1;
    /// consecutive cores must be disjoint and ordered. Between core `i` and
    /// core `i+1` the two trapezoids cross linearly, so grades always sum
    /// to 1. The first label extends crisply to the domain minimum and the
    /// last to the domain maximum.
    ///
    /// This is exactly how the paper's Figure 2 partitions are shaped:
    /// `age: young [0,17], adult [27,55], old [65,120]` yields the
    /// crossings that map age 20 to `{0.7/young, 0.3/adult}`.
    pub fn from_cores(
        name: impl Into<String>,
        domain: (f64, f64),
        cores: &[(&str, f64, f64)],
    ) -> Result<LinguisticVariable, FuzzyError> {
        let name = name.into();
        if cores.is_empty() {
            return Err(FuzzyError::InvalidShape(format!(
                "partition `{name}` needs >=1 core"
            )));
        }
        for w in cores.windows(2) {
            if w[0].2 > w[1].1 {
                return Err(FuzzyError::InvalidShape(format!(
                    "cores of `{}` and `{}` overlap or are out of order",
                    w[0].0, w[1].0
                )));
            }
        }
        let (dlo, dhi) = domain;
        let mut terms = Vec::with_capacity(cores.len());
        for (i, &(label, clo, chi)) in cores.iter().enumerate() {
            let a = if i == 0 { dlo } else { cores[i - 1].2 };
            let b = if i == 0 { dlo } else { clo };
            let c = if i == cores.len() - 1 { dhi } else { chi };
            let d = if i == cores.len() - 1 {
                dhi
            } else {
                cores[i + 1].1
            };
            terms.push(Term {
                label: label.to_string(),
                mf: MembershipFunction::trapezoid(a, b, c, d)?,
            });
        }
        let var = LinguisticVariable::new(name, domain, terms)?;
        Self::validate(&var, 256, 1e-9)?;
        Ok(var)
    }

    /// Builds a uniform Ruspini partition of `n` labels named
    /// `prefix_0 .. prefix_{n-1}`, with cores of width `core_frac` of each
    /// band. Useful for synthetic BKs in benchmarks where only granularity
    /// matters (the paper's §3.2.3: "a fine-grained and overlapping BK
    /// will produce much more cells than a coarse and crisp one").
    pub fn uniform(
        name: impl Into<String>,
        domain: (f64, f64),
        prefix: &str,
        n: usize,
        core_frac: f64,
    ) -> Result<LinguisticVariable, FuzzyError> {
        if n == 0 {
            return Err(FuzzyError::InvalidShape(
                "uniform partition needs n >= 1".into(),
            ));
        }
        if !(0.0 < core_frac && core_frac <= 1.0) {
            return Err(FuzzyError::InvalidShape(format!(
                "core_frac must be in (0,1], got {core_frac}"
            )));
        }
        let (lo, hi) = domain;
        let band = (hi - lo) / n as f64;
        let margin = band * (1.0 - core_frac) / 2.0;
        let labels: Vec<String> = (0..n).map(|i| format!("{prefix}_{i}")).collect();
        let cores: Vec<(&str, f64, f64)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let blo = lo + band * i as f64;
                let bhi = blo + band;
                (l.as_str(), blo + margin, bhi - margin)
            })
            .collect();
        Self::from_cores(name, domain, &cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure2_age_partition_is_ruspini() {
        let v = FuzzyPartition::from_cores(
            "age",
            (0.0, 120.0),
            &[
                ("young", 0.0, 17.0),
                ("adult", 27.0, 55.0),
                ("old", 65.0, 120.0),
            ],
        )
        .unwrap();
        FuzzyPartition::validate(&v, 1024, 1e-9).unwrap();
        // Figure 2's crossing at age 20.
        let pairs = v.fuzzify(20.0);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].1 - 0.7).abs() < 1e-12);
        assert!((pairs[1].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn single_core_partition_is_crisp_everywhere() {
        let v = FuzzyPartition::from_cores("flag", (0.0, 1.0), &[("always", 0.2, 0.8)]).unwrap();
        assert_eq!(v.fuzzify(0.0).len(), 1);
        assert!((v.fuzzify(0.99)[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_cores_rejected() {
        let err =
            FuzzyPartition::from_cores("x", (0.0, 10.0), &[("a", 0.0, 5.0), ("b", 4.0, 10.0)])
                .unwrap_err();
        assert!(matches!(err, FuzzyError::InvalidShape(_)));
    }

    #[test]
    fn validate_rejects_gap() {
        // Hand-built variable with a hole in coverage.
        let v = LinguisticVariable::new(
            "holey",
            (0.0, 10.0),
            vec![
                Term {
                    label: "lo".into(),
                    mf: MembershipFunction::crisp(0.0, 4.0).unwrap(),
                },
                Term {
                    label: "hi".into(),
                    mf: MembershipFunction::crisp(6.0, 10.0).unwrap(),
                },
            ],
        )
        .unwrap();
        let err = FuzzyPartition::validate(&v, 512, 1e-9).unwrap_err();
        assert!(matches!(err, FuzzyError::UncoveredDomain { .. }));
    }

    #[test]
    fn validate_rejects_over_coverage() {
        let v = LinguisticVariable::new(
            "fat",
            (0.0, 10.0),
            vec![
                Term {
                    label: "lo".into(),
                    mf: MembershipFunction::crisp(0.0, 6.0).unwrap(),
                },
                Term {
                    label: "hi".into(),
                    mf: MembershipFunction::crisp(4.0, 10.0).unwrap(),
                },
            ],
        )
        .unwrap();
        let err = FuzzyPartition::validate(&v, 512, 1e-9).unwrap_err();
        assert!(matches!(err, FuzzyError::NotRuspini { .. }));
    }

    #[test]
    fn uniform_partition_shapes() {
        let v = FuzzyPartition::uniform("load", (0.0, 100.0), "band", 5, 0.5).unwrap();
        assert_eq!(v.label_count(), 5);
        FuzzyPartition::validate(&v, 2048, 1e-9).unwrap();
    }

    #[test]
    fn uniform_rejects_bad_params() {
        assert!(FuzzyPartition::uniform("x", (0.0, 1.0), "b", 0, 0.5).is_err());
        assert!(FuzzyPartition::uniform("x", (0.0, 1.0), "b", 3, 0.0).is_err());
        assert!(FuzzyPartition::uniform("x", (0.0, 1.0), "b", 3, 1.5).is_err());
    }

    proptest! {
        /// Any partition built from random ordered cores passes Ruspini
        /// validation and conserves mass at random probe points.
        #[test]
        fn from_cores_always_ruspini(
            breaks in proptest::collection::vec(0.0..1000.0f64, 6),
            probe in 0.0..1000.0f64,
        ) {
            let mut b = breaks.clone();
            b.sort_by(|u, v| u.partial_cmp(v).unwrap());
            // Three cores: [b0,b1], [b2,b3], [b4,b5] over domain [0,1000].
            let v = FuzzyPartition::from_cores(
                "p",
                (0.0, 1000.0),
                &[("l0", b[0], b[1]), ("l1", b[2], b[3]), ("l2", b[4], b[5])],
            ).unwrap();
            let sum: f64 = v.terms().iter().map(|t| t.mf.eval(probe)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "mass {sum} at {probe}");
        }

        #[test]
        fn uniform_always_ruspini(
            n in 1usize..12,
            core_frac in 0.05..1.0f64,
            probe in 0.0..100.0f64,
        ) {
            let v = FuzzyPartition::uniform("u", (0.0, 100.0), "b", n, core_frac).unwrap();
            let sum: f64 = v.terms().iter().map(|t| t.mf.eval(probe)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
