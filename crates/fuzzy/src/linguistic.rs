//! Linguistic variables (Zadeh 1975).
//!
//! A linguistic variable attaches a vocabulary of labelled membership
//! functions to a numeric attribute, e.g. *age* with `young`, `adult`,
//! `old` (the paper's Figure 2). *Fuzzification* rewrites a raw value into
//! weighted descriptors: `20 years ↦ {0.7/young, 0.3/adult}`.

use serde::{Deserialize, Serialize};

use crate::descriptor::{DescriptorSet, Grade, LabelId, MAX_LABELS};
use crate::error::FuzzyError;
use crate::membership::MembershipFunction;

/// One labelled membership function inside a linguistic variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// Human-readable label ("young", "underweight", ...).
    pub label: String,
    /// The membership function giving grades over the numeric domain.
    pub mf: MembershipFunction,
}

/// A linguistic variable: a named numeric domain plus its terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinguisticVariable {
    name: String,
    /// Domain bounds the variable is expected to cover.
    domain: (f64, f64),
    terms: Vec<Term>,
}

impl LinguisticVariable {
    /// Creates a linguistic variable, validating label uniqueness and the
    /// vocabulary size bound.
    pub fn new(
        name: impl Into<String>,
        domain: (f64, f64),
        terms: Vec<Term>,
    ) -> Result<Self, FuzzyError> {
        let name = name.into();
        if terms.len() > MAX_LABELS {
            return Err(FuzzyError::TooManyLabels {
                attribute: name,
                got: terms.len(),
            });
        }
        for (i, t) in terms.iter().enumerate() {
            if terms[..i].iter().any(|u| u.label == t.label) {
                return Err(FuzzyError::DuplicateLabel {
                    attribute: name,
                    label: t.label.clone(),
                });
            }
        }
        Ok(Self {
            name,
            domain,
            terms,
        })
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared domain bounds.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// The vocabulary, in label-id order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.terms.len()
    }

    /// Looks a label up by name.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.terms
            .iter()
            .position(|t| t.label == label)
            .map(|i| LabelId(i as u16))
    }

    /// The label name for an id, if in range.
    pub fn label_name(&self, id: LabelId) -> Option<&str> {
        self.terms.get(id.index()).map(|t| t.label.as_str())
    }

    /// Fuzzifies a raw value: every label with a non-zero grade, in label
    /// order. This is the *mapping service*'s per-attribute step.
    pub fn fuzzify(&self, x: f64) -> Vec<(LabelId, Grade)> {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let g = t.mf.eval(x);
                (g > 0.0).then_some((LabelId(i as u16), g))
            })
            .collect()
    }

    /// Fuzzifies, drops grades below `tau`, and renormalizes the kept
    /// grades to sum to 1.
    ///
    /// This threshold-and-renormalize step is what makes the engine
    /// reproduce the paper's Table 2 exactly: tuple `t3` (age 18) grades
    /// `{0.9/young, 0.1/adult}`; with `tau = 0.2` the marginal `adult`
    /// reading is pruned and `young` is renormalized to 1, so `t3` lands
    /// entirely in cell `c1` and the cell's tuple count is 2.
    pub fn fuzzify_pruned(&self, x: f64, tau: f64) -> Vec<(LabelId, Grade)> {
        let mut kept: Vec<(LabelId, Grade)> = self
            .fuzzify(x)
            .into_iter()
            .filter(|&(_, g)| g >= tau)
            .collect();
        let total: f64 = kept.iter().map(|&(_, g)| g).sum();
        if total > 0.0 {
            for (_, g) in &mut kept {
                *g /= total;
            }
        }
        kept
    }

    /// The set of labels whose α-cut (at `alpha`) intersects `[lo, hi]`.
    /// Used by query reformulation to turn a range predicate such as
    /// `BMI < 19` into descriptors `{underweight, normal}`.
    pub fn labels_overlapping(&self, lo: f64, hi: f64, alpha: f64) -> DescriptorSet {
        let mut set = DescriptorSet::EMPTY;
        for (i, t) in self.terms.iter().enumerate() {
            if let Some((clo, chi)) = t.mf.alpha_cut(alpha) {
                if clo <= hi && chi >= lo {
                    set.insert(LabelId(i as u16));
                }
            }
        }
        set
    }

    /// The single best label for a value (highest grade; ties broken by
    /// label order). Returns `None` if no label covers `x`.
    pub fn best_label(&self, x: f64) -> Option<(LabelId, Grade)> {
        self.fuzzify(x)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn age_variable() -> LinguisticVariable {
        // The paper's Figure 2 shape (young / adult / old over age).
        LinguisticVariable::new(
            "age",
            (0.0, 120.0),
            vec![
                Term {
                    label: "young".into(),
                    mf: MembershipFunction::trapezoid(0.0, 0.0, 17.0, 27.0).unwrap(),
                },
                Term {
                    label: "adult".into(),
                    mf: MembershipFunction::trapezoid(17.0, 27.0, 55.0, 65.0).unwrap(),
                },
                Term {
                    label: "old".into(),
                    mf: MembershipFunction::trapezoid(55.0, 65.0, 120.0, 120.0).unwrap(),
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_mapping_of_age_20() {
        let v = age_variable();
        let pairs = v.fuzzify(20.0);
        assert_eq!(pairs.len(), 2);
        let young = v.label_id("young").unwrap();
        let adult = v.label_id("adult").unwrap();
        let get = |l: LabelId| pairs.iter().find(|p| p.0 == l).unwrap().1;
        assert!((get(young) - 0.7).abs() < 1e-12);
        assert!((get(adult) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pruning_renormalizes_age_18() {
        let v = age_variable();
        // Raw: {0.9/young, 0.1/adult}. With tau = 0.2 only young survives
        // and is renormalized to 1.0 (c1 in Table 2 then counts 2 tuples).
        let pairs = v.fuzzify_pruned(18.0, 0.2);
        assert_eq!(pairs.len(), 1);
        assert_eq!(v.label_name(pairs[0].0).unwrap(), "young");
        assert!((pairs[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_keeps_balanced_splits() {
        let v = age_variable();
        let pairs = v.fuzzify_pruned(20.0, 0.2);
        assert_eq!(pairs.len(), 2, "0.7/0.3 split must survive tau=0.2");
        let total: f64 = pairs.iter().map(|p| p.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_lookup_roundtrip() {
        let v = age_variable();
        for (i, t) in v.terms().iter().enumerate() {
            let id = v.label_id(&t.label).unwrap();
            assert_eq!(id, LabelId(i as u16));
            assert_eq!(v.label_name(id).unwrap(), t.label);
        }
        assert!(v.label_id("nope").is_none());
        assert!(v.label_name(LabelId(99)).is_none());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = LinguisticVariable::new(
            "x",
            (0.0, 1.0),
            vec![
                Term {
                    label: "a".into(),
                    mf: MembershipFunction::crisp(0.0, 0.5).unwrap(),
                },
                Term {
                    label: "a".into(),
                    mf: MembershipFunction::crisp(0.5, 1.0).unwrap(),
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, FuzzyError::DuplicateLabel { .. }));
    }

    #[test]
    fn range_reformulation_bmi_lt_19() {
        // The paper's §5.1 example: `BMI < 19` extends to
        // {underweight, normal} under the BK.
        let bmi = LinguisticVariable::new(
            "bmi",
            (0.0, 60.0),
            vec![
                Term {
                    label: "underweight".into(),
                    mf: MembershipFunction::trapezoid(0.0, 0.0, 17.5, 19.5).unwrap(),
                },
                Term {
                    label: "normal".into(),
                    mf: MembershipFunction::trapezoid(17.5, 19.5, 24.0, 27.0).unwrap(),
                },
                Term {
                    label: "overweight".into(),
                    mf: MembershipFunction::trapezoid(24.0, 27.0, 60.0, 60.0).unwrap(),
                },
            ],
        )
        .unwrap();
        let set = bmi.labels_overlapping(0.0, 19.0, 0.01);
        assert!(set.contains(bmi.label_id("underweight").unwrap()));
        assert!(set.contains(bmi.label_id("normal").unwrap()));
        assert!(!set.contains(bmi.label_id("overweight").unwrap()));
    }

    #[test]
    fn best_label_picks_dominant_reading() {
        let v = age_variable();
        let (id, g) = v.best_label(20.0).unwrap();
        assert_eq!(v.label_name(id).unwrap(), "young");
        assert!((g - 0.7).abs() < 1e-12);
        assert!(v.best_label(-10.0).is_none());
    }
}
