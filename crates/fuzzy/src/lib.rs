#![warn(missing_docs)]

//! Fuzzy-set substrate for the *Summary Management in P2P Systems* (EDBT 2008)
//! reproduction.
//!
//! The SaintEtiQ summarization engine (crate `saintetiq`) relies on Zadeh's
//! fuzzy set theory to rewrite raw database values into *linguistic
//! descriptors* ("young", "underweight", ...). This crate provides that
//! machinery from scratch:
//!
//! * [`membership`] — membership functions (trapezoidal, triangular,
//!   crisp, singleton) with support/core/α-cut queries;
//! * [`linguistic`] — linguistic variables: a named numeric domain carrying
//!   a list of labelled membership functions, able to *fuzzify* a value
//!   into `{grade/label}` pairs, e.g. `20 years → {0.7/young, 0.3/adult}`;
//! * [`partition`] — fuzzy (Ruspini) partitions and validated builders;
//! * [`taxonomy`] — hierarchical categorical vocabularies (the shape of
//!   SNOMED CT, which the paper cites as its Common Background Knowledge
//!   for medical collaborations);
//! * [`descriptor`] — compact interned descriptors and per-attribute
//!   descriptor bitsets, the currency of summary intents;
//! * [`bk`] — the Background Knowledge itself: one vocabulary per summarized
//!   attribute, with the paper's Figure 2 medical CBK as a ready-made preset.
//!
//! # Quick example
//!
//! ```
//! use fuzzy::BackgroundKnowledge;
//!
//! let bk = BackgroundKnowledge::medical_cbk();
//! let age = bk.attribute("age").unwrap();
//! let pairs = age.fuzzify_numeric(20.0);
//! // The paper's Figure 2: 20 years ↦ {0.7/young, 0.3/adult}
//! assert_eq!(pairs.len(), 2);
//! ```

pub mod bk;
pub mod descriptor;
pub mod error;
pub mod linguistic;
pub mod membership;
pub mod partition;
pub mod taxonomy;

pub use bk::{AttributeVocabulary, BackgroundKnowledge};
pub use descriptor::{DescriptorSet, Grade, LabelId};
pub use error::FuzzyError;
pub use linguistic::LinguisticVariable;
pub use membership::MembershipFunction;
pub use partition::FuzzyPartition;
pub use taxonomy::Taxonomy;
