//! Hierarchical categorical vocabularies.
//!
//! Categorical attributes (sex, disease) are described by *taxonomies*: a
//! tree of terms where leaves are raw database values and inner nodes are
//! generalizations. This is the shape of SNOMED CT, which the paper names
//! as the Common Background Knowledge of its medical-collaboration
//! scenario; we build a small synthetic equivalent (see
//! [`crate::bk::BackgroundKnowledge::medical_cbk`]) since SNOMED itself is
//! licensed. The protocol only needs a *shared* vocabulary, not a real
//! clinical one.

use serde::{Deserialize, Serialize};

use crate::descriptor::{DescriptorSet, Grade, LabelId, MAX_LABELS};
use crate::error::FuzzyError;

/// A node in the taxonomy tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct TaxNode {
    label: String,
    parent: Option<u16>,
    children: Vec<u16>,
}

/// A rooted tree of categorical terms.
///
/// Every node — leaf or inner — is a descriptor with a [`LabelId`]; the
/// root is id 0. Raw values map to leaves with grade 1 (categorical data
/// is crisp); generalization walks toward the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Taxonomy {
    name: String,
    nodes: Vec<TaxNode>,
}

impl Taxonomy {
    /// Creates a taxonomy with just a root term.
    pub fn new(name: impl Into<String>, root_label: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: vec![TaxNode {
                label: root_label.into(),
                parent: None,
                children: vec![],
            }],
        }
    }

    /// Builds a flat taxonomy: a root with the given leaves. This is the
    /// common case for small enumerations like `sex`.
    pub fn flat(
        name: impl Into<String>,
        root_label: impl Into<String>,
        leaves: &[&str],
    ) -> Result<Self, FuzzyError> {
        let mut t = Self::new(name, root_label);
        for l in leaves {
            t.add_child(LabelId(0), *l)?;
        }
        Ok(t)
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root descriptor (always `LabelId(0)`).
    pub fn root(&self) -> LabelId {
        LabelId(0)
    }

    /// Total number of terms (inner + leaf).
    pub fn label_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a child term under `parent` and returns its id.
    pub fn add_child(
        &mut self,
        parent: LabelId,
        label: impl Into<String>,
    ) -> Result<LabelId, FuzzyError> {
        let label = label.into();
        if self.nodes.len() >= MAX_LABELS {
            return Err(FuzzyError::TooManyLabels {
                attribute: self.name.clone(),
                got: self.nodes.len() + 1,
            });
        }
        if parent.index() >= self.nodes.len() {
            return Err(FuzzyError::BadTaxonomy(format!(
                "parent {} out of range in `{}`",
                parent.0, self.name
            )));
        }
        if self.nodes.iter().any(|n| n.label == label) {
            return Err(FuzzyError::DuplicateLabel {
                attribute: self.name.clone(),
                label,
            });
        }
        let id = LabelId(self.nodes.len() as u16);
        self.nodes.push(TaxNode {
            label,
            parent: Some(parent.0),
            children: vec![],
        });
        self.nodes[parent.index()].children.push(id.0);
        Ok(id)
    }

    /// Looks a term up by label.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| LabelId(i as u16))
    }

    /// The label of a term id.
    pub fn label_name(&self, id: LabelId) -> Option<&str> {
        self.nodes.get(id.index()).map(|n| n.label.as_str())
    }

    /// The parent of a term (None for the root).
    pub fn parent(&self, id: LabelId) -> Option<LabelId> {
        self.nodes
            .get(id.index())
            .and_then(|n| n.parent)
            .map(LabelId)
    }

    /// The children of a term.
    pub fn children(&self, id: LabelId) -> Vec<LabelId> {
        self.nodes
            .get(id.index())
            .map(|n| n.children.iter().copied().map(LabelId).collect())
            .unwrap_or_default()
    }

    /// True when the term has no children.
    pub fn is_leaf(&self, id: LabelId) -> bool {
        self.nodes
            .get(id.index())
            .map(|n| n.children.is_empty())
            .unwrap_or(false)
    }

    /// All leaves, in id order.
    pub fn leaves(&self) -> Vec<LabelId> {
        (0..self.nodes.len() as u16)
            .map(LabelId)
            .filter(|&l| self.is_leaf(l))
            .collect()
    }

    /// Maps a raw categorical value to descriptors. Exact term matches get
    /// grade 1; unknown values map to the root (the "anything" reading), so
    /// summarization never loses tuples.
    pub fn categorize(&self, value: &str) -> Vec<(LabelId, Grade)> {
        match self.label_id(value) {
            Some(id) => vec![(id, 1.0)],
            None => vec![(self.root(), 1.0)],
        }
    }

    /// The ancestors of a term from its parent up to the root.
    pub fn ancestors(&self, id: LabelId) -> Vec<LabelId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// All descendants of a term (not including itself).
    pub fn descendants(&self, id: LabelId) -> DescriptorSet {
        let mut set = DescriptorSet::EMPTY;
        let mut stack = self.children(id);
        while let Some(c) = stack.pop() {
            set.insert(c);
            stack.extend(self.children(c));
        }
        set
    }

    /// Expands a descriptor set downward: every term plus all of its
    /// descendants. Query reformulation uses this so that a predicate on
    /// an inner term ("infectious disease") also matches summaries that
    /// carry only leaf descriptors ("malaria").
    pub fn expand_down(&self, set: DescriptorSet) -> DescriptorSet {
        let mut out = set;
        for l in set.iter() {
            out = out.union(self.descendants(l));
        }
        out
    }

    /// The deepest common ancestor of two terms.
    pub fn common_ancestor(&self, a: LabelId, b: LabelId) -> LabelId {
        if a == b {
            return a;
        }
        let mut seen = DescriptorSet::singleton(a);
        for anc in self.ancestors(a) {
            seen.insert(anc);
        }
        if seen.contains(b) {
            return b;
        }
        for anc in self.ancestors(b) {
            if seen.contains(anc) {
                return anc;
            }
        }
        self.root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature disease taxonomy in the shape of SNOMED CT.
    fn diseases() -> Taxonomy {
        let mut t = Taxonomy::new("disease", "disease");
        let infectious = t.add_child(t.root(), "infectious").unwrap();
        t.add_child(infectious, "malaria").unwrap();
        t.add_child(infectious, "tuberculosis").unwrap();
        let eating = t.add_child(t.root(), "eating_disorder").unwrap();
        t.add_child(eating, "anorexia").unwrap();
        t.add_child(eating, "bulimia").unwrap();
        t
    }

    #[test]
    fn build_and_lookup() {
        let t = diseases();
        assert_eq!(t.label_count(), 7);
        let malaria = t.label_id("malaria").unwrap();
        assert_eq!(t.label_name(malaria).unwrap(), "malaria");
        assert!(t.is_leaf(malaria));
        assert!(!t.is_leaf(t.root()));
        assert_eq!(t.leaves().len(), 4);
    }

    #[test]
    fn categorize_is_crisp() {
        let t = diseases();
        let pairs = t.categorize("anorexia");
        assert_eq!(pairs.len(), 1);
        assert_eq!(t.label_name(pairs[0].0).unwrap(), "anorexia");
        assert_eq!(pairs[0].1, 1.0);
    }

    #[test]
    fn unknown_value_maps_to_root() {
        let t = diseases();
        let pairs = t.categorize("gout");
        assert_eq!(pairs[0].0, t.root());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = diseases();
        let malaria = t.label_id("malaria").unwrap();
        let anc: Vec<&str> = t
            .ancestors(malaria)
            .iter()
            .map(|&l| t.label_name(l).unwrap())
            .collect();
        assert_eq!(anc, vec!["infectious", "disease"]);
    }

    #[test]
    fn descendants_and_expand_down() {
        let t = diseases();
        let infectious = t.label_id("infectious").unwrap();
        let desc = t.descendants(infectious);
        assert_eq!(desc.len(), 2);
        assert!(desc.contains(t.label_id("malaria").unwrap()));

        let q = DescriptorSet::singleton(infectious);
        let expanded = t.expand_down(q);
        assert_eq!(expanded.len(), 3); // infectious + 2 leaves
    }

    #[test]
    fn common_ancestor_cases() {
        let t = diseases();
        let malaria = t.label_id("malaria").unwrap();
        let tb = t.label_id("tuberculosis").unwrap();
        let anorexia = t.label_id("anorexia").unwrap();
        let infectious = t.label_id("infectious").unwrap();
        assert_eq!(t.common_ancestor(malaria, tb), infectious);
        assert_eq!(t.common_ancestor(malaria, anorexia), t.root());
        assert_eq!(t.common_ancestor(malaria, malaria), malaria);
        assert_eq!(t.common_ancestor(malaria, infectious), infectious);
    }

    #[test]
    fn duplicate_and_bad_parent_rejected() {
        let mut t = diseases();
        assert!(matches!(
            t.add_child(t.root(), "malaria"),
            Err(FuzzyError::DuplicateLabel { .. })
        ));
        assert!(matches!(
            t.add_child(LabelId(99), "x"),
            Err(FuzzyError::BadTaxonomy(_))
        ));
    }

    #[test]
    fn flat_taxonomy() {
        let t = Taxonomy::flat("sex", "any", &["female", "male"]).unwrap();
        assert_eq!(t.label_count(), 3);
        assert!(t.is_leaf(t.label_id("female").unwrap()));
        assert_eq!(t.categorize("female")[0].1, 1.0);
    }

    #[test]
    fn label_capacity_enforced() {
        let mut t = Taxonomy::new("big", "root");
        for i in 0..(MAX_LABELS - 1) {
            t.add_child(LabelId(0), format!("leaf{i}")).unwrap();
        }
        assert!(matches!(
            t.add_child(LabelId(0), "overflow"),
            Err(FuzzyError::TooManyLabels { .. })
        ));
    }
}
