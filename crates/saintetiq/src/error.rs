//! Error type for the summarization engine.

use std::fmt;

/// Errors raised by mapping, summarization, merging or wire coding.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryError {
    /// The background knowledge has no vocabulary for a schema attribute
    /// that was requested for summarization.
    UnmappedAttribute(String),
    /// A BK attribute is missing from the relation schema.
    MissingColumn(String),
    /// A numeric BK attribute maps to a non-numeric column or vice versa.
    KindMismatch {
        /// The mismatched attribute.
        attribute: String,
    },
    /// Two summaries built from different background knowledge (different
    /// name or arity) cannot be merged or compared.
    IncompatibleBk {
        /// BK name of the left summary.
        left: String,
        /// BK name of the right summary.
        right: String,
    },
    /// Wire decoding failed.
    Codec(String),
    /// A value fell outside every label of its vocabulary (BK does not
    /// cover the domain).
    Unmappable {
        /// The attribute whose vocabulary rejected the value.
        attribute: String,
        /// Rendering of the unmappable value.
        value: String,
    },
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::UnmappedAttribute(a) => {
                write!(f, "background knowledge has no vocabulary for `{a}`")
            }
            SummaryError::MissingColumn(a) => {
                write!(f, "relation schema has no column for BK attribute `{a}`")
            }
            SummaryError::KindMismatch { attribute } => {
                write!(f, "BK/schema kind mismatch on `{attribute}`")
            }
            SummaryError::IncompatibleBk { left, right } => {
                write!(
                    f,
                    "incompatible background knowledge: `{left}` vs `{right}`"
                )
            }
            SummaryError::Codec(msg) => write!(f, "summary codec error: {msg}"),
            SummaryError::Unmappable { attribute, value } => {
                write!(f, "value `{value}` of `{attribute}` matches no BK label")
            }
        }
    }
}

impl std::error::Error for SummaryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_context() {
        let e = SummaryError::Unmappable {
            attribute: "age".into(),
            value: "999".into(),
        };
        assert!(e.to_string().contains("age"));
        assert!(e.to_string().contains("999"));
    }
}
