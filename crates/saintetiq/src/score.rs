//! Partition score: the category-utility measure steering the
//! summarization service.
//!
//! §3.2.2: cells are incorporated "with a top-down approach inspired of
//! D.H. Fisher's Cobweb", and the create/merge/split operators are applied
//! "depending on partition's score". We use Gluck & Corter's category
//! utility, the score Cobweb itself optimizes, computed over the fuzzy
//! label-weight histograms the tree maintains:
//!
//! ```text
//! CU({C1..Ck} of N) = (1/k) Σ_i P(Ci) [ Σ_a Σ_l P(l|Ci)² − Σ_a Σ_l P(l|N)² ]
//! ```
//!
//! where `P(l|X)` is label weight / node count. Weights are fractional
//! (cells carry fuzzy tuple counts) which generalizes the classic formula
//! without changing its fixed points on crisp data.

use crate::hierarchy::{NodeId, SummaryTree};

/// Σ_a Σ_l P(l|node)² for one node's histogram; `extra` optionally adds a
/// hypothetical cell (label per attribute with a weight) before scoring.
fn expected_correct(
    hist: &[Vec<f64>],
    count: f64,
    extra: Option<(&[fuzzy::descriptor::LabelId], f64)>,
) -> f64 {
    let total = count + extra.map(|(_, w)| w).unwrap_or(0.0);
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (attr, labels) in hist.iter().enumerate() {
        for (l, &w) in labels.iter().enumerate() {
            let mut w = w;
            if let Some((key, extra_w)) = extra {
                if key[attr].index() == l {
                    w += extra_w;
                }
            }
            if w > 0.0 {
                let p = w / total;
                sum += p * p;
            }
        }
    }
    sum
}

/// Category utility of the current partition of `parent`'s children,
/// with an optional hypothetical insertion of a cell into one child
/// (`pending`: child index in `parent.children`, cell labels, weight).
///
/// Returns 0 for childless nodes.
pub fn category_utility(
    tree: &SummaryTree,
    parent: NodeId,
    pending: Option<(usize, &[fuzzy::descriptor::LabelId], f64)>,
) -> f64 {
    let p = tree.node(parent);
    let k = p.children.len();
    if k == 0 {
        return 0.0;
    }
    let extra_w = pending.map(|(_, _, w)| w).unwrap_or(0.0);
    let parent_total = p.count + extra_w;
    if parent_total <= 0.0 {
        return 0.0;
    }
    let parent_ec = expected_correct(&p.hist, p.count, pending.map(|(_, key, w)| (key, w)));
    let mut cu = 0.0;
    for (i, &child) in p.children.iter().enumerate() {
        let c = tree.node(child);
        let child_pending = match pending {
            Some((idx, key, w)) if idx == i => Some((key, w)),
            _ => None,
        };
        let child_total = c.count + child_pending.map(|(_, w)| w).unwrap_or(0.0);
        if child_total <= 0.0 {
            continue;
        }
        let child_ec = expected_correct(&c.hist, c.count, child_pending);
        cu += (child_total / parent_total) * (child_ec - parent_ec);
    }
    cu / k as f64
}

/// Category utility if a brand-new singleton child were added for the
/// cell. A singleton's `Σ P(l|C)²` is exactly the number of attributes
/// (every label is certain).
pub fn category_utility_with_new_child(
    tree: &SummaryTree,
    parent: NodeId,
    key: &[fuzzy::descriptor::LabelId],
    weight: f64,
) -> f64 {
    let p = tree.node(parent);
    let k = p.children.len() + 1;
    let parent_total = p.count + weight;
    if parent_total <= 0.0 {
        return 0.0;
    }
    let parent_ec = expected_correct(&p.hist, p.count, Some((key, weight)));
    let mut cu = 0.0;
    for &child in &p.children {
        let c = tree.node(child);
        if c.count <= 0.0 {
            continue;
        }
        let child_ec = expected_correct(&c.hist, c.count, None);
        cu += (c.count / parent_total) * (child_ec - parent_ec);
    }
    // The hypothetical singleton child.
    let singleton_ec = key.len() as f64;
    cu += (weight / parent_total) * (singleton_ec - parent_ec);
    cu / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKey, SourceId};
    use fuzzy::descriptor::LabelId;

    fn key(labels: &[u16]) -> CellKey {
        CellKey(labels.iter().map(|&l| LabelId(l)).collect())
    }

    /// Two tight clusters must score higher than a scrambled partition.
    #[test]
    fn cu_prefers_coherent_partitions() {
        // Build: root -> host1{(0,0),(0,1)}, host2{(2,2),(2,3)}  (coherent)
        let mut coherent = SummaryTree::new("bk", vec![3, 4]);
        let root = coherent.root();
        let h1 = coherent.create_internal(root);
        let h2 = coherent.create_internal(root);
        for (host, labels) in [(h1, [0u16, 0]), (h1, [0, 1]), (h2, [2, 2]), (h2, [2, 3])] {
            let k = key(&labels);
            coherent.create_leaf(host, k.clone());
            coherent.add_to_cell(&k, SourceId(1), 1.0, &[1.0, 1.0], None);
        }
        coherent.check_invariants();

        // Scrambled: hosts mix the two clusters.
        let mut scrambled = SummaryTree::new("bk", vec![3, 4]);
        let root_s = scrambled.root();
        let s1 = scrambled.create_internal(root_s);
        let s2 = scrambled.create_internal(root_s);
        for (host, labels) in [(s1, [0u16, 0]), (s1, [2, 2]), (s2, [0, 1]), (s2, [2, 3])] {
            let k = key(&labels);
            scrambled.create_leaf(host, k.clone());
            scrambled.add_to_cell(&k, SourceId(1), 1.0, &[1.0, 1.0], None);
        }
        scrambled.check_invariants();

        let cu_good = category_utility(&coherent, root, None);
        let cu_bad = category_utility(&scrambled, root_s, None);
        assert!(
            cu_good > cu_bad,
            "coherent {cu_good} should beat scrambled {cu_bad}"
        );
    }

    #[test]
    fn cu_of_childless_node_is_zero() {
        let t = SummaryTree::new("bk", vec![2, 2]);
        assert_eq!(category_utility(&t, t.root(), None), 0.0);
    }

    /// Adding a cell identical to a child's content scores better into
    /// that child than into a dissimilar one.
    #[test]
    fn pending_insertion_prefers_similar_child() {
        let mut t = SummaryTree::new("bk", vec![3, 4]);
        let root = t.root();
        let ka = key(&[0, 0]);
        let kb = key(&[2, 3]);
        t.create_leaf(root, ka.clone());
        t.create_leaf(root, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 2.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(1), 2.0, &[1.0, 1.0], None);

        // Incoming cell (0,1): closer to child a (shares label 0 on attr 0).
        let incoming = [LabelId(0), LabelId(1)];
        let into_a = category_utility(&t, root, Some((0, &incoming, 1.0)));
        let into_b = category_utility(&t, root, Some((1, &incoming, 1.0)));
        assert!(into_a > into_b, "into_a {into_a} vs into_b {into_b}");
    }

    /// A cell completely unlike both children should prefer a new
    /// singleton child.
    #[test]
    fn dissimilar_cell_prefers_new_child() {
        let mut t = SummaryTree::new("bk", vec![3, 4]);
        let root = t.root();
        let ka = key(&[0, 0]);
        let kb = key(&[0, 1]);
        t.create_leaf(root, ka.clone());
        t.create_leaf(root, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 3.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(1), 3.0, &[1.0, 1.0], None);

        let incoming = [LabelId(2), LabelId(3)];
        let best_existing = (0..2)
            .map(|i| category_utility(&t, root, Some((i, &incoming, 1.0))))
            .fold(f64::NEG_INFINITY, f64::max);
        let as_new = category_utility_with_new_child(&t, root, &incoming, 1.0);
        assert!(
            as_new > best_existing,
            "new {as_new} vs existing {best_existing}"
        );
    }
}
