//! The summarization service (§3.2.2): top-down Cobweb-style
//! incorporation of grid cells into the summary hierarchy.
//!
//! Cells descend the tree from the root. At each level the engine scores
//! four operators with the category-utility partition score
//! ([`crate::score`]) and applies the best:
//!
//! * **incorporate** — place the cell into the best-fitting child (and
//!   recurse if that child is internal);
//! * **create** — open a fresh singleton child for the cell;
//! * **merge** — fuse the two best children under a new host, then
//!   descend into it;
//! * **split** — dissolve the best child, promoting its children, and
//!   rescore.
//!
//! Once a cell's coordinate already exists in the tree, incorporation
//! degenerates to "sorting it in a tree" (§4.2.1) — a count update along
//! one root-to-leaf path — which is why summaries stabilize and the
//! whole process is `O(K)` in the number of cells (§6.1.1; benchmarked
//! in `sumq-bench`).

use fuzzy::bk::BackgroundKnowledge;
use fuzzy::descriptor::{Grade, LabelId};
use relation::schema::Schema;
use relation::table::{ChangeKind, Table, TableChange};

use crate::cell::{CellKey, SourceId};
use crate::error::SummaryError;
use crate::hierarchy::{NodeId, SummaryTree};
use crate::mapping::Mapper;
use crate::score::{category_utility, category_utility_with_new_child};

/// Tunables of the summarization service.
///
/// The cited SaintEtiQ papers leave these constants open; defaults follow
/// classic Cobweb. Benchmarks ablate `enable_merge` / `enable_split`.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Consider the *merge* operator during descent.
    pub enable_merge: bool,
    /// Consider the *split* operator during descent.
    pub enable_split: bool,
    /// Score improvements below this epsilon do not justify a merge or a
    /// split (hysteresis keeps the tree stable, which §4.2.1 relies on).
    pub restructure_epsilon: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            enable_merge: true,
            enable_split: true,
            restructure_epsilon: 1e-6,
        }
    }
}

/// What the descent decided at one level.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Operator {
    Host(usize),
    Create,
    Merge(usize, usize),
    Split(usize),
}

/// Incorporates one weighted cell contribution into `tree`.
///
/// This free function is the engine's core; [`SaintEtiQEngine`] wraps it
/// for local tables and [`crate::merge`] reuses it to merge hierarchies.
pub fn incorporate_cell(
    tree: &mut SummaryTree,
    config: &EngineConfig,
    key: &CellKey,
    source: SourceId,
    weight: f64,
    grades: &[Grade],
    raw_values: Option<&[Option<f64>]>,
) {
    if weight <= 0.0 {
        return;
    }
    if tree.leaf_of(key).is_some() {
        // Stable case: the coordinate exists; sorting in the tree is a
        // single path update.
        tree.add_to_cell(key, source, weight, grades, raw_values);
        return;
    }
    let leaf_parent = descend(tree, config, key, weight);
    tree.create_leaf(leaf_parent, key.clone());
    tree.add_to_cell(key, source, weight, grades, raw_values);
}

/// Cobweb descent: returns the internal node that should directly parent
/// the new leaf for `key`.
fn descend(tree: &mut SummaryTree, config: &EngineConfig, key: &CellKey, weight: f64) -> NodeId {
    let mut node = tree.root();
    // Per-node guards: after a merge/split at this node we must make
    // progress through host/create, so restructuring can't loop.
    let mut merged_here = false;
    let mut split_here = false;
    loop {
        let children = tree.node(node).children.clone();
        if children.is_empty() {
            return node;
        }

        let op = choose_operator(
            tree,
            config,
            node,
            &children,
            key,
            weight,
            merged_here,
            split_here,
        );
        match op {
            Operator::Create => return node,
            Operator::Host(i) => {
                let child = children[i];
                if tree.node(child).is_leaf() {
                    // Turn the leaf into a cluster: host = {old leaf, new}.
                    let host = tree.create_internal(node);
                    tree.reparent(child, host);
                    return host;
                }
                node = child;
                merged_here = false;
                split_here = false;
            }
            Operator::Merge(i, j) => {
                let host = tree.merge_children(node, children[i], children[j]);
                node = host;
                // The fresh host was just merged into existence; don't
                // merge again at this level before placing the cell.
                merged_here = true;
                split_here = false;
            }
            Operator::Split(i) => {
                tree.split_node(children[i]);
                split_here = true;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn choose_operator(
    tree: &SummaryTree,
    config: &EngineConfig,
    node: NodeId,
    children: &[NodeId],
    key: &CellKey,
    weight: f64,
    merged_here: bool,
    split_here: bool,
) -> Operator {
    let labels: &[LabelId] = &key.0;

    // Score hosting in each child.
    let mut best: (f64, usize) = (f64::NEG_INFINITY, 0);
    let mut second: (f64, usize) = (f64::NEG_INFINITY, 0);
    for i in 0..children.len() {
        let s = category_utility(tree, node, Some((i, labels, weight)));
        if s > best.0 {
            second = best;
            best = (s, i);
        } else if s > second.0 {
            second = (s, i);
        }
    }
    let create_score = category_utility_with_new_child(tree, node, labels, weight);

    let mut winner = if create_score > best.0 {
        (create_score, Operator::Create)
    } else {
        (best.0, Operator::Host(best.1))
    };

    // Merge: fuse the two best hosts, place the cell inside the fusion.
    if config.enable_merge && !merged_here && children.len() >= 3 && second.0 > f64::NEG_INFINITY {
        let s = merge_score(tree, node, children, best.1, second.1, labels, weight);
        if s > winner.0 + config.restructure_epsilon {
            winner = (s, Operator::Merge(best.1, second.1));
        }
    }

    // Split: dissolve the best host if it is internal.
    if config.enable_split && !split_here {
        let host = children[best.1];
        if !tree.node(host).is_leaf() {
            let s = split_score(tree, node, children, best.1, labels, weight);
            if s > winner.0 + config.restructure_epsilon {
                winner = (s, Operator::Split(best.1));
            }
        }
    }

    winner.1
}

/// Σ_a Σ_l p² over an explicit histogram with the pending cell added.
fn ec_of(hist: &[Vec<f64>], count: f64, pending: Option<(&[LabelId], f64)>) -> f64 {
    let total = count + pending.map(|(_, w)| w).unwrap_or(0.0);
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (attr, labels) in hist.iter().enumerate() {
        for (l, &w) in labels.iter().enumerate() {
            let mut w = w;
            if let Some((key, pw)) = pending {
                if key[attr].index() == l {
                    w += pw;
                }
            }
            if w > 0.0 {
                let p = w / total;
                sum += p * p;
            }
        }
    }
    sum
}

/// CU of `node`'s partition if children `i` and `j` were fused into one
/// host that also receives the pending cell.
fn merge_score(
    tree: &SummaryTree,
    node: NodeId,
    children: &[NodeId],
    i: usize,
    j: usize,
    labels: &[LabelId],
    weight: f64,
) -> f64 {
    let parent = tree.node(node);
    let parent_total = parent.count + weight;
    if parent_total <= 0.0 {
        return 0.0;
    }
    let parent_ec = ec_of(&parent.hist, parent.count, Some((labels, weight)));
    let k = children.len() - 1; // i and j fuse into one
    let mut cu = 0.0;
    // Fused host histogram = hist_i + hist_j (+ pending cell).
    let (ci, cj) = (tree.node(children[i]), tree.node(children[j]));
    let mut fused: Vec<Vec<f64>> = ci.hist.clone();
    for (attr, labels_h) in fused.iter_mut().enumerate() {
        for (l, slot) in labels_h.iter_mut().enumerate() {
            *slot += cj.hist[attr][l];
        }
    }
    let fused_count = ci.count + cj.count;
    let fused_total = fused_count + weight;
    if fused_total > 0.0 {
        let ec = ec_of(&fused, fused_count, Some((labels, weight)));
        cu += (fused_total / parent_total) * (ec - parent_ec);
    }
    for (idx, &c) in children.iter().enumerate() {
        if idx == i || idx == j {
            continue;
        }
        let child = tree.node(c);
        if child.count <= 0.0 {
            continue;
        }
        let ec = ec_of(&child.hist, child.count, None);
        cu += (child.count / parent_total) * (ec - parent_ec);
    }
    cu / k as f64
}

/// CU of `node`'s partition if child `i` (internal) were dissolved, its
/// children promoted, and the pending cell placed in the best promoted
/// grandchild.
fn split_score(
    tree: &SummaryTree,
    node: NodeId,
    children: &[NodeId],
    i: usize,
    labels: &[LabelId],
    weight: f64,
) -> f64 {
    let parent = tree.node(node);
    let parent_total = parent.count + weight;
    if parent_total <= 0.0 {
        return 0.0;
    }
    let parent_ec = ec_of(&parent.hist, parent.count, Some((labels, weight)));
    let grandchildren = tree.node(children[i]).children.clone();
    let k = children.len() - 1 + grandchildren.len();
    if k == 0 {
        return f64::NEG_INFINITY;
    }
    // Contribution of the unaffected children.
    let mut base = 0.0;
    for (idx, &c) in children.iter().enumerate() {
        if idx == i {
            continue;
        }
        let child = tree.node(c);
        if child.count <= 0.0 {
            continue;
        }
        base += (child.count / parent_total) * (ec_of(&child.hist, child.count, None) - parent_ec);
    }
    // Try the pending cell in each promoted grandchild; keep the best.
    let mut best = f64::NEG_INFINITY;
    for (gi, &g) in grandchildren.iter().enumerate() {
        let mut cu = base;
        for (gj, &h) in grandchildren.iter().enumerate() {
            let gc = tree.node(h);
            let pending = (gi == gj).then_some((labels, weight));
            let total = gc.count + pending.map(|(_, w)| w).unwrap_or(0.0);
            if total <= 0.0 {
                continue;
            }
            let ec = ec_of(&gc.hist, gc.count, pending);
            cu += (total / parent_total) * (ec - parent_ec);
        }
        let _ = g;
        best = best.max(cu);
    }
    best / k as f64
}

/// The per-peer summarization engine: a [`Mapper`] feeding a
/// [`SummaryTree`], consuming tables and push-mode change feeds.
#[derive(Debug, Clone)]
pub struct SaintEtiQEngine {
    mapper: Mapper,
    tree: SummaryTree,
    config: EngineConfig,
    source: SourceId,
    unmappable: usize,
}

impl SaintEtiQEngine {
    /// Builds an engine for `source` over the given BK and relation
    /// schema.
    pub fn new(
        bk: BackgroundKnowledge,
        schema: &Schema,
        config: EngineConfig,
        source: SourceId,
    ) -> Result<Self, SummaryError> {
        let label_counts = bk.attributes().iter().map(|a| a.label_count()).collect();
        let tree = SummaryTree::new(bk.name().to_string(), label_counts);
        let mapper = Mapper::bind(bk, schema)?;
        Ok(Self {
            mapper,
            tree,
            config,
            source,
            unmappable: 0,
        })
    }

    /// The engine's source id (the owning peer).
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// The mapper (BK binding).
    pub fn mapper(&self) -> &Mapper {
        &self.mapper
    }

    /// The summary hierarchy.
    pub fn tree(&self) -> &SummaryTree {
        &self.tree
    }

    /// Consumes the engine, returning the hierarchy.
    pub fn into_tree(self) -> SummaryTree {
        self.tree
    }

    /// Records skipped as unmappable so far.
    pub fn unmappable(&self) -> usize {
        self.unmappable
    }

    /// Extracts raw numeric values (per BK attribute) for statistics.
    fn raw_values(&self, row: &[relation::value::Value]) -> Vec<Option<f64>> {
        let bk = self.mapper.bk();
        let schema_cols: Vec<Option<f64>> = bk
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                // Column index resolution mirrors the mapper's binding.
                let col = self.mapper.column(i);
                row[col].as_f64()
            })
            .collect();
        schema_cols
    }

    /// Incorporates one record.
    pub fn add_record(&mut self, row: &[relation::value::Value]) {
        match self.mapper.map_record(row) {
            Ok(cells) => {
                let raw = self.raw_values(row);
                for cand in cells {
                    incorporate_cell(
                        &mut self.tree,
                        &self.config,
                        &cand.key,
                        self.source,
                        cand.weight,
                        &cand.grades,
                        Some(&raw),
                    );
                }
            }
            Err(_) => self.unmappable += 1,
        }
    }

    /// Retracts one record (its before-image).
    pub fn remove_record(&mut self, row: &[relation::value::Value]) {
        if let Ok(cells) = self.mapper.map_record(row) {
            for cand in cells {
                self.tree
                    .remove_from_cell(&cand.key, self.source, cand.weight);
            }
        }
    }

    /// Summarizes a whole table (initial build). Raw data is parsed once,
    /// as §3.2.3 highlights.
    pub fn summarize_table(&mut self, table: &Table) {
        for (_, row) in table.iter() {
            self.add_record(row);
        }
    }

    /// Applies a push-mode change feed (§4.2.1). `table` provides the
    /// after-images of inserts/updates.
    pub fn apply_changes(&mut self, table: &Table, changes: &[TableChange]) {
        for ch in changes {
            match &ch.kind {
                ChangeKind::Insert => {
                    if let Some(t) = table.get(ch.id) {
                        self.add_record(&t.values);
                    }
                }
                ChangeKind::Delete { old } => self.remove_record(old),
                ChangeKind::Update { old } => {
                    self.remove_record(old);
                    if let Some(t) = table.get(ch.id) {
                        self.add_record(&t.values);
                    }
                }
            }
        }
    }

    /// Rebuilds the hierarchy from scratch off the current table —
    /// used after heavy churn, mirroring the paper's global-summary
    /// reconciliation which reconstructs `NewGS`.
    pub fn rebuild(&mut self, table: &Table) {
        let label_counts = self.tree.label_counts().to_vec();
        self.tree = SummaryTree::new(self.tree.bk_name().to_string(), label_counts);
        self.unmappable = 0;
        self.summarize_table(table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy::bk::BackgroundKnowledge;
    use rand::Rng;
    use rand::SeedableRng;
    use relation::generator::{patient_table, MatchTarget, PatientDistributions};

    fn engine() -> SaintEtiQEngine {
        SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(1),
        )
        .unwrap()
    }

    /// The paper's Figure 3: summarizing Table 1 yields a hierarchy whose
    /// leaves are exactly cells c1, c2, c3 with Table 2's counts.
    #[test]
    fn figure3_hierarchy_from_table1() {
        let mut e = engine();
        e.summarize_table(&Table::patient_table1());
        let t = e.tree();
        t.check_invariants();
        assert_eq!(t.leaf_count(), 3, "cells c1, c2, c3");
        assert!((t.total_count() - 3.0).abs() < 1e-9, "three patients");
        // Counts per cell match Table 2.
        let weights: Vec<f64> = t.cells().values().map(|e| e.content.weight).collect();
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 0.3).abs() < 1e-9);
        assert!((sorted[1] - 0.7).abs() < 1e-9);
        assert!((sorted[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn incorporation_is_idempotent_on_structure() {
        // Re-adding records with existing coordinates must only touch
        // counts ("incorporating new tuple consists only in sorting it in
        // a tree", §4.2.1).
        let mut e = engine();
        let table = Table::patient_table1();
        e.summarize_table(&table);
        let nodes_before = e.tree().live_node_count();
        e.summarize_table(&table);
        assert_eq!(e.tree().live_node_count(), nodes_before);
        assert!((e.tree().total_count() - 6.0).abs() < 1e-9);
        e.tree().check_invariants();
    }

    #[test]
    fn push_mode_insert_delete_update() {
        let mut e = engine();
        let mut table = Table::patient_table1();
        e.summarize_table(&table);
        table.drain_changes();

        // Insert a new patient, delete t2, update t1.
        table
            .insert(vec![
                relation::value::Value::Int(70),
                relation::value::Value::text("male"),
                relation::value::Value::Float(28.0),
                relation::value::Value::text("diabetes"),
            ])
            .unwrap();
        table.delete(relation::tuple::TupleId(2)).unwrap();
        table
            .update(
                relation::tuple::TupleId(1),
                vec![
                    relation::value::Value::Int(16),
                    relation::value::Value::text("female"),
                    relation::value::Value::Float(17.2),
                    relation::value::Value::text("anorexia"),
                ],
            )
            .unwrap();
        let changes = table.drain_changes();
        e.apply_changes(&table, &changes);
        e.tree().check_invariants();
        assert!((e.tree().total_count() - 3.0).abs() < 1e-9, "3 live tuples");

        // A rebuilt engine over the same table must agree on cells.
        let mut fresh = engine();
        fresh.summarize_table(&table);
        let keys_inc: Vec<_> = e.tree().cells().keys().cloned().collect();
        let keys_fresh: Vec<_> = fresh.tree().cells().keys().cloned().collect();
        assert_eq!(keys_inc, keys_fresh, "incremental == from-scratch cell set");
        for (k, entry) in e.tree().cells() {
            let w_fresh = fresh.tree().cells()[k].content.weight;
            assert!(
                (entry.content.weight - w_fresh).abs() < 1e-9,
                "weight drift on {k:?}"
            );
        }
    }

    #[test]
    fn larger_table_keeps_invariants_and_mass() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let dist = PatientDistributions::default();
        let target = MatchTarget {
            disease: Some("malaria".into()),
            ..Default::default()
        };
        let table = patient_table(&mut rng, 300, &dist, &target, 30);
        let mut e = engine();
        e.summarize_table(&table);
        let t = e.tree();
        t.check_invariants();
        assert!((t.total_count() - 300.0).abs() < 1e-6);
        assert_eq!(e.unmappable(), 0);
        // K << N: the grid bounds the number of leaves.
        assert!(
            t.leaf_count() <= 324,
            "leaves {} exceed grid",
            t.leaf_count()
        );
        assert!(t.leaf_count() < 300, "summarization must compress");
        // Tree is genuinely hierarchical, not a flat root.
        assert!(t.depth() >= 2, "depth {}", t.depth());
    }

    #[test]
    fn removal_mirrors_addition_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let dist = PatientDistributions::default();
        let mut e = engine();
        let base = patient_table(&mut rng, 50, &dist, &MatchTarget::default(), 0);
        e.summarize_table(&base);
        let leaf_count = e.tree().leaf_count();
        let total = e.tree().total_count();

        // Add then remove 20 extra random records: tree returns to the
        // same cell multiset.
        let extra: Vec<Vec<relation::value::Value>> = (0..20)
            .map(|_| relation::generator::random_patient(&mut rng, &dist))
            .collect();
        for row in &extra {
            e.add_record(row);
        }
        for row in &extra {
            e.remove_record(row);
        }
        e.tree().check_invariants();
        assert_eq!(e.tree().leaf_count(), leaf_count);
        assert!((e.tree().total_count() - total).abs() < 1e-6);
    }

    #[test]
    fn unmappable_records_are_counted() {
        let mut e = engine();
        e.add_record(&[
            relation::value::Value::Null,
            relation::value::Value::text("female"),
            relation::value::Value::Float(20.0),
            relation::value::Value::text("malaria"),
        ]);
        assert_eq!(e.unmappable(), 1);
        assert_eq!(e.tree().leaf_count(), 0);
    }

    #[test]
    fn rebuild_matches_incremental_cells() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let dist = PatientDistributions::default();
        let table = patient_table(&mut rng, 120, &dist, &MatchTarget::default(), 0);
        let mut e = engine();
        e.summarize_table(&table);
        let before: Vec<_> = e
            .tree()
            .cells()
            .iter()
            .map(|(k, v)| (k.clone(), v.content.weight))
            .collect();
        e.rebuild(&table);
        let after: Vec<_> = e
            .tree()
            .cells()
            .iter()
            .map(|(k, v)| (k.clone(), v.content.weight))
            .collect();
        assert_eq!(before.len(), after.len());
        for ((ka, wa), (kb, wb)) in before.iter().zip(&after) {
            assert_eq!(ka, kb);
            assert!((wa - wb).abs() < 1e-9);
        }
        e.tree().check_invariants();
    }

    #[test]
    fn ablation_no_restructure_still_correct() {
        // With merge/split disabled the tree may be flatter but cells and
        // mass must be identical.
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let dist = PatientDistributions::default();
        let table = patient_table(&mut rng, 200, &dist, &MatchTarget::default(), 0);

        let full = {
            let mut e = engine();
            e.summarize_table(&table);
            e.into_tree()
        };
        let plain = {
            let mut e = SaintEtiQEngine::new(
                BackgroundKnowledge::medical_cbk(),
                &Schema::patient(),
                EngineConfig {
                    enable_merge: false,
                    enable_split: false,
                    ..Default::default()
                },
                SourceId(1),
            )
            .unwrap();
            e.summarize_table(&table);
            e.into_tree()
        };
        plain.check_invariants();
        assert_eq!(full.leaf_count(), plain.leaf_count());
        assert!((full.total_count() - plain.total_count()).abs() < 1e-6);
    }

    #[test]
    fn order_invariance_of_cells() {
        // Different insertion orders may shape the tree differently, but
        // the leaf cells (the summary's semantics) are order-independent.
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let dist = PatientDistributions::default();
        let rows: Vec<Vec<relation::value::Value>> = (0..80)
            .map(|_| relation::generator::random_patient(&mut rng, &dist))
            .collect();

        let mut forward = engine();
        for r in &rows {
            forward.add_record(r);
        }
        let mut backward = engine();
        for r in rows.iter().rev() {
            backward.add_record(r);
        }
        let f: Vec<_> = forward.tree().cells().keys().cloned().collect();
        let b: Vec<_> = backward.tree().cells().keys().cloned().collect();
        assert_eq!(f, b);
        for k in &f {
            let wf = forward.tree().cells()[k].content.weight;
            let wb = backward.tree().cells()[k].content.weight;
            assert!((wf - wb).abs() < 1e-9);
        }
    }

    #[test]
    fn random_small_batches_keep_invariants() {
        // Smoke-level property test: random add/remove interleavings
        // never break structural invariants.
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let dist = PatientDistributions::default();
        for round in 0..10 {
            let mut e = engine();
            let mut live: Vec<Vec<relation::value::Value>> = Vec::new();
            for _ in 0..60 {
                if !live.is_empty() && rng.gen_bool(0.3) {
                    let idx = rng.gen_range(0..live.len());
                    let row = live.swap_remove(idx);
                    e.remove_record(&row);
                } else {
                    let row = relation::generator::random_patient(&mut rng, &dist);
                    e.add_record(&row);
                    live.push(row);
                }
                e.tree().check_invariants();
            }
            assert!(
                (e.tree().total_count() - live.len() as f64).abs() < 1e-6,
                "round {round}: mass {} vs {}",
                e.tree().total_count(),
                live.len()
            );
        }
    }
}
