//! Querying summaries (§5 of the paper; Voglozin et al. FQAS 2004 \[31\]).
//!
//! A selection query is **reformulated** into descriptors of the
//! Background Knowledge ([`proposition`]), **evaluated** against a summary
//! hierarchy by valuating the resulting logical proposition and selecting
//! the most abstract satisfying summaries `Z_Q` ([`selection`]), and then
//! used two ways:
//!
//! * **peer localization** — `P_Q = ∪_{z ∈ Z_Q} P_z` ([`relevant_sources`]),
//! * **approximate answering** — aggregate `Z_Q` into interpretation
//!   classes and union the descriptors of the selection list
//!   ([`approx`]): *"all female patients diagnosed with anorexia and
//!   having an underweight or normal BMI are young girls."*

pub mod approx;
pub mod proposition;
pub mod selection;

use crate::cell::SourceId;
use crate::hierarchy::SummaryTree;
use proposition::Proposition;
use selection::select_most_abstract;

/// Peer localization (§5.2.1): the sources owning data described by any
/// selected summary — `P_Q`, sorted and deduplicated.
pub fn relevant_sources(tree: &SummaryTree, prop: &Proposition) -> Vec<SourceId> {
    let mut out: Vec<SourceId> = Vec::new();
    for z in select_most_abstract(tree, prop) {
        out.extend(tree.peer_extent(z));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKey;
    use crate::engine::{incorporate_cell, EngineConfig};
    use fuzzy::descriptor::{DescriptorSet, LabelId};
    use proposition::Clause;

    fn key(labels: &[u16]) -> CellKey {
        CellKey(labels.iter().map(|&l| LabelId(l)).collect())
    }

    #[test]
    fn relevant_sources_unions_extents() {
        let mut t = SummaryTree::new("bk", vec![3, 3]);
        let cfg = EngineConfig::default();
        // Source 1 & 2 own (0,0); source 3 owns (2,2).
        incorporate_cell(
            &mut t,
            &cfg,
            &key(&[0, 0]),
            SourceId(1),
            1.0,
            &[1.0, 1.0],
            None,
        );
        incorporate_cell(
            &mut t,
            &cfg,
            &key(&[0, 0]),
            SourceId(2),
            1.0,
            &[1.0, 1.0],
            None,
        );
        incorporate_cell(
            &mut t,
            &cfg,
            &key(&[2, 2]),
            SourceId(3),
            1.0,
            &[1.0, 1.0],
            None,
        );

        // Query: attr0 ∈ {0}.
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::singleton(LabelId(0)),
            }],
        };
        assert_eq!(relevant_sources(&t, &prop), vec![SourceId(1), SourceId(2)]);

        // Query matching everything returns all three.
        let all = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::all(3),
            }],
        };
        assert_eq!(relevant_sources(&t, &all).len(), 3);

        // Unsatisfiable query returns nobody.
        let none = Proposition {
            clauses: vec![Clause {
                attr: 1,
                set: DescriptorSet::singleton(LabelId(1)),
            }],
        };
        assert!(relevant_sources(&t, &none).is_empty());
    }
}
