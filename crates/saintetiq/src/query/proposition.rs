//! Query reformulation (§5.1): selection predicates → a conjunctive
//! proposition over BK descriptors.
//!
//! The paper's example: `select age from Patient where sex = 'female' and
//! BMI < 19 and disease = 'anorexia'` becomes
//! `P = (female) AND (underweight OR normal) AND (anorexia)` — each
//! predicate turns into one clause whose literals are the descriptors
//! compatible with it. The extension can introduce false positives (a
//! BMI of 20 is partly `normal`) but never false negatives:
//! `QS ⊆ QS*`.

use fuzzy::bk::{AttributeVocabulary, BackgroundKnowledge};
use fuzzy::descriptor::DescriptorSet;
use relation::predicate::{CompareOp, Predicate};
use relation::query::SelectQuery;

use crate::error::SummaryError;

/// One clause: the descriptors of attribute `attr` compatible with a
/// predicate (an OR over literals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// BK attribute index.
    pub attr: usize,
    /// Compatible labels.
    pub set: DescriptorSet,
}

/// A conjunction of clauses (the proposition `P` of §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Proposition {
    /// Clauses, at most one per attribute (conjuncts on the same
    /// attribute are intersected during reformulation).
    pub clauses: Vec<Clause>,
}

impl Proposition {
    /// True when some clause admits no descriptor at all (the query can
    /// match nothing).
    pub fn is_unsatisfiable(&self) -> bool {
        self.clauses.iter().any(|c| c.set.is_empty())
    }
}

/// A query reformulated against a BK: the routable proposition plus the
/// BK indices of the selection list (for approximate answering).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryQuery {
    /// The conjunctive proposition over descriptors.
    pub proposition: Proposition,
    /// BK attribute indices of the projected attributes.
    pub selection_attrs: Vec<usize>,
}

/// Reformulates one predicate into a descriptor set.
fn reformulate_predicate(
    vocab: &AttributeVocabulary,
    pred: &Predicate,
) -> Result<DescriptorSet, SummaryError> {
    let unmappable = || SummaryError::Unmappable {
        attribute: pred.attribute.clone(),
        value: pred.value.to_string(),
    };
    match vocab {
        AttributeVocabulary::Numeric(_) => {
            let v = pred.value.as_f64().ok_or_else(unmappable)?;
            let set = match pred.op {
                CompareOp::Eq => vocab.labels_for_range(v, v),
                CompareOp::Lt | CompareOp::Le => vocab.labels_for_range(f64::NEG_INFINITY, v),
                CompareOp::Gt | CompareOp::Ge => vocab.labels_for_range(v, f64::INFINITY),
                // `≠ v` excludes no label: every fuzzy region around v
                // also covers values different from v.
                CompareOp::Ne => DescriptorSet::all(vocab.label_count()),
            };
            Ok(set)
        }
        AttributeVocabulary::Categorical(tax) => {
            let term = pred.value.as_str().ok_or_else(unmappable)?;
            match pred.op {
                CompareOp::Eq => vocab.labels_for_term(term).map_err(|_| unmappable()),
                CompareOp::Ne => {
                    // Exclude the term and its specializations; ancestors
                    // stay (they may describe non-matching tuples).
                    let excluded = vocab.labels_for_term(term).map_err(|_| unmappable())?;
                    Ok(DescriptorSet::all(vocab.label_count()).difference(excluded))
                }
                _ => {
                    // Ordered comparisons are meaningless on taxonomies;
                    // fall back to "everything" (never a false negative).
                    let _ = tax;
                    Ok(DescriptorSet::all(vocab.label_count()))
                }
            }
        }
    }
}

/// Reformulates a [`SelectQuery`] against a BK (§5.1's `Q → Q*`).
///
/// Predicates on attributes outside the BK are **not routable**; per the
/// no-false-negative rule they are dropped from the proposition (the
/// exact evaluation at data-holding peers still applies them).
pub fn reformulate(
    query: &SelectQuery,
    bk: &BackgroundKnowledge,
) -> Result<SummaryQuery, SummaryError> {
    let mut clauses: Vec<Clause> = Vec::new();
    for pred in &query.predicates {
        let Some(attr) = bk.attribute_index(&pred.attribute) else {
            continue; // unroutable predicate: keep recall at 1
        };
        let vocab = bk.attribute_at(attr).expect("index from lookup");
        let set = reformulate_predicate(vocab, pred)?;
        match clauses.iter_mut().find(|c| c.attr == attr) {
            Some(c) => c.set = c.set.intersection(set),
            None => clauses.push(Clause { attr, set }),
        }
    }
    let selection_attrs = query
        .projection
        .iter()
        .filter_map(|name| bk.attribute_index(name))
        .collect();
    Ok(SummaryQuery {
        proposition: Proposition { clauses },
        selection_attrs,
    })
}

impl SummaryQuery {
    /// Renders the proposition with label names, e.g.
    /// `(female) AND (underweight OR normal) AND (anorexia)`.
    pub fn render(&self, bk: &BackgroundKnowledge) -> String {
        let mut parts = Vec::new();
        for c in &self.proposition.clauses {
            let vocab = bk.attribute_at(c.attr).expect("clause attr in bk");
            let names: Vec<&str> = c.set.iter().filter_map(|l| vocab.label_name(l)).collect();
            parts.push(format!("({})", names.join(" OR ")));
        }
        parts.join(" AND ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::predicate::Predicate;

    fn bk() -> BackgroundKnowledge {
        BackgroundKnowledge::medical_cbk()
    }

    /// §5.1: the paper's Q → Q* reformulation.
    #[test]
    fn paper_example_reformulation() {
        let q = SelectQuery::paper_example();
        let sq = reformulate(&q, &bk()).unwrap();
        let rendered = sq.render(&bk());
        assert!(rendered.contains("(female)"), "{rendered}");
        assert!(rendered.contains("(underweight OR normal)"), "{rendered}");
        assert!(rendered.contains("(anorexia)"), "{rendered}");
        // Selection list: age.
        assert_eq!(sq.selection_attrs, vec![0]);
        assert!(!sq.proposition.is_unsatisfiable());
    }

    #[test]
    fn numeric_operators() {
        let b = bk();
        let bmi = |op, v: f64| {
            let q = SelectQuery::new(vec![], vec![Predicate::new("bmi", op, v)]);
            reformulate(&q, &b).unwrap().proposition.clauses[0].set
        };
        let vocab = b.attribute("bmi").unwrap();
        let under = vocab.label_id("underweight").unwrap();
        let normal = vocab.label_id("normal").unwrap();
        let over = vocab.label_id("overweight").unwrap();

        let lt19 = bmi(CompareOp::Lt, 19.0);
        assert!(lt19.contains(under) && lt19.contains(normal) && !lt19.contains(over));

        let gt25 = bmi(CompareOp::Gt, 25.0);
        assert!(!gt25.contains(under) && gt25.contains(normal) && gt25.contains(over));

        let eq16 = bmi(CompareOp::Eq, 16.0);
        assert!(eq16.contains(under) && !eq16.contains(normal));

        let ne = bmi(CompareOp::Ne, 20.0);
        assert_eq!(ne.len(), 3, "numeric ≠ keeps every label");
    }

    #[test]
    fn taxonomy_equality_expands_down() {
        let b = bk();
        let q = SelectQuery::new(vec![], vec![Predicate::eq("disease", "infectious")]);
        let sq = reformulate(&q, &b).unwrap();
        let vocab = b.attribute("disease").unwrap();
        let set = sq.proposition.clauses[0].set;
        assert!(set.contains(vocab.label_id("malaria").unwrap()));
        assert!(set.contains(vocab.label_id("influenza").unwrap()));
        assert!(!set.contains(vocab.label_id("anorexia").unwrap()));
    }

    #[test]
    fn taxonomy_ne_keeps_ancestors() {
        let b = bk();
        let q = SelectQuery::new(
            vec![],
            vec![Predicate::new("disease", CompareOp::Ne, "malaria")],
        );
        let sq = reformulate(&q, &b).unwrap();
        let vocab = b.attribute("disease").unwrap();
        let set = sq.proposition.clauses[0].set;
        assert!(!set.contains(vocab.label_id("malaria").unwrap()));
        assert!(set.contains(vocab.label_id("tuberculosis").unwrap()));
        assert!(
            set.contains(vocab.label_id("infectious").unwrap()),
            "ancestor kept"
        );
        assert!(
            set.contains(vocab.label_id("any_disease").unwrap()),
            "root kept"
        );
    }

    #[test]
    fn conjuncts_on_same_attribute_intersect() {
        let b = bk();
        let q = SelectQuery::new(
            vec![],
            vec![
                Predicate::new("bmi", CompareOp::Ge, 18.0),
                Predicate::lt("bmi", 25.0),
            ],
        );
        let sq = reformulate(&q, &b).unwrap();
        assert_eq!(sq.proposition.clauses.len(), 1);
        let vocab = b.attribute("bmi").unwrap();
        let set = sq.proposition.clauses[0].set;
        assert!(set.contains(vocab.label_id("normal").unwrap()));
        // 18 touches underweight's support and 25 touches overweight's, so
        // the fuzzy extension keeps them — false positives, never false
        // negatives.
        assert!(set.contains(vocab.label_id("underweight").unwrap()));
    }

    #[test]
    fn contradictory_conjuncts_are_unsatisfiable() {
        let b = bk();
        let q = SelectQuery::new(
            vec![],
            vec![
                Predicate::lt("bmi", 13.0),
                Predicate::new("bmi", CompareOp::Gt, 40.0),
            ],
        );
        let sq = reformulate(&q, &b).unwrap();
        assert!(sq.proposition.is_unsatisfiable());
    }

    #[test]
    fn unknown_attribute_predicates_are_dropped() {
        let b = bk();
        let q = SelectQuery::new(
            vec!["age".into()],
            vec![
                Predicate::eq("hospital", "nantes"),
                Predicate::eq("sex", "female"),
            ],
        );
        let sq = reformulate(&q, &b).unwrap();
        assert_eq!(sq.proposition.clauses.len(), 1, "hospital is unroutable");
    }

    #[test]
    fn unknown_term_errors() {
        let b = bk();
        let q = SelectQuery::new(vec![], vec![Predicate::eq("disease", "gout")]);
        assert!(matches!(
            reformulate(&q, &b),
            Err(SummaryError::Unmappable { .. })
        ));
    }

    #[test]
    fn non_numeric_constant_on_numeric_attr_errors() {
        let b = bk();
        let q = SelectQuery::new(vec![], vec![Predicate::eq("bmi", "heavy")]);
        assert!(matches!(
            reformulate(&q, &b),
            Err(SummaryError::Unmappable { .. })
        ));
    }
}
