//! Approximate answering (§5.2.2).
//!
//! *"A distinctive feature of our approach is that a query can be
//! processed entirely in the summary domain."* The selected summaries
//! `Z_Q` are grouped into **classes**: summaries with the same
//! characteristics on every predicate attribute. Within a class, the
//! answer for each selection-list attribute is the union of descriptors
//! — e.g. for the paper's query, classes `{female, underweight,
//! anorexia}` and `{female, normal, anorexia}` both answer
//! `age = {young}`.

use std::collections::BTreeMap;

use fuzzy::bk::BackgroundKnowledge;
use fuzzy::descriptor::DescriptorSet;

use crate::hierarchy::SummaryTree;

use super::proposition::{Proposition, SummaryQuery};
use super::selection::select_most_abstract;

/// One interpretation class with its aggregated answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxAnswer {
    /// Per predicate attribute: the descriptors this class carries
    /// (always a subset of the clause set — certainty guarantees it).
    pub class: Vec<(usize, DescriptorSet)>,
    /// Per selection-list attribute: the union of descriptors over the
    /// class — the approximate answer itself.
    pub answer: Vec<(usize, DescriptorSet)>,
    /// Total tuple weight behind the class (how "typical" it is).
    pub weight: f64,
}

impl ApproxAnswer {
    /// Renders the answer with label names:
    /// `[female, underweight, anorexia] => age = {young} (weight 2.0)`.
    pub fn render(&self, bk: &BackgroundKnowledge) -> String {
        let fmt_sets = |sets: &[(usize, DescriptorSet)]| {
            sets.iter()
                .map(|(attr, set)| {
                    let vocab = bk.attribute_at(*attr).expect("attr in bk");
                    let labels: Vec<&str> =
                        set.iter().filter_map(|l| vocab.label_name(l)).collect();
                    format!("{} = {{{}}}", vocab.name(), labels.join(", "))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "[{}] => {} (weight {:.2})",
            fmt_sets(&self.class),
            fmt_sets(&self.answer),
            self.weight
        )
    }
}

/// Computes the approximate answer to a reformulated query against a
/// summary hierarchy, without touching any raw record.
pub fn approximate_answer(tree: &SummaryTree, query: &SummaryQuery) -> Vec<ApproxAnswer> {
    approximate_answer_inner(tree, &query.proposition, &query.selection_attrs)
}

/// Numeric statistics accompanying one interpretation class: the
/// attribute-dependent measures every summary stores (§3.2.1 — count,
/// min, max, mean, standard deviation).
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// BK attribute index.
    pub attr: usize,
    /// Aggregated statistics over the class's extent.
    pub stats: relation::stats::AttributeStats,
}

/// Like [`approximate_answer`], but each class additionally carries the
/// merged numeric statistics of the selection attributes — so a
/// decision-support user gets "age = {young}, mean 12.4 ± 3.1 over
/// [6, 17]" instead of the descriptor alone.
pub fn approximate_answer_with_stats(
    tree: &SummaryTree,
    query: &SummaryQuery,
) -> Vec<(ApproxAnswer, Vec<ClassStats>)> {
    let zq = select_most_abstract(tree, &query.proposition);
    // Group the selected summaries into classes exactly as
    // `approximate_answer` does, but keep the node lists around to
    // aggregate their statistics.
    let mut class_nodes: BTreeMap<Vec<(usize, u128)>, Vec<crate::hierarchy::NodeId>> =
        BTreeMap::new();
    for z in zq {
        let node = tree.node(z);
        let class_key: Vec<(usize, u128)> = query
            .proposition
            .clauses
            .iter()
            .map(|c| (c.attr, node.intent.sets[c.attr].0))
            .collect();
        class_nodes.entry(class_key).or_default().push(z);
    }
    let answers = approximate_answer(tree, query);
    answers
        .into_iter()
        .map(|answer| {
            let key: Vec<(usize, u128)> = answer.class.iter().map(|(a, s)| (*a, s.0)).collect();
            let nodes = class_nodes.get(&key).cloned().unwrap_or_default();
            let stats = query
                .selection_attrs
                .iter()
                .map(|&attr| {
                    let mut acc = relation::stats::AttributeStats::new();
                    for &z in &nodes {
                        acc.merge(&tree.stats_of(z)[attr]);
                    }
                    ClassStats { attr, stats: acc }
                })
                .collect();
            (answer, stats)
        })
        .collect()
}

fn approximate_answer_inner(
    tree: &SummaryTree,
    prop: &Proposition,
    selection_attrs: &[usize],
) -> Vec<ApproxAnswer> {
    let zq = select_most_abstract(tree, prop);
    // Class key: the summary's descriptor sets restricted to the
    // predicate attributes ("same required characteristics on all
    // predicates").
    type ClassAccumulator = (Vec<(usize, DescriptorSet)>, f64);
    let mut classes: BTreeMap<Vec<(usize, u128)>, ClassAccumulator> = BTreeMap::new();
    for z in zq {
        let node = tree.node(z);
        let class_key: Vec<(usize, u128)> = prop
            .clauses
            .iter()
            .map(|c| (c.attr, node.intent.sets[c.attr].0))
            .collect();
        let entry = classes.entry(class_key).or_insert_with(|| {
            (
                selection_attrs
                    .iter()
                    .map(|&a| (a, DescriptorSet::EMPTY))
                    .collect(),
                0.0,
            )
        });
        for (attr, set) in entry.0.iter_mut() {
            *set = set.union(node.intent.sets[*attr]);
        }
        entry.1 += node.count;
    }
    classes
        .into_iter()
        .map(|(key, (answer, weight))| ApproxAnswer {
            class: key
                .into_iter()
                .map(|(a, bits)| (a, DescriptorSet(bits)))
                .collect(),
            answer,
            weight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SourceId;
    use crate::engine::{EngineConfig, SaintEtiQEngine};
    use crate::query::proposition::reformulate;
    use fuzzy::bk::BackgroundKnowledge;
    use relation::query::SelectQuery;
    use relation::schema::Schema;
    use relation::table::Table;
    use relation::value::Value;

    fn summarized_table1() -> (SummaryTree, BackgroundKnowledge) {
        let bk = BackgroundKnowledge::medical_cbk();
        let mut e = SaintEtiQEngine::new(
            bk.clone(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(1),
        )
        .unwrap();
        e.summarize_table(&Table::patient_table1());
        (e.into_tree(), bk)
    }

    /// The paper's §5.2.2 example: the output set for both classes is
    /// `age = {young}` — "all female patients diagnosed with anorexia and
    /// having an underweight or normal BMI are young girls."
    #[test]
    fn paper_approximate_answer() {
        let (tree, bk) = summarized_table1();
        let sq = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
        let answers = approximate_answer(&tree, &sq);
        assert!(!answers.is_empty());

        let age_attr = bk.attribute_index("age").unwrap();
        let age_vocab = bk.attribute_at(age_attr).unwrap();
        let young = age_vocab.label_id("young").unwrap();
        for ans in &answers {
            let (_, age_set) = ans.answer.iter().find(|(a, _)| *a == age_attr).unwrap();
            assert_eq!(age_set.len(), 1, "answer is exactly one descriptor");
            assert!(age_set.contains(young), "age = {{young}}");
        }
        // Total weight behind the answers covers t1 and t3.
        let total: f64 = answers.iter().map(|a| a.weight).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_readable() {
        let (tree, bk) = summarized_table1();
        let sq = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
        let answers = approximate_answer(&tree, &sq);
        let text = answers[0].render(&bk);
        assert!(text.contains("age = {young}"), "{text}");
        assert!(text.contains("anorexia"), "{text}");
    }

    #[test]
    fn classes_split_on_predicate_characteristics() {
        // Distinct bmi readings (underweight vs normal) form distinct
        // classes when both satisfy the clause.
        let (tree, bk) = summarized_table1();
        let q = SelectQuery::new(
            vec!["age".into()],
            vec![relation::predicate::Predicate::eq("sex", "female")],
        );
        let sq = reformulate(&q, &bk).unwrap();
        let answers = approximate_answer(&tree, &sq);
        // All of Table 1's female patients are young; classes may merge
        // or split depending on tree shape, but every answer is young.
        let age_attr = bk.attribute_index("age").unwrap();
        for ans in &answers {
            let (_, set) = ans.answer.iter().find(|(a, _)| *a == age_attr).unwrap();
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn no_answers_for_unmatched_query() {
        let (tree, bk) = summarized_table1();
        let q = SelectQuery::new(
            vec!["age".into()],
            vec![relation::predicate::Predicate::eq("disease", "diabetes")],
        );
        let sq = reformulate(&q, &bk).unwrap();
        assert!(approximate_answer(&tree, &sq).is_empty());
    }

    #[test]
    fn stats_enriched_answers_carry_real_moments() {
        let (tree, bk) = summarized_table1();
        let sq = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
        let enriched = approximate_answer_with_stats(&tree, &sq);
        assert!(!enriched.is_empty());
        let age_attr = bk.attribute_index("age").unwrap();
        // The paper's matching cohort is t1 (15) and t3 (18): the class
        // statistics must bracket those raw values.
        let mut total_count = 0.0;
        for (_, stats) in &enriched {
            let s = stats.iter().find(|cs| cs.attr == age_attr).unwrap();
            total_count += s.stats.count();
            if s.stats.count() > 0.0 {
                assert!(s.stats.min().unwrap() >= 15.0);
                assert!(s.stats.max().unwrap() <= 18.0);
                let mean = s.stats.mean().unwrap();
                assert!((15.0..=18.0).contains(&mean), "mean {mean}");
            }
        }
        assert!((total_count - 2.0).abs() < 1e-9, "two matching tuples");
    }

    #[test]
    fn stats_align_with_descriptor_answers() {
        // Every enriched answer pairs with the plain answer for the same
        // class key, in the same order.
        let (tree, bk) = summarized_table1();
        let sq = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
        let plain = approximate_answer(&tree, &sq);
        let enriched = approximate_answer_with_stats(&tree, &sq);
        assert_eq!(plain.len(), enriched.len());
        for (p, (e, stats)) in plain.iter().zip(&enriched) {
            assert_eq!(p.class, e.class);
            assert_eq!(p.answer, e.answer);
            assert_eq!(stats.len(), sq.selection_attrs.len());
        }
    }

    #[test]
    fn answer_weight_reflects_typicality() {
        let bk = BackgroundKnowledge::medical_cbk();
        let mut e = SaintEtiQEngine::new(
            bk.clone(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(1),
        )
        .unwrap();
        let mut table = Table::new(Schema::patient());
        // 10 young malaria patients, 1 old one.
        for _ in 0..10 {
            table
                .insert(vec![
                    Value::Int(10),
                    Value::text("male"),
                    Value::Float(21.0),
                    Value::text("malaria"),
                ])
                .unwrap();
        }
        table
            .insert(vec![
                Value::Int(80),
                Value::text("male"),
                Value::Float(21.0),
                Value::text("malaria"),
            ])
            .unwrap();
        e.summarize_table(&table);

        let q = SelectQuery::new(
            vec!["age".into()],
            vec![relation::predicate::Predicate::eq("disease", "malaria")],
        );
        let sq = reformulate(&q, &bk).unwrap();
        let answers = approximate_answer(e.tree(), &sq);
        let total: f64 = answers.iter().map(|a| a.weight).sum();
        assert!((total - 11.0).abs() < 1e-6);
        // The young reading dominates by weight — "malaria patients are
        // typically young".
        let age_attr = bk.attribute_index("age").unwrap();
        let young = bk
            .attribute_at(age_attr)
            .unwrap()
            .label_id("young")
            .unwrap();
        let young_weight: f64 = answers
            .iter()
            .filter(|a| {
                a.answer
                    .iter()
                    .any(|(attr, set)| *attr == age_attr && set.contains(young))
            })
            .map(|a| a.weight)
            .sum();
        assert!(young_weight >= 10.0);
    }
}
