//! Valuation and selection (§5.2; FQAS 2004 \[31\]).
//!
//! The proposition `P` is valuated in the context of each summary `z` by
//! comparing `z`'s intent to every clause:
//!
//! * every intent descriptor of the clause's attribute lies in the clause
//!   → **certain** (all of `z`'s content satisfies the predicate);
//! * some but not all → **possible** (descend for precision);
//! * none → **no** (prune the whole subtree: children specialize, so they
//!   cannot satisfy either).
//!
//! The selection algorithm performs "a fast exploration of the hierarchy
//! and returns the set `Z_Q` of most abstract summaries that satisfy the
//! query": certain nodes are reported without descending.

use crate::hierarchy::{Intent, NodeId, SummaryTree};

use super::proposition::Proposition;

/// Three-valued clause/proposition satisfaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Satisfaction {
    /// Every tuple described by the summary satisfies the proposition.
    Certain,
    /// Some descriptors match, some do not — children must be examined.
    Possible,
    /// No tuple described by the summary can satisfy the proposition.
    No,
}

/// Valuates `prop` against an intent.
pub fn valuate(prop: &Proposition, intent: &Intent) -> Satisfaction {
    let mut all_certain = true;
    for clause in &prop.clauses {
        let have = intent.sets[clause.attr];
        if have.is_empty() {
            // An empty attribute set means "no content": nothing to match.
            return Satisfaction::No;
        }
        if have.is_subset_of(&clause.set) {
            continue;
        }
        if have.intersects(&clause.set) {
            all_certain = false;
        } else {
            return Satisfaction::No;
        }
    }
    if all_certain {
        Satisfaction::Certain
    } else {
        Satisfaction::Possible
    }
}

/// The selection algorithm: returns `Z_Q`, the most abstract summaries
/// certainly satisfying the proposition, in DFS order.
///
/// Leaves valuate to either certain or no (their per-attribute intents
/// are singletons), so `Possible` only triggers descent.
pub fn select_most_abstract(tree: &SummaryTree, prop: &Proposition) -> Vec<NodeId> {
    if prop.is_unsatisfiable() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        if node.count <= 0.0 {
            continue;
        }
        match valuate(prop, &node.intent) {
            Satisfaction::Certain => out.push(id),
            Satisfaction::Possible => {
                for &c in node.children.iter().rev() {
                    stack.push(c);
                }
            }
            Satisfaction::No => {}
        }
    }
    out
}

/// Brute-force reference: the cells (leaves) whose single labels satisfy
/// every clause — the ground truth [`select_most_abstract`] must cover.
/// Only used by tests and debug assertions; O(#cells · #clauses).
pub fn satisfying_cells(tree: &SummaryTree, prop: &Proposition) -> Vec<crate::cell::CellKey> {
    tree.cells()
        .keys()
        .filter(|key| prop.clauses.iter().all(|c| c.set.contains(key.0[c.attr])))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKey, SourceId};
    use crate::engine::{incorporate_cell, EngineConfig, SaintEtiQEngine};
    use crate::query::proposition::{reformulate, Clause};
    use fuzzy::bk::BackgroundKnowledge;
    use fuzzy::descriptor::{DescriptorSet, LabelId};
    use proptest::prelude::*;
    use relation::query::SelectQuery;
    use relation::schema::Schema;
    use relation::table::Table;

    fn key(labels: &[u16]) -> CellKey {
        CellKey(labels.iter().map(|&l| LabelId(l)).collect())
    }

    fn intent_of(sets: &[&[u16]]) -> Intent {
        Intent {
            sets: sets
                .iter()
                .map(|ls| DescriptorSet::from_labels(ls.iter().map(|&l| LabelId(l))))
                .collect(),
        }
    }

    #[test]
    fn valuation_three_values() {
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::from_labels([LabelId(0), LabelId(1)]),
            }],
        };
        assert_eq!(
            valuate(&prop, &intent_of(&[&[0], &[5]])),
            Satisfaction::Certain
        );
        assert_eq!(
            valuate(&prop, &intent_of(&[&[0, 1], &[5]])),
            Satisfaction::Certain
        );
        assert_eq!(
            valuate(&prop, &intent_of(&[&[0, 2], &[5]])),
            Satisfaction::Possible
        );
        assert_eq!(valuate(&prop, &intent_of(&[&[2], &[5]])), Satisfaction::No);
        assert_eq!(valuate(&prop, &intent_of(&[&[], &[5]])), Satisfaction::No);
    }

    #[test]
    fn empty_proposition_is_certain() {
        let prop = Proposition::default();
        assert_eq!(
            valuate(&prop, &intent_of(&[&[1], &[2]])),
            Satisfaction::Certain
        );
    }

    #[test]
    fn selection_returns_most_abstract() {
        // Tree: two clusters; query matches exactly one whole cluster →
        // the cluster host (not its leaves) must be returned.
        let mut t = SummaryTree::new("bk", vec![4, 4]);
        let cfg = EngineConfig::default();
        for labels in [[0u16, 0], [0, 1], [3, 2], [3, 3]] {
            incorporate_cell(
                &mut t,
                &cfg,
                &key(&labels),
                SourceId(1),
                2.0,
                &[1.0, 1.0],
                None,
            );
        }
        t.check_invariants();
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::singleton(LabelId(0)),
            }],
        };
        let zq = select_most_abstract(&t, &prop);
        assert!(!zq.is_empty());
        // Every selected node is certain, and no selected node's parent is.
        for &z in &zq {
            assert_eq!(valuate(&prop, &t.node(z).intent), Satisfaction::Certain);
            if let Some(p) = t.node(z).parent {
                assert_ne!(
                    valuate(&prop, &t.node(p).intent),
                    Satisfaction::Certain,
                    "parent of a selected node must not be certain"
                );
            }
        }
        // The two matching cells are covered by the selection.
        let mut covered = 0.0;
        for &z in &zq {
            covered += t.node(z).count;
        }
        assert!((covered - 4.0).abs() < 1e-9, "both (0,*) cells selected");
    }

    #[test]
    fn unsatisfiable_proposition_selects_nothing() {
        let mut t = SummaryTree::new("bk", vec![2, 2]);
        incorporate_cell(
            &mut t,
            &EngineConfig::default(),
            &key(&[0, 0]),
            SourceId(1),
            1.0,
            &[1.0, 1.0],
            None,
        );
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::EMPTY,
            }],
        };
        assert!(select_most_abstract(&t, &prop).is_empty());
    }

    /// End-to-end: paper query over Table 1's summary selects summaries
    /// covering exactly t1 and t3.
    #[test]
    fn paper_query_on_table1_summary() {
        let bk = BackgroundKnowledge::medical_cbk();
        let mut e = SaintEtiQEngine::new(
            bk.clone(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(1),
        )
        .unwrap();
        e.summarize_table(&Table::patient_table1());
        let tree = e.tree();

        let sq = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
        let zq = select_most_abstract(tree, &sq.proposition);
        assert!(!zq.is_empty());
        let covered: f64 = zq.iter().map(|&z| tree.node(z).count).sum();
        // t1 and t3 weigh 1.0 each (cell c1 holds both); t2's cells
        // (male, malaria) must be excluded.
        assert!((covered - 2.0).abs() < 1e-9, "covered {covered}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `select_most_abstract` covers exactly the cells the brute-force
        /// reference finds, for random trees and random propositions —
        /// the core correctness property of summary-based routing.
        #[test]
        fn selection_equals_bruteforce(
            cells in prop::collection::btree_set((0u16..4, 0u16..4), 1..14),
            clause0 in 1u128..16,
            clause1 in 1u128..16,
        ) {
            let mut t = SummaryTree::new("bk", vec![4, 4]);
            let cfg = EngineConfig::default();
            for (i, &(a, b)) in cells.iter().enumerate() {
                incorporate_cell(
                    &mut t,
                    &cfg,
                    &key(&[a, b]),
                    SourceId(i as u32),
                    1.0,
                    &[1.0, 1.0],
                    None,
                );
            }
            t.check_invariants();
            let prop_q = Proposition {
                clauses: vec![
                    Clause { attr: 0, set: DescriptorSet(clause0) },
                    Clause { attr: 1, set: DescriptorSet(clause1) },
                ],
            };
            // Selected subtrees must cover exactly the brute-force cells.
            let zq = select_most_abstract(&t, &prop_q);
            let mut covered: Vec<CellKey> = Vec::new();
            for &z in &zq {
                t.for_each_leaf(z, |k, _| covered.push(k.clone()));
            }
            covered.sort();
            let mut expected = satisfying_cells(&t, &prop_q);
            expected.sort();
            prop_assert_eq!(covered, expected);
            // And no two selected nodes overlap (most-abstract = disjoint).
            let total: f64 = zq.iter().map(|&z| t.node(z).count).sum();
            let expected_mass = satisfying_cells(&t, &prop_q).len() as f64;
            prop_assert!((total - expected_mass).abs() < 1e-9);
        }
    }

    #[test]
    fn selection_skips_drained_nodes() {
        let mut t = SummaryTree::new("bk", vec![2, 2]);
        let cfg = EngineConfig::default();
        incorporate_cell(
            &mut t,
            &cfg,
            &key(&[0, 0]),
            SourceId(1),
            1.0,
            &[1.0, 1.0],
            None,
        );
        incorporate_cell(
            &mut t,
            &cfg,
            &key(&[1, 1]),
            SourceId(2),
            1.0,
            &[1.0, 1.0],
            None,
        );
        t.remove_source(SourceId(1));
        let prop = Proposition {
            clauses: vec![Clause {
                attr: 0,
                set: DescriptorSet::singleton(LabelId(0)),
            }],
        };
        assert!(
            select_most_abstract(&t, &prop).is_empty(),
            "drained data is gone"
        );
    }
}
