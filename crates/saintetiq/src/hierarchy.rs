//! The summary tree (Definitions 1–4 of the paper).
//!
//! A summary `z` is the bounding hyperrectangle of a cluster of grid
//! cells: an **intent** (one descriptor set per attribute), an extent
//! (here: a fractional tuple count plus per-attribute label histograms),
//! a set of covered cells `L_z`, and — the paper's P2P extension — a
//! **peer-extent** `P_z` (Definition 3) realized by per-cell source sets.
//! Summaries are arranged in a tree by the partial order `z ≼ z'` ⇔
//! `R_z ⊆ R_z'` (Definition 2): children specialize parents, leaves are
//! the grid cells themselves.
//!
//! The tree is an arena (`Vec<Node>` + `u32` ids) with tombstones;
//! structural edits are primitives the engine composes (create leaf,
//! create internal host, promote children, prune). Every primitive keeps
//! the cached per-node histograms, counts and intents consistent, and
//! [`SummaryTree::check_invariants`] verifies all of it for tests.

use std::collections::BTreeMap;

use fuzzy::descriptor::{DescriptorSet, Grade, LabelId};
use relation::stats::AttributeStats;

use crate::cell::{CellContent, CellKey, SourceId};

/// Node identifier inside one [`SummaryTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A summary intent: one descriptor set per BK attribute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Intent {
    /// `sets[a]` = labels of attribute `a` present in the summary.
    pub sets: Vec<DescriptorSet>,
}

impl Intent {
    /// An empty intent of the given arity.
    pub fn empty(arity: usize) -> Self {
        Self {
            sets: vec![DescriptorSet::EMPTY; arity],
        }
    }

    /// The intent of a single cell.
    pub fn of_cell(key: &CellKey) -> Self {
        Self {
            sets: key.0.iter().map(|&l| DescriptorSet::singleton(l)).collect(),
        }
    }

    /// True when the cell's labels are all inside the intent.
    pub fn covers_cell(&self, key: &CellKey) -> bool {
        self.sets.iter().zip(&key.0).all(|(s, &l)| s.contains(l))
    }

    /// Component-wise union.
    pub fn union_with(&mut self, other: &Intent) {
        for (s, o) in self.sets.iter_mut().zip(&other.sets) {
            *s = s.union(*o);
        }
    }

    /// Total number of descriptors across attributes.
    pub fn descriptor_count(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Symmetric-difference size against another intent — the summary
    /// "modification" measure of §4.2.1 (descriptor appearance and
    /// disappearance).
    pub fn distance(&self, other: &Intent) -> usize {
        self.sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| a.symmetric_distance(b))
            .sum()
    }
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent link (`None` for the root).
    pub parent: Option<NodeId>,
    /// Children in insertion order (empty for leaves).
    pub children: Vec<NodeId>,
    /// Cached intent: union of the intents below.
    pub intent: Intent,
    /// Total cell weight below (fractional tuple count).
    pub count: f64,
    /// Per-attribute, per-label weight histogram (drives the partition
    /// score and keeps intents exact under removals).
    pub hist: Vec<Vec<f64>>,
    /// For a leaf: the grid cell it stands for.
    pub cell: Option<CellKey>,
    /// Tombstone flag: dead nodes stay in the arena until rebuild.
    pub alive: bool,
}

impl Node {
    fn new(arity: usize, label_counts: &[usize], parent: Option<NodeId>) -> Self {
        Self {
            parent,
            children: Vec::new(),
            intent: Intent::empty(arity),
            count: 0.0,
            hist: label_counts.iter().map(|&n| vec![0.0; n]).collect(),
            cell: None,
            alive: true,
        }
    }

    /// True when the node is a leaf (stands for one cell).
    pub fn is_leaf(&self) -> bool {
        self.cell.is_some()
    }
}

/// Per-cell bookkeeping held by the tree.
#[derive(Debug, Clone)]
pub struct CellEntry {
    /// Aggregated weight / per-source contributions / max grades.
    pub content: CellContent,
    /// The leaf node standing for this cell.
    pub leaf: NodeId,
    /// Per *BK attribute* statistics of the raw numeric values mapped
    /// into the cell (entries for categorical attributes stay empty).
    pub stats: Vec<AttributeStats>,
}

/// A hierarchy of summaries over a fixed Background Knowledge.
#[derive(Debug, Clone)]
pub struct SummaryTree {
    /// Name of the BK this tree was built against (merge compatibility).
    bk_name: String,
    /// Labels per attribute (histogram dimensions).
    label_counts: Vec<usize>,
    nodes: Vec<Node>,
    root: NodeId,
    cells: BTreeMap<CellKey, CellEntry>,
}

impl SummaryTree {
    /// Creates an empty tree for a BK with the given per-attribute label
    /// counts.
    pub fn new(bk_name: impl Into<String>, label_counts: Vec<usize>) -> Self {
        let arity = label_counts.len();
        let root_node = Node::new(arity, &label_counts, None);
        Self {
            bk_name: bk_name.into(),
            label_counts,
            nodes: vec![root_node],
            root: NodeId(0),
            cells: BTreeMap::new(),
        }
    }

    /// The BK name the tree is bound to.
    pub fn bk_name(&self) -> &str {
        &self.bk_name
    }

    /// Per-attribute label counts.
    pub fn label_counts(&self) -> &[usize] {
        &self.label_counts
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.label_counts.len()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.idx()]
    }

    /// Number of live nodes.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Number of live leaves (= number of distinct cells).
    pub fn leaf_count(&self) -> usize {
        self.cells.len()
    }

    /// Total tuple weight in the tree.
    pub fn total_count(&self) -> f64 {
        self.node(self.root).count
    }

    /// Depth of the tree (root = 0; empty tree = 0).
    pub fn depth(&self) -> usize {
        fn walk(t: &SummaryTree, id: NodeId) -> usize {
            let n = t.node(id);
            n.children
                .iter()
                .map(|&c| 1 + walk(t, c))
                .max()
                .unwrap_or(0)
        }
        walk(self, self.root)
    }

    /// `(B, d)`: average branching factor over internal nodes and average
    /// leaf depth — the parameters of §6.1.1's storage model
    /// `C_m = k·(B^{d+1} − 1)/(B − 1)`.
    pub fn branching_stats(&self) -> (f64, f64) {
        let mut internal = 0usize;
        let mut child_sum = 0usize;
        let mut leaf_depth_sum = 0usize;
        let mut leaves = 0usize;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            let n = self.node(id);
            if n.is_leaf() {
                leaves += 1;
                leaf_depth_sum += depth;
            } else {
                internal += 1;
                child_sum += n.children.len();
                for &c in &n.children {
                    stack.push((c, depth + 1));
                }
            }
        }
        let b = if internal == 0 {
            0.0
        } else {
            child_sum as f64 / internal as f64
        };
        let d = if leaves == 0 {
            0.0
        } else {
            leaf_depth_sum as f64 / leaves as f64
        };
        (b, d)
    }

    /// §6.1.1's average-case storage estimate in *nodes*:
    /// `(B^{d+1} − 1)/(B − 1)` for the tree's measured `(B, d)`. The
    /// actual node count should sit in the same ballpark — asserted by
    /// the `wire_codec` bench and the storage tests.
    pub fn storage_model_nodes(&self) -> f64 {
        let (b, d) = self.branching_stats();
        if b <= 1.0 {
            return self.live_node_count() as f64;
        }
        (b.powf(d + 1.0) - 1.0) / (b - 1.0)
    }

    /// The cell registry.
    pub fn cells(&self) -> &BTreeMap<CellKey, CellEntry> {
        &self.cells
    }

    /// The leaf standing for `key`, if the cell is present.
    pub fn leaf_of(&self, key: &CellKey) -> Option<NodeId> {
        self.cells.get(key).map(|e| e.leaf)
    }

    /// Peer-extent of a summary node (Definition 3): the union of sources
    /// of every cell below it.
    pub fn peer_extent(&self, id: NodeId) -> Vec<SourceId> {
        let mut out: Vec<SourceId> = Vec::new();
        self.for_each_leaf(id, |key, _| {
            if let Some(e) = self.cells.get(key) {
                out.extend(e.content.sources());
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All sources present anywhere in the tree (Definition 4's partner
    /// set `P_S`).
    pub fn all_sources(&self) -> Vec<SourceId> {
        let mut out: Vec<SourceId> = self
            .cells
            .values()
            .flat_map(|e| e.content.sources())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Aggregated statistics of a node: merged stats of every cell below.
    pub fn stats_of(&self, id: NodeId) -> Vec<AttributeStats> {
        let mut acc = vec![AttributeStats::new(); self.arity()];
        self.for_each_leaf(id, |key, _| {
            if let Some(e) = self.cells.get(key) {
                for (a, s) in acc.iter_mut().zip(&e.stats) {
                    a.merge(s);
                }
            }
        });
        acc
    }

    /// Visits every live leaf below `id` (inclusive), passing its cell key
    /// and node id.
    pub fn for_each_leaf<'a, F: FnMut(&'a CellKey, NodeId)>(&'a self, id: NodeId, mut f: F) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            if !node.alive {
                continue;
            }
            if let Some(key) = &node.cell {
                f(key, n);
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
    }

    // ---- structural primitives (used by the engine) ----

    fn alloc(&mut self, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let node = Node::new(self.arity(), &self.label_counts.clone(), parent);
        self.nodes.push(node);
        id
    }

    /// Creates an empty leaf for `key` under `parent` and registers the
    /// cell. The caller then adds weight via [`SummaryTree::add_to_cell`].
    pub fn create_leaf(&mut self, parent: NodeId, key: CellKey) -> NodeId {
        debug_assert!(!self.node(parent).is_leaf(), "cannot parent under a leaf");
        debug_assert!(!self.cells.contains_key(&key), "cell already present");
        let id = self.alloc(Some(parent));
        self.node_mut(id).cell = Some(key.clone());
        self.node_mut(id).intent = Intent::of_cell(&key);
        self.node_mut(parent).children.push(id);
        self.cells.insert(
            key,
            CellEntry {
                content: CellContent::default(),
                leaf: id,
                stats: vec![AttributeStats::new(); self.arity()],
            },
        );
        id
    }

    /// Creates an empty internal node under `parent`.
    pub fn create_internal(&mut self, parent: NodeId) -> NodeId {
        debug_assert!(!self.node(parent).is_leaf());
        let id = self.alloc(Some(parent));
        self.node_mut(parent).children.push(id);
        id
    }

    /// Moves `child` under `new_parent`, transferring its aggregates along
    /// both paths (up to their common ancestor the net change is zero, so
    /// we simply subtract along the old path and add along the new one).
    pub fn reparent(&mut self, child: NodeId, new_parent: NodeId) {
        let old_parent = self.node(child).parent.expect("cannot reparent the root");
        if old_parent == new_parent {
            return;
        }
        // Detach.
        let pos = self
            .node(old_parent)
            .children
            .iter()
            .position(|&c| c == child)
            .expect("child listed under parent");
        self.node_mut(old_parent).children.remove(pos);
        // Subtract aggregates along the old ancestor chain.
        let (count, hist) = {
            let n = self.node(child);
            (n.count, n.hist.clone())
        };
        let mut cur = Some(old_parent);
        while let Some(id) = cur {
            self.apply_delta(id, -count, &hist, -1.0);
            cur = self.node(id).parent;
        }
        // Attach.
        self.node_mut(child).parent = Some(new_parent);
        self.node_mut(new_parent).children.push(child);
        let mut cur = Some(new_parent);
        while let Some(id) = cur {
            self.apply_delta(id, count, &hist, 1.0);
            cur = self.node(id).parent;
        }
    }

    /// Applies a signed histogram/count delta to one node and refreshes
    /// its cached intent bits. `sign` tells whether `hist` is added or
    /// subtracted (+1 / −1).
    fn apply_delta(&mut self, id: NodeId, dcount: f64, hist: &[Vec<f64>], sign: f64) {
        let node = self.node_mut(id);
        node.count = (node.count + dcount).max(0.0);
        for (attr, (own, delta)) in node.hist.iter_mut().zip(hist).enumerate() {
            for (l, (slot, &d)) in own.iter_mut().zip(delta).enumerate() {
                *slot = (*slot + sign * d).max(0.0);
                let label = LabelId(l as u16);
                if *slot > 1e-12 {
                    node.intent.sets[attr].insert(label);
                } else {
                    node.intent.sets[attr].remove(label);
                }
            }
        }
    }

    /// Adds `weight` of cell `key` from `source`, updating the leaf's
    /// content and aggregates along the path to the root. Optional raw
    /// numeric values update the cell statistics.
    ///
    /// The cell must already have a leaf (see [`SummaryTree::create_leaf`]).
    pub fn add_to_cell(
        &mut self,
        key: &CellKey,
        source: SourceId,
        weight: f64,
        grades: &[Grade],
        raw_values: Option<&[Option<f64>]>,
    ) {
        let entry = self.cells.get_mut(key).expect("cell registered");
        entry.content.add(source, weight, grades);
        if let Some(raw) = raw_values {
            for (s, v) in entry.stats.iter_mut().zip(raw) {
                if let Some(x) = v {
                    s.push_weighted(*x, weight);
                }
            }
        }
        let leaf = entry.leaf;
        // Build the single-cell histogram delta once.
        let mut hist: Vec<Vec<f64>> = self.label_counts.iter().map(|&n| vec![0.0; n]).collect();
        for (attr, &l) in key.0.iter().enumerate() {
            hist[attr][l.index()] = weight;
        }
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            self.apply_delta(id, weight, &hist, 1.0);
            cur = self.node(id).parent;
        }
    }

    /// Merges externally-computed statistics into a cell (used when
    /// merging two hierarchies, where raw values are no longer available).
    pub fn merge_cell_stats(&mut self, key: &CellKey, stats: &[AttributeStats]) {
        if let Some(entry) = self.cells.get_mut(key) {
            for (own, other) in entry.stats.iter_mut().zip(stats) {
                own.merge(other);
            }
        }
    }

    /// Removes up to `weight` of `source`'s contribution to cell `key`;
    /// prunes the leaf if it drains. Returns the removed weight.
    ///
    /// Used by push-mode deletes/updates: the before-image maps to cells
    /// whose weights are retracted.
    pub fn remove_from_cell(&mut self, key: &CellKey, source: SourceId, weight: f64) -> f64 {
        let Some(entry) = self.cells.get_mut(key) else {
            return 0.0;
        };
        let leaf = entry.leaf;
        let removed = entry.content.remove(source, weight);
        if removed == 0.0 {
            return 0.0;
        }
        let drained = entry.content.is_empty();
        let mut hist: Vec<Vec<f64>> = self.label_counts.iter().map(|&n| vec![0.0; n]).collect();
        for (attr, &l) in key.0.iter().enumerate() {
            hist[attr][l.index()] = removed;
        }
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            self.apply_delta(id, -removed, &hist, -1.0);
            cur = self.node(id).parent;
        }
        if drained {
            self.cells.remove(key);
            self.kill_and_prune(leaf);
        }
        removed
    }

    /// Removes every contribution of `source` from cell `key`; prunes the
    /// leaf if it drains. Returns the removed weight.
    pub fn remove_source_from_cell(&mut self, key: &CellKey, source: SourceId) -> f64 {
        let Some(entry) = self.cells.get_mut(key) else {
            return 0.0;
        };
        let leaf = entry.leaf;
        let removed = entry.content.remove_source(source);
        if removed == 0.0 {
            return 0.0;
        }
        let drained = entry.content.is_empty();
        let mut hist: Vec<Vec<f64>> = self.label_counts.iter().map(|&n| vec![0.0; n]).collect();
        for (attr, &l) in key.0.iter().enumerate() {
            hist[attr][l.index()] = removed;
        }
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            self.apply_delta(id, -removed, &hist, -1.0);
            cur = self.node(id).parent;
        }
        if drained {
            self.cells.remove(key);
            self.kill_and_prune(leaf);
        }
        removed
    }

    /// Removes every contribution of `source` across the whole tree —
    /// what reconciliation effectively does for a departed partner when
    /// rebuilding is not desired (§4.3's first alternative keeps the
    /// descriptions; this primitive implements the second).
    pub fn remove_source(&mut self, source: SourceId) -> f64 {
        let keys: Vec<CellKey> = self
            .cells
            .iter()
            .filter(|(_, e)| e.content.per_source.contains_key(&source))
            .map(|(k, _)| k.clone())
            .collect();
        keys.iter()
            .map(|k| self.remove_source_from_cell(k, source))
            .sum()
    }

    /// Tombstones a node and prunes now-useless ancestors: empty internal
    /// nodes die; internal nodes left with a single child are collapsed
    /// (the child is spliced up), keeping the tree compact.
    fn kill_and_prune(&mut self, id: NodeId) {
        let parent = self.node(id).parent;
        self.node_mut(id).alive = false;
        if let Some(p) = parent {
            let pos = self.node(p).children.iter().position(|&c| c == id);
            if let Some(pos) = pos {
                self.node_mut(p).children.remove(pos);
            }
            self.prune_upwards(p);
        }
    }

    fn prune_upwards(&mut self, id: NodeId) {
        if id == self.root {
            return;
        }
        let node = self.node(id);
        if node.is_leaf() || !node.alive {
            return;
        }
        match node.children.len() {
            0 => {
                let parent = node.parent;
                self.node_mut(id).alive = false;
                if let Some(p) = parent {
                    let pos = self.node(p).children.iter().position(|&c| c == id);
                    if let Some(pos) = pos {
                        self.node_mut(p).children.remove(pos);
                    }
                    self.prune_upwards(p);
                }
            }
            1 => {
                // Splice the only child into the grandparent.
                let child = self.node(id).children[0];
                let parent = self.node(id).parent.expect("non-root");
                let pos = self
                    .node(parent)
                    .children
                    .iter()
                    .position(|&c| c == id)
                    .expect("listed");
                self.node_mut(parent).children[pos] = child;
                self.node_mut(child).parent = Some(parent);
                self.node_mut(id).alive = false;
                self.node_mut(id).children.clear();
            }
            _ => {}
        }
    }

    /// Splits `id` (an internal, non-root node): its children are promoted
    /// into its parent and `id` dies. This is the Cobweb *split* operator.
    pub fn split_node(&mut self, id: NodeId) {
        assert!(id != self.root, "cannot split the root");
        let node = self.node(id);
        assert!(!node.is_leaf(), "cannot split a leaf");
        let parent = node.parent.expect("non-root");
        let children = node.children.clone();
        let pos = self
            .node(parent)
            .children
            .iter()
            .position(|&c| c == id)
            .expect("listed");
        self.node_mut(parent).children.remove(pos);
        for c in &children {
            self.node_mut(*c).parent = Some(parent);
        }
        let insert_at = pos.min(self.node(parent).children.len());
        for (i, c) in children.into_iter().enumerate() {
            self.node_mut(parent).children.insert(insert_at + i, c);
        }
        self.node_mut(id).alive = false;
        self.node_mut(id).children.clear();
        // Aggregates of parent are unchanged: same leaves below.
    }

    /// Merges two children of `parent` under a fresh internal host and
    /// returns the host — the Cobweb *merge* operator.
    pub fn merge_children(&mut self, parent: NodeId, a: NodeId, b: NodeId) -> NodeId {
        assert_ne!(a, b);
        let host = self.create_internal(parent);
        self.reparent(a, host);
        self.reparent(b, host);
        host
    }

    /// Verifies every structural invariant; panics with a description on
    /// violation. Used heavily by tests and property tests.
    pub fn check_invariants(&self) {
        // Cell registry ↔ leaves.
        for (key, entry) in &self.cells {
            let leaf = self.node(entry.leaf);
            assert!(leaf.alive, "cell {key:?} points at dead leaf");
            assert_eq!(leaf.cell.as_ref(), Some(key), "leaf/cell key mismatch");
            assert!(
                (leaf.count - entry.content.weight).abs() < 1e-6,
                "leaf count {} != cell weight {}",
                leaf.count,
                entry.content.weight
            );
        }
        // Tree structure + aggregates.
        let mut seen_leaves = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            assert!(node.alive, "dead node {id:?} reachable");
            if let Some(key) = &node.cell {
                assert!(node.children.is_empty(), "leaf with children");
                assert!(self.cells.contains_key(key), "leaf for unregistered cell");
                seen_leaves += 1;
            } else {
                let mut count = 0.0;
                let mut intent = Intent::empty(self.arity());
                for &c in &node.children {
                    let child = self.node(c);
                    assert_eq!(child.parent, Some(id), "parent link broken");
                    count += child.count;
                    intent.union_with(&child.intent);
                    stack.push(c);
                }
                assert!(
                    (node.count - count).abs() < 1e-6,
                    "count mismatch at {id:?}: {} vs children {}",
                    node.count,
                    count
                );
                if id != self.root || !node.children.is_empty() {
                    assert_eq!(node.intent, intent, "intent != union of children at {id:?}");
                }
                // Histogram totals must match the count on every attribute.
                for attr_hist in &node.hist {
                    let total: f64 = attr_hist.iter().sum();
                    assert!(
                        (total - node.count).abs() < 1e-6,
                        "hist mass {total} != count {} at {id:?}",
                        node.count
                    );
                }
                // No internal node (except a root that still has < 2
                // leaves overall) may have exactly one child.
                if id != self.root {
                    assert!(node.children.len() != 1, "unary internal node {id:?}");
                }
            }
        }
        assert_eq!(
            seen_leaves,
            self.cells.len(),
            "unreachable or duplicate leaves"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(labels: &[u16]) -> CellKey {
        CellKey(labels.iter().map(|&l| LabelId(l)).collect())
    }

    fn tree() -> SummaryTree {
        SummaryTree::new("test-bk", vec![3, 4])
    }

    #[test]
    fn empty_tree() {
        let t = tree();
        assert_eq!(t.live_node_count(), 1);
        assert_eq!(t.leaf_count(), 0);
        assert_eq!(t.total_count(), 0.0);
        assert_eq!(t.depth(), 0);
        t.check_invariants();
    }

    #[test]
    fn single_cell_aggregates() {
        let mut t = tree();
        let root = t.root();
        let k = key(&[1, 2]);
        t.create_leaf(root, k.clone());
        t.add_to_cell(&k, SourceId(1), 0.7, &[0.7, 1.0], Some(&[Some(20.0), None]));
        t.check_invariants();
        assert!((t.total_count() - 0.7).abs() < 1e-12);
        assert!(t.node(root).intent.covers_cell(&k));
        let stats = t.stats_of(root);
        assert_eq!(stats[0].count(), 0.7);
        assert_eq!(stats[0].mean(), Some(20.0));
        assert_eq!(t.peer_extent(root), vec![SourceId(1)]);
    }

    #[test]
    fn multi_source_peer_extent() {
        let mut t = tree();
        let root = t.root();
        let ka = key(&[0, 0]);
        let kb = key(&[2, 3]);
        t.create_leaf(root, ka.clone());
        t.create_leaf(root, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 1.0, &[1.0, 1.0], None);
        t.add_to_cell(&ka, SourceId(2), 1.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(3), 1.0, &[1.0, 1.0], None);
        t.check_invariants();
        assert_eq!(
            t.peer_extent(root),
            vec![SourceId(1), SourceId(2), SourceId(3)]
        );
        let leaf_a = t.leaf_of(&ka).unwrap();
        assert_eq!(t.peer_extent(leaf_a), vec![SourceId(1), SourceId(2)]);
        assert_eq!(t.all_sources().len(), 3);
    }

    #[test]
    fn remove_source_drains_and_prunes() {
        let mut t = tree();
        let root = t.root();
        let ka = key(&[0, 0]);
        let kb = key(&[1, 1]);
        t.create_leaf(root, ka.clone());
        t.create_leaf(root, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 1.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(1), 0.5, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(2), 0.5, &[1.0, 1.0], None);

        let removed = t.remove_source(SourceId(1));
        assert!((removed - 1.5).abs() < 1e-12);
        t.check_invariants();
        assert_eq!(t.leaf_count(), 1, "cell a fully drained");
        assert!((t.total_count() - 0.5).abs() < 1e-12);
        // Intent no longer covers the drained cell's labels.
        assert!(!t.node(t.root()).intent.covers_cell(&ka));
    }

    #[test]
    fn reparent_moves_aggregates() {
        let mut t = tree();
        let root = t.root();
        let host = t.create_internal(root);
        let ka = key(&[0, 0]);
        let kb = key(&[1, 1]);
        t.create_leaf(host, ka.clone());
        let leaf_b = t.create_leaf(root, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 1.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(1), 1.0, &[1.0, 1.0], None);

        t.reparent(leaf_b, host);
        t.check_invariants();
        assert!((t.node(host).count - 2.0).abs() < 1e-12);
        assert!(t.node(host).intent.covers_cell(&kb));
        assert_eq!(
            t.node(root).children.len(),
            1,
            "root now holds just the host"
        );
    }

    #[test]
    fn split_promotes_children() {
        let mut t = tree();
        let root = t.root();
        let host = t.create_internal(root);
        let ka = key(&[0, 0]);
        let kb = key(&[1, 1]);
        let kc = key(&[2, 2]);
        t.create_leaf(host, ka.clone());
        t.create_leaf(host, kb.clone());
        t.create_leaf(root, kc.clone());
        for k in [&ka, &kb, &kc] {
            t.add_to_cell(k, SourceId(1), 1.0, &[1.0, 1.0], None);
        }
        t.split_node(host);
        t.check_invariants();
        assert_eq!(t.node(root).children.len(), 3);
        assert!((t.total_count() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_children_creates_host() {
        let mut t = tree();
        let root = t.root();
        let ka = key(&[0, 0]);
        let kb = key(&[0, 1]);
        let kc = key(&[2, 3]);
        let la = t.create_leaf(root, ka.clone());
        let lb = t.create_leaf(root, kb.clone());
        t.create_leaf(root, kc.clone());
        for k in [&ka, &kb, &kc] {
            t.add_to_cell(k, SourceId(1), 1.0, &[1.0, 1.0], None);
        }
        let host = t.merge_children(root, la, lb);
        t.check_invariants();
        assert_eq!(t.node(root).children.len(), 2);
        assert!((t.node(host).count - 2.0).abs() < 1e-12);
        assert!(t.node(host).intent.covers_cell(&ka));
        assert!(t.node(host).intent.covers_cell(&kb));
        assert!(!t.node(host).intent.covers_cell(&kc));
    }

    #[test]
    fn unary_chain_collapses_after_drain() {
        let mut t = tree();
        let root = t.root();
        let host = t.create_internal(root);
        let ka = key(&[0, 0]);
        let kb = key(&[1, 1]);
        t.create_leaf(host, ka.clone());
        t.create_leaf(host, kb.clone());
        t.add_to_cell(&ka, SourceId(1), 1.0, &[1.0, 1.0], None);
        t.add_to_cell(&kb, SourceId(2), 1.0, &[1.0, 1.0], None);
        // Drain cell a; host becomes unary and must collapse.
        t.remove_source(SourceId(1));
        t.check_invariants();
        let root_children = &t.node(root).children;
        assert_eq!(root_children.len(), 1);
        assert!(t.node(root_children[0]).is_leaf(), "host collapsed away");
    }

    #[test]
    fn branching_stats_on_known_shape() {
        // root -> host{(0,0),(1,1)}, leaf(2,2): B = (2+1)/2? No — root
        // has 2 children, host has 2: internal nodes {root, host} with
        // child sum 4 → B = 2; leaf depths: 2, 2, 1 → d = 5/3.
        let mut t = tree();
        let root = t.root();
        let host = t.create_internal(root);
        for (parent, labels) in [(host, [0u16, 0]), (host, [1, 1]), (root, [2, 2])] {
            let k = key(&labels);
            t.create_leaf(parent, k.clone());
            t.add_to_cell(&k, SourceId(1), 1.0, &[1.0, 1.0], None);
        }
        let (b, d) = t.branching_stats();
        assert!((b - 2.0).abs() < 1e-12);
        assert!((d - 5.0 / 3.0).abs() < 1e-12);
        // The model estimate is in the ballpark of the real node count.
        let model = t.storage_model_nodes();
        let real = t.live_node_count() as f64;
        assert!(
            model > real * 0.4 && model < real * 2.5,
            "model {model} real {real}"
        );
    }

    #[test]
    fn intent_distance_counts_appearances() {
        let a = Intent {
            sets: vec![
                DescriptorSet::from_labels([LabelId(0), LabelId(1)]),
                DescriptorSet::singleton(LabelId(2)),
            ],
        };
        let b = Intent {
            sets: vec![
                DescriptorSet::singleton(LabelId(1)),
                DescriptorSet::from_labels([LabelId(2), LabelId(3)]),
            ],
        };
        assert_eq!(a.distance(&b), 2); // label 0 disappeared, label 3 appeared
        assert_eq!(a.descriptor_count(), 3);
    }
}
