#![warn(missing_docs)]

//! SaintEtiQ: the database summarization engine the paper builds on
//! (Raschia & Mouaddib 2002 \[12\]; Saint-Paul, Raschia & Mouaddib, VLDB
//! 2005 \[29\]).
//!
//! The engine turns a relational table into a hierarchy of fuzzy,
//! linguistic **summaries** through a two-step online process (§3.2):
//!
//! 1. **Mapping service** ([`mapping`]) — each record is rewritten into
//!    linguistic descriptors from the Background Knowledge; overlapping
//!    readings split the record across *grid cells* with fractional
//!    weights (Table 2 of the paper: three patients become cells `c1`
//!    (count 2), `c2` (0.7), `c3` (0.3)).
//! 2. **Summarization service** ([`engine`], [`hierarchy`]) — cells are
//!    incorporated one by one into a tree of summaries, descending from
//!    the root with Cobweb-style operators (*incorporate*, *create*,
//!    *merge*, *split*) scored by a category-utility partition score
//!    ([`score`]). Leaves are the grid cells themselves; inner nodes are
//!    hyperrectangle summaries (Definition 1).
//!
//! On top of the engine this crate implements everything the P2P layer
//! needs from the cited companion papers:
//!
//! * summary **merging** ([`merge`]) — incorporate the leaves of one
//!   hierarchy into another (Bechchi et al., CIKM 2007 \[27\]), with cost
//!   independent of the number of raw tuples;
//! * **delta reconciliation** ([`delta`]) — a per-source accumulator
//!   over merged summaries (`update_source` / `remove_source`) whose
//!   canonical rebuild lets global summaries be maintained by pulling
//!   only the stale subset of partners instead of re-merging everyone;
//! * **incremental maintenance** ([`maintenance`]) — a summary changes
//!   only when descriptors appear/disappear in intents, which is how
//!   partner peers decide to send `push` messages (§4.2.1);
//! * **querying** ([`query`]) — CNF valuation and the selection algorithm
//!   returning the most abstract satisfying summaries `Z_Q` (Voglozin et
//!   al., FQAS 2004 \[31\]), plus the class-based **approximate answering**
//!   of §5.2.2;
//! * **wire encoding** ([`wire`]) — a compact binary codec (on `bytes`)
//!   used to measure summary sizes (§6.1.1 estimates ~512 B per node) and
//!   to ship summaries between peers.
//!
//! Sources: every cell carries the set of *sources* (peer ids) that
//! contributed it, realizing Definition 3's **peer-extent** — the summary
//! is simultaneously a database index and a semantic network index.

pub mod cell;
pub mod delta;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod maintenance;
pub mod mapping;
pub mod merge;
pub mod query;
pub mod score;
pub mod wire;

pub use cell::{CandidateCell, CellKey, SourceId};
pub use delta::{GsAccumulator, SourceDelta};
pub use engine::{EngineConfig, SaintEtiQEngine};
pub use error::SummaryError;
pub use hierarchy::{Intent, NodeId, SummaryTree};
pub use mapping::Mapper;
pub use query::approx::{approximate_answer, ApproxAnswer};
pub use query::proposition::{Clause, Proposition};
pub use query::selection::{select_most_abstract, Satisfaction};
