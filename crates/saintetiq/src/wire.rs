//! Wire codec for summary hierarchies.
//!
//! Summaries travel the network constantly (`localsum`, `reconciliation`
//! messages), so their encoded size is the unit of the paper's storage
//! model: §6.1.1 estimates ~512 bytes per summary node and total size
//! `k·(B^{d+1}−1)/(B−1)` for a B-ary tree of depth d. This codec encodes
//! the tree structure plus leaf contents; inner aggregates (counts,
//! histograms, intents) are recomputed on decode, which both shrinks the
//! wire format and guarantees decoded trees satisfy every invariant.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fuzzy::descriptor::LabelId;
use relation::stats::AttributeStats;

use crate::cell::{CellKey, SourceId};
use crate::error::SummaryError;
use crate::hierarchy::{NodeId, SummaryTree};

const MAGIC: &[u8; 4] = b"SETQ";
const VERSION: u8 = 1;

/// Encodes a summary tree.
pub fn encode(tree: &SummaryTree) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    let name = tree.bk_name().as_bytes();
    buf.put_u16(name.len() as u16);
    buf.put_slice(name);
    buf.put_u16(tree.arity() as u16);
    for &n in tree.label_counts() {
        buf.put_u16(n as u16);
    }
    encode_node(tree, tree.root(), &mut buf);
    buf.freeze()
}

fn encode_node(tree: &SummaryTree, id: NodeId, buf: &mut BytesMut) {
    let node = tree.node(id);
    if let Some(key) = &node.cell {
        buf.put_u8(1); // leaf
        for &l in &key.0 {
            buf.put_u16(l.0);
        }
        let entry = &tree.cells()[key];
        buf.put_f64(entry.content.weight);
        buf.put_u32(entry.content.per_source.len() as u32);
        for (&s, &w) in &entry.content.per_source {
            buf.put_u32(s.0);
            buf.put_f64(w);
        }
        debug_assert_eq!(entry.content.max_grades.len(), tree.arity());
        for &g in &entry.content.max_grades {
            buf.put_f64(g);
        }
        for st in &entry.stats {
            let (c, mn, mx, mean, m2) = st.raw_parts();
            if c > 0.0 {
                buf.put_u8(1);
                buf.put_f64(c);
                buf.put_f64(mn);
                buf.put_f64(mx);
                buf.put_f64(mean);
                buf.put_f64(m2);
            } else {
                buf.put_u8(0);
            }
        }
    } else {
        buf.put_u8(0); // internal
        buf.put_u16(node.children.len() as u16);
        for &c in &node.children {
            encode_node(tree, c, buf);
        }
    }
}

/// Decodes a summary tree encoded by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<SummaryTree, SummaryError> {
    let mut buf = bytes;
    let err = |m: &str| SummaryError::Codec(m.to_string());
    if buf.remaining() < 5 || &buf[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    buf.advance(4);
    if buf.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    if buf.remaining() < 2 {
        return Err(err("truncated name"));
    }
    let name_len = buf.get_u16() as usize;
    if buf.remaining() < name_len {
        return Err(err("truncated name"));
    }
    let name = String::from_utf8(buf[..name_len].to_vec()).map_err(|_| err("name not utf8"))?;
    buf.advance(name_len);
    if buf.remaining() < 2 {
        return Err(err("truncated arity"));
    }
    let arity = buf.get_u16() as usize;
    let mut label_counts = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 2 {
            return Err(err("truncated label counts"));
        }
        label_counts.push(buf.get_u16() as usize);
    }
    let mut tree = SummaryTree::new(name, label_counts);
    let root = tree.root();
    decode_node(&mut tree, root, &mut buf, arity, true)?;
    if buf.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(tree)
}

fn decode_node(
    tree: &mut SummaryTree,
    parent: NodeId,
    buf: &mut &[u8],
    arity: usize,
    is_root: bool,
) -> Result<(), SummaryError> {
    let err = |m: &str| SummaryError::Codec(m.to_string());
    if !buf.has_remaining() {
        return Err(err("truncated node"));
    }
    let tag = buf.get_u8();
    match tag {
        1 => {
            // Leaf: read the cell and attach under `parent`.
            if buf.remaining() < arity * 2 {
                return Err(err("truncated cell key"));
            }
            let key = CellKey((0..arity).map(|_| LabelId(buf.get_u16())).collect());
            if buf.remaining() < 8 + 4 {
                return Err(err("truncated cell content"));
            }
            let _total = buf.get_f64();
            let n_sources = buf.get_u32() as usize;
            if buf.remaining() < n_sources * 12 {
                return Err(err("truncated sources"));
            }
            let sources: Vec<(SourceId, f64)> = (0..n_sources)
                .map(|_| (SourceId(buf.get_u32()), buf.get_f64()))
                .collect();
            if buf.remaining() < arity * 8 {
                return Err(err("truncated grades"));
            }
            let grades: Vec<f64> = (0..arity).map(|_| buf.get_f64()).collect();
            let mut stats = Vec::with_capacity(arity);
            for _ in 0..arity {
                if !buf.has_remaining() {
                    return Err(err("truncated stats"));
                }
                if buf.get_u8() == 1 {
                    if buf.remaining() < 40 {
                        return Err(err("truncated stats body"));
                    }
                    let (c, mn, mx, mean, m2) = (
                        buf.get_f64(),
                        buf.get_f64(),
                        buf.get_f64(),
                        buf.get_f64(),
                        buf.get_f64(),
                    );
                    stats.push(AttributeStats::from_raw_parts(c, mn, mx, mean, m2));
                } else {
                    stats.push(AttributeStats::new());
                }
            }
            // A leaf directly at the root slot: the decoded parent here is
            // always an internal node we created, so attach normally.
            tree.create_leaf(parent, key.clone());
            for (s, w) in sources {
                tree.add_to_cell(&key, s, w, &grades, None);
            }
            tree.merge_cell_stats(&key, &stats);
            Ok(())
        }
        0 => {
            if buf.remaining() < 2 {
                return Err(err("truncated child count"));
            }
            let n = buf.get_u16() as usize;
            let host = if is_root {
                parent
            } else {
                tree.create_internal(parent)
            };
            for _ in 0..n {
                decode_node(tree, host, buf, arity, false)?;
            }
            Ok(())
        }
        _ => Err(err("bad node tag")),
    }
}

/// Encoded size in bytes.
pub fn encoded_size(tree: &SummaryTree) -> usize {
    encode(tree).len()
}

/// Average encoded bytes per live node — comparable to the paper's
/// `k ≈ 512` bytes/summary estimate.
pub fn avg_node_bytes(tree: &SummaryTree) -> f64 {
    let nodes = tree.live_node_count().max(1);
    encoded_size(tree) as f64 / nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SaintEtiQEngine};
    use fuzzy::bk::BackgroundKnowledge;
    use rand::SeedableRng;
    use relation::generator::{patient_table, MatchTarget, PatientDistributions};
    use relation::schema::Schema;
    use relation::table::Table;

    fn summary(seed: u64, n: usize) -> SummaryTree {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = PatientDistributions::default();
        let table = patient_table(&mut rng, n, &dist, &MatchTarget::default(), 0);
        let mut e = SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            crate::cell::SourceId(7),
        )
        .unwrap();
        e.summarize_table(&table);
        e.into_tree()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = summary(1, 150);
        let bytes = encode(&t);
        let d = decode(&bytes).unwrap();
        d.check_invariants();
        assert_eq!(d.bk_name(), t.bk_name());
        assert_eq!(d.label_counts(), t.label_counts());
        assert_eq!(d.leaf_count(), t.leaf_count());
        assert!((d.total_count() - t.total_count()).abs() < 1e-9);
        assert_eq!(
            d.live_node_count(),
            t.live_node_count(),
            "structure preserved"
        );
        assert_eq!(d.depth(), t.depth());
        for (k, entry) in t.cells() {
            let de = &d.cells()[k];
            assert!((de.content.weight - entry.content.weight).abs() < 1e-12);
            assert_eq!(de.content.per_source, entry.content.per_source);
            assert_eq!(de.content.max_grades, entry.content.max_grades);
            for (a, b) in de.stats.iter().zip(&entry.stats) {
                assert_eq!(a.raw_parts(), b.raw_parts());
            }
        }
        // Root intents agree.
        assert_eq!(d.node(d.root()).intent, t.node(t.root()).intent);
    }

    #[test]
    fn empty_tree_roundtrip() {
        let t = SummaryTree::new("bk", vec![3, 4]);
        let d = decode(&encode(&t)).unwrap();
        assert_eq!(d.leaf_count(), 0);
        assert_eq!(d.total_count(), 0.0);
    }

    #[test]
    fn tiny_tree_roundtrip() {
        let mut e = SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            crate::cell::SourceId(1),
        )
        .unwrap();
        e.summarize_table(&Table::patient_table1());
        let t = e.into_tree();
        let d = decode(&encode(&t)).unwrap();
        d.check_invariants();
        assert_eq!(d.leaf_count(), 3);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let t = summary(2, 50);
        let bytes = encode(&t);
        // Truncations at every prefix length must fail cleanly.
        for cut in [0, 3, 4, 5, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.to_vec();
        bad.push(0);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn node_size_is_in_the_papers_ballpark() {
        // §6.1.1 estimates ~512 B per summary; our leaner codec must stay
        // within the same order of magnitude (and below it).
        let t = summary(3, 500);
        let per_node = avg_node_bytes(&t);
        assert!(per_node > 16.0, "suspiciously small: {per_node}");
        assert!(per_node < 1024.0, "node encoding exploded: {per_node}");
    }

    #[test]
    fn size_grows_with_content_but_sublinearly() {
        let small = encoded_size(&summary(4, 50));
        let large = encoded_size(&summary(5, 2000));
        assert!(large > small);
        // 40x the tuples must NOT give 40x the bytes: cells saturate.
        assert!(
            (large as f64) < (small as f64) * 10.0,
            "small={small} large={large}"
        );
    }
}
