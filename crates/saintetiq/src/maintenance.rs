//! Incremental-maintenance observation (§4.2.1).
//!
//! A partner peer "observes the modification rate issued on its local
//! summary" — not on the database — and pushes a freshness flag when the
//! summary is "enough modified". The paper: *"A summary modification can
//! be detected by observing the appearance/disappearance of descriptors
//! in summary intentions."* [`SummaryObserver`] snapshots the root intent
//! and leaf-cell set and quantifies drift since the snapshot.

use std::collections::BTreeSet;

use crate::cell::CellKey;
use crate::hierarchy::{Intent, SummaryTree};

/// Snapshot-based drift detector over a summary hierarchy.
#[derive(Debug, Clone)]
pub struct SummaryObserver {
    snapshot_intent: Intent,
    snapshot_cells: BTreeSet<CellKey>,
}

impl SummaryObserver {
    /// Snapshots the current state of `tree`.
    pub fn snapshot(tree: &SummaryTree) -> Self {
        Self {
            snapshot_intent: tree.node(tree.root()).intent.clone(),
            snapshot_cells: tree.cells().keys().cloned().collect(),
        }
    }

    /// Number of descriptors that appeared or disappeared in the root
    /// intent since the snapshot.
    pub fn descriptor_drift(&self, tree: &SummaryTree) -> usize {
        self.snapshot_intent
            .distance(&tree.node(tree.root()).intent)
    }

    /// Number of cells that appeared or disappeared since the snapshot.
    pub fn cell_drift(&self, tree: &SummaryTree) -> usize {
        let now: BTreeSet<CellKey> = tree.cells().keys().cloned().collect();
        now.symmetric_difference(&self.snapshot_cells).count()
    }

    /// Modification rate in `[0, 1]`: descriptor drift normalized by the
    /// size of the union of old and new intents (so both growth and decay
    /// register), with cell drift as a tie-breaking secondary signal.
    pub fn modification_rate(&self, tree: &SummaryTree) -> f64 {
        let now = &tree.node(tree.root()).intent;
        let mut union = self.snapshot_intent.clone();
        union.union_with(now);
        let denom = union.descriptor_count().max(1);
        (self.descriptor_drift(tree) as f64 / denom as f64).clamp(0.0, 1.0)
    }

    /// True when the summary drifted at least `threshold` (the peer then
    /// sends its `push` message setting freshness to 1).
    pub fn is_modified(&self, tree: &SummaryTree, threshold: f64) -> bool {
        self.modification_rate(tree) >= threshold
    }

    /// Re-snapshots in place (after a push or a reconciliation).
    pub fn reset(&mut self, tree: &SummaryTree) {
        *self = Self::snapshot(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SourceId;
    use crate::engine::{EngineConfig, SaintEtiQEngine};
    use fuzzy::bk::BackgroundKnowledge;
    use relation::schema::Schema;
    use relation::table::Table;
    use relation::value::Value;

    fn engine_with_table1() -> (SaintEtiQEngine, Table) {
        let mut e = SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(1),
        )
        .unwrap();
        let t = Table::patient_table1();
        e.summarize_table(&t);
        (e, t)
    }

    #[test]
    fn fresh_snapshot_has_zero_drift() {
        let (e, _) = engine_with_table1();
        let obs = SummaryObserver::snapshot(e.tree());
        assert_eq!(obs.descriptor_drift(e.tree()), 0);
        assert_eq!(obs.cell_drift(e.tree()), 0);
        assert_eq!(obs.modification_rate(e.tree()), 0.0);
        assert!(!obs.is_modified(e.tree(), 0.01));
    }

    #[test]
    fn similar_records_do_not_drift() {
        // §4.2.1: "As more tuples are processed, the need to adapt the
        // hierarchy decreases" — a record mapping into existing cells
        // leaves the intent untouched.
        let (mut e, _) = engine_with_table1();
        let obs = SummaryObserver::snapshot(e.tree());
        e.add_record(&[
            Value::Int(16),
            Value::text("female"),
            Value::Float(16.0),
            Value::text("anorexia"),
        ]);
        assert_eq!(obs.descriptor_drift(e.tree()), 0, "no new descriptors");
        assert!(!obs.is_modified(e.tree(), 0.01));
    }

    #[test]
    fn novel_records_register_as_drift() {
        let (mut e, _) = engine_with_table1();
        let obs = SummaryObserver::snapshot(e.tree());
        e.add_record(&[
            Value::Int(80),
            Value::text("male"),
            Value::Float(30.0),
            Value::text("diabetes"),
        ]);
        assert!(
            obs.descriptor_drift(e.tree()) >= 3,
            "old, overweight, diabetes appear"
        );
        assert!(obs.cell_drift(e.tree()) >= 1);
        assert!(obs.modification_rate(e.tree()) > 0.0);
        assert!(obs.is_modified(e.tree(), 0.1));
    }

    #[test]
    fn disappearance_also_registers() {
        let (mut e, table) = engine_with_table1();
        let obs = SummaryObserver::snapshot(e.tree());
        // Remove the only malaria patient: its descriptors disappear.
        let t2 = table.get(relation::tuple::TupleId(2)).unwrap();
        e.remove_record(&t2.values);
        assert!(
            obs.descriptor_drift(e.tree()) >= 2,
            "male/malaria/adult vanish"
        );
        assert!(obs.modification_rate(e.tree()) > 0.0);
    }

    #[test]
    fn reset_clears_drift() {
        let (mut e, _) = engine_with_table1();
        let mut obs = SummaryObserver::snapshot(e.tree());
        e.add_record(&[
            Value::Int(80),
            Value::text("male"),
            Value::Float(30.0),
            Value::text("diabetes"),
        ]);
        assert!(obs.modification_rate(e.tree()) > 0.0);
        obs.reset(e.tree());
        assert_eq!(obs.modification_rate(e.tree()), 0.0);
    }

    #[test]
    fn rate_is_bounded() {
        let (mut e, _) = engine_with_table1();
        let obs = SummaryObserver::snapshot(e.tree());
        // Blow the summary up with very different data.
        for age in [70, 75, 80, 85] {
            e.add_record(&[
                Value::Int(age),
                Value::text("male"),
                Value::Float(35.0),
                Value::text("hypertension"),
            ]);
        }
        let rate = obs.modification_rate(e.tree());
        assert!((0.0..=1.0).contains(&rate));
        assert!(rate > 0.2, "large drift expected, got {rate}");
    }
}
