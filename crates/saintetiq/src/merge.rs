//! Merging distributed summary hierarchies (Bechchi, Raschia & Mouaddib,
//! CIKM 2007 — the paper's reference \[27\]).
//!
//! `Merging(S1, S2)` incorporates the **leaves** `L_z` of `S1` into `S2`
//! using the same incorporation algorithm as the summarization service.
//! Its cost is therefore proportional to the number of leaves of `S1` —
//! *constant with respect to the number of raw tuples* (§6.1.1), which is
//! what makes global-summary maintenance affordable: a peer with a
//! million records still ships and merges at most `max_cells(BK)` leaves.
//!
//! Each merged leaf carries its per-source weights, so the peer-extent
//! (Definition 3) survives merging, and its statistics are folded in.

use crate::engine::{incorporate_cell, EngineConfig};
use crate::error::SummaryError;
use crate::hierarchy::SummaryTree;

/// Merges `source`'s leaves into `target`.
///
/// Both trees must be built over the same Background Knowledge (same name
/// and label geometry) — the paper's CBK assumption (§4.1).
pub fn merge_into(
    target: &mut SummaryTree,
    source: &SummaryTree,
    config: &EngineConfig,
) -> Result<(), SummaryError> {
    if target.bk_name() != source.bk_name() || target.label_counts() != source.label_counts() {
        return Err(SummaryError::IncompatibleBk {
            left: target.bk_name().to_string(),
            right: source.bk_name().to_string(),
        });
    }
    for (key, entry) in source.cells() {
        for (&src, &w) in &entry.content.per_source {
            incorporate_cell(target, config, key, src, w, &entry.content.max_grades, None);
        }
        target.merge_cell_stats(key, &entry.stats);
    }
    Ok(())
}

/// Merges many summaries into a fresh tree — what the paper's
/// reconciliation token computes as it hops from partner to partner
/// (§4.2.2): `NewGS` starts empty and each partner merges its local
/// summary in.
pub fn merge_all<'a, I>(
    bk_name: &str,
    label_counts: &[usize],
    summaries: I,
    config: &EngineConfig,
) -> Result<SummaryTree, SummaryError>
where
    I: IntoIterator<Item = &'a SummaryTree>,
{
    let mut out = SummaryTree::new(bk_name.to_string(), label_counts.to_vec());
    for s in summaries {
        merge_into(&mut out, s, config)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::SourceId;
    use crate::engine::SaintEtiQEngine;
    use fuzzy::bk::BackgroundKnowledge;
    use rand::SeedableRng;
    use relation::generator::{patient_table, MatchTarget, PatientDistributions};
    use relation::schema::Schema;

    fn local_summary(seed: u64, source: u32, n: usize) -> SummaryTree {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = PatientDistributions::default();
        let table = patient_table(&mut rng, n, &dist, &MatchTarget::default(), 0);
        let mut e = SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(source),
        )
        .unwrap();
        e.summarize_table(&table);
        e.into_tree()
    }

    #[test]
    fn merge_preserves_mass_and_cells() {
        let a = local_summary(1, 1, 100);
        let b = local_summary(2, 2, 150);
        let mut merged = a.clone();
        merge_into(&mut merged, &b, &EngineConfig::default()).unwrap();
        merged.check_invariants();
        assert!(
            (merged.total_count() - (a.total_count() + b.total_count())).abs() < 1e-6,
            "mass is additive"
        );
        // Every cell of either input exists in the merge with summed weight.
        for (k, entry) in a.cells() {
            let w_b = b.cells().get(k).map(|e| e.content.weight).unwrap_or(0.0);
            let w_m = merged.cells()[k].content.weight;
            assert!((w_m - (entry.content.weight + w_b)).abs() < 1e-6);
        }
        for k in b.cells().keys() {
            assert!(merged.cells().contains_key(k));
        }
    }

    #[test]
    fn merge_unions_peer_extents() {
        let a = local_summary(3, 1, 80);
        let b = local_summary(4, 2, 80);
        let mut merged = a.clone();
        merge_into(&mut merged, &b, &EngineConfig::default()).unwrap();
        let sources = merged.all_sources();
        assert_eq!(
            sources,
            vec![SourceId(1), SourceId(2)],
            "Definition 4: P_S union"
        );
    }

    #[test]
    fn merge_result_size_bounded_by_inputs() {
        // §6.1.1: |merge(S1,S2)| is in the order of max(|S1|, |S2|) — in
        // cell terms, bounded by |cells(S1) ∪ cells(S2)|.
        let a = local_summary(5, 1, 200);
        let b = local_summary(6, 2, 200);
        let mut merged = a.clone();
        merge_into(&mut merged, &b, &EngineConfig::default()).unwrap();
        let union_bound = a
            .cells()
            .keys()
            .chain(b.cells().keys())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(merged.leaf_count(), union_bound);
    }

    #[test]
    fn merge_order_does_not_change_cells() {
        let a = local_summary(7, 1, 60);
        let b = local_summary(8, 2, 60);
        let cfg = EngineConfig::default();
        let ab = {
            let mut t = a.clone();
            merge_into(&mut t, &b, &cfg).unwrap();
            t
        };
        let ba = {
            let mut t = b.clone();
            merge_into(&mut t, &a, &cfg).unwrap();
            t
        };
        let ka: Vec<_> = ab.cells().keys().cloned().collect();
        let kb: Vec<_> = ba.cells().keys().cloned().collect();
        assert_eq!(ka, kb);
        for k in &ka {
            assert!((ab.cells()[k].content.weight - ba.cells()[k].content.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_all_reconciliation_chain() {
        let locals: Vec<SummaryTree> = (0..5)
            .map(|i| local_summary(10 + i as u64, i, 50))
            .collect();
        let merged = merge_all(
            locals[0].bk_name(),
            locals[0].label_counts(),
            locals.iter(),
            &EngineConfig::default(),
        )
        .unwrap();
        merged.check_invariants();
        assert!((merged.total_count() - 250.0).abs() < 1e-6);
        assert_eq!(merged.all_sources().len(), 5);
    }

    #[test]
    fn incompatible_bk_rejected() {
        let a = local_summary(20, 1, 10);
        let mut other = SummaryTree::new("different-bk", a.label_counts().to_vec());
        assert!(matches!(
            merge_into(&mut other, &a, &EngineConfig::default()),
            Err(SummaryError::IncompatibleBk { .. })
        ));
        let mut wrong_geometry = SummaryTree::new(a.bk_name().to_string(), vec![1, 2, 3]);
        assert!(merge_into(&mut wrong_geometry, &a, &EngineConfig::default()).is_err());
    }

    #[test]
    fn merge_folds_statistics() {
        let a = local_summary(30, 1, 40);
        let b = local_summary(31, 2, 40);
        let mut merged = a.clone();
        merge_into(&mut merged, &b, &EngineConfig::default()).unwrap();
        let root_stats = merged.stats_of(merged.root());
        // Age stats count equals total weight (age contributes to every cell).
        assert!((root_stats[0].count() - merged.total_count()).abs() < 1e-6);
        let (amin, amax) = (root_stats[0].min().unwrap(), root_stats[0].max().unwrap());
        assert!(amin >= 0.0 && amax <= 100.0);
    }
}
