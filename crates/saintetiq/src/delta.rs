//! Incremental maintenance of merged summaries (delta reconciliation).
//!
//! [`crate::merge::merge_into`] is destructive: once a source's leaves
//! are folded into a global summary there is no way to take them out
//! again short of re-merging every other contributor from scratch. That
//! makes every reconciliation round O(|partners|) even when a single
//! cooperation-list entry crossed the α threshold.
//!
//! [`GsAccumulator`] fixes this at the engine layer. It keeps one
//! [`SourceDelta`] per contributing source — the flattened leaves of
//! that source's last pulled summary — and supports
//! [`GsAccumulator::update_source`] / [`GsAccumulator::remove_source`]
//! in O(|that source's cells|). The merged view is produced by
//! [`GsAccumulator::build_merged`], a **canonical** construction: cells
//! are incorporated in cell-key order and, within a cell, contributors
//! in source-id order. Because the construction is a pure function of
//! the *current* source set (never of the update history), two
//! accumulators holding the same contributions produce byte-identical
//! wire encodings — the property the domain layer's full-rebuild oracle
//! and the `gs_incremental` property tests rely on.
//!
//! Cost model, stated honestly: an update decodes and flattens only
//! the changed source — the *merge/decode work* per round (the paper's
//! §6.1 cost unit) scales with the stale subset. `build_merged` itself
//! is Θ(total contributions): the merged summary physically stores one
//! per-source entry per (source, cell) pair, so materializing it — like
//! encoding it, or like the SP receiving and storing the full `NewGS`
//! token in §4.2.2 — is inherently linear in Σ per-source cells. What
//! the accumulator removes is the per-partner wire decode and Cobweb
//! re-merge that used to dominate the round; the remaining canonical
//! store is a small-constant pass over the cell map (measured ≈3×
//! end-to-end at 1% drift in `BENCH_reconcile.json`, with the gap
//! widening as summaries grow, since decode cost scales with encoded
//! size while the store pass does not).

use std::collections::BTreeMap;

use fuzzy::descriptor::Grade;
use relation::stats::AttributeStats;

use crate::cell::{CellKey, SourceId};
use crate::engine::{incorporate_cell, EngineConfig};
use crate::error::SummaryError;
use crate::hierarchy::SummaryTree;

/// One contributed cell: the coordinate plus everything the merge needs
/// to replay it into a fresh tree.
#[derive(Debug, Clone)]
struct DeltaCell {
    key: CellKey,
    weight: f64,
    grades: Vec<Grade>,
    stats: Vec<AttributeStats>,
}

/// One source's flattened contribution to a merged summary: the leaves
/// of its (local) summary hierarchy, restricted to that source's own
/// per-cell weights.
#[derive(Debug, Clone)]
pub struct SourceDelta {
    cells: Vec<DeltaCell>,
    /// Encoded size of the summary this delta was flattened from (what
    /// the wire carried; 0 when built straight from a tree).
    encoded_bytes: usize,
}

impl SourceDelta {
    /// Flattens `source`'s contribution out of a summary tree.
    ///
    /// For the intended use — a peer's *local* summary, where `source`
    /// is the only contributor — the extracted weights, grades and
    /// statistics are exact. On a multi-source tree the per-cell grades
    /// and statistics are shared across contributors, so the flattening
    /// is an upper bound; the P2P layer never needs that case.
    pub fn from_tree(tree: &SummaryTree, source: SourceId) -> Self {
        let cells = tree
            .cells()
            .iter()
            .filter_map(|(key, entry)| {
                let weight = entry.content.per_source.get(&source).copied()?;
                Some(DeltaCell {
                    key: key.clone(),
                    weight,
                    grades: entry.content.max_grades.clone(),
                    stats: entry.stats.clone(),
                })
            })
            .collect();
        Self {
            cells,
            encoded_bytes: 0,
        }
    }

    /// Number of cells this source contributes.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Encoded size of the summary the delta was flattened from.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded_bytes
    }
}

/// A per-source accumulator for one merged (global) summary.
///
/// See the module docs for the design; in short: O(|source|) updates,
/// O(|merged summary|) canonical rebuilds, byte-stable encodings.
#[derive(Debug, Clone)]
pub struct GsAccumulator {
    bk_name: String,
    label_counts: Vec<usize>,
    config: EngineConfig,
    sources: BTreeMap<SourceId, SourceDelta>,
}

impl GsAccumulator {
    /// An empty accumulator over the given Background Knowledge shape.
    pub fn new(bk_name: impl Into<String>, label_counts: Vec<usize>) -> Self {
        Self {
            bk_name: bk_name.into(),
            label_counts,
            config: EngineConfig::default(),
            sources: BTreeMap::new(),
        }
    }

    /// Replaces (or inserts) `source`'s contribution with the leaves of
    /// `tree`. The tree must be built over the accumulator's BK.
    pub fn update_source(
        &mut self,
        source: SourceId,
        tree: &SummaryTree,
    ) -> Result<(), SummaryError> {
        if tree.bk_name() != self.bk_name || tree.label_counts() != &self.label_counts[..] {
            return Err(SummaryError::IncompatibleBk {
                left: self.bk_name.clone(),
                right: tree.bk_name().to_string(),
            });
        }
        self.sources
            .insert(source, SourceDelta::from_tree(tree, source));
        Ok(())
    }

    /// [`GsAccumulator::update_source`] from an encoded summary: decodes
    /// `bytes` and records its size as the pulled delta payload.
    /// Returns the payload size on success.
    pub fn update_source_encoded(
        &mut self,
        source: SourceId,
        bytes: &[u8],
    ) -> Result<usize, SummaryError> {
        let tree = crate::wire::decode(bytes)?;
        self.update_source(source, &tree)?;
        if let Some(delta) = self.sources.get_mut(&source) {
            delta.encoded_bytes = bytes.len();
        }
        Ok(bytes.len())
    }

    /// Drops `source`'s contribution. Returns whether it was present.
    pub fn remove_source(&mut self, source: SourceId) -> bool {
        self.sources.remove(&source).is_some()
    }

    /// True when `source` currently contributes.
    pub fn contains(&self, source: SourceId) -> bool {
        self.sources.contains_key(&source)
    }

    /// Number of contributing sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no source contributes.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The contributing sources, in id order.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.sources.keys().copied()
    }

    /// Drops every contribution (domain dissolution).
    pub fn clear(&mut self) {
        self.sources.clear();
    }

    /// Builds the canonical merged summary of the current contributions.
    ///
    /// Deterministic in the source *set*: cells are incorporated in
    /// cell-key order and contributors within a cell in source-id
    /// order, so the output — including every floating-point low bit of
    /// the folded statistics — depends only on what is contributed, not
    /// on the order updates and removals happened in.
    pub fn build_merged(&self) -> SummaryTree {
        let mut by_cell: BTreeMap<&CellKey, Vec<(SourceId, &DeltaCell)>> = BTreeMap::new();
        for (&src, delta) in &self.sources {
            for cell in &delta.cells {
                by_cell.entry(&cell.key).or_default().push((src, cell));
            }
        }
        let mut tree = SummaryTree::new(self.bk_name.clone(), self.label_counts.clone());
        for (key, contribs) in by_cell {
            for (src, cell) in contribs {
                incorporate_cell(
                    &mut tree,
                    &self.config,
                    key,
                    src,
                    cell.weight,
                    &cell.grades,
                    None,
                );
                tree.merge_cell_stats(key, &cell.stats);
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SaintEtiQEngine;
    use crate::merge::merge_all;
    use crate::wire;
    use fuzzy::bk::BackgroundKnowledge;
    use rand::SeedableRng;
    use relation::generator::{patient_table, MatchTarget, PatientDistributions};
    use relation::schema::Schema;

    fn local_summary(seed: u64, source: u32, n: usize) -> SummaryTree {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = PatientDistributions::default();
        let table = patient_table(&mut rng, n, &dist, &MatchTarget::default(), 0);
        let mut e = SaintEtiQEngine::new(
            BackgroundKnowledge::medical_cbk(),
            &Schema::patient(),
            EngineConfig::default(),
            SourceId(source),
        )
        .unwrap();
        e.summarize_table(&table);
        e.into_tree()
    }

    fn acc() -> GsAccumulator {
        GsAccumulator::new("medical-cbk-v1", vec![3, 3, 3, 12])
    }

    #[test]
    fn build_matches_merge_all_at_the_cell_level() {
        let locals: Vec<SummaryTree> = (0..6)
            .map(|i| local_summary(40 + i, i as u32, 60))
            .collect();
        let mut a = acc();
        for (i, t) in locals.iter().enumerate() {
            a.update_source(SourceId(i as u32), t).unwrap();
        }
        let built = a.build_merged();
        built.check_invariants();
        let merged = merge_all(
            locals[0].bk_name(),
            locals[0].label_counts(),
            locals.iter(),
            &EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(built.leaf_count(), merged.leaf_count());
        assert!((built.total_count() - merged.total_count()).abs() < 1e-6);
        assert_eq!(built.all_sources(), merged.all_sources());
        // Per-cell content is *exactly* equal: for any one cell, both
        // paths fold the same contributions in the same source order
        // (merge_all visits sources in order; build_merged orders
        // contributors per cell by source id), so even the
        // floating-point low bits of weights, grades and statistics
        // must agree — only the hierarchy above the cells may differ.
        for (k, entry) in merged.cells() {
            let b = &built.cells()[k];
            assert_eq!(b.content.per_source, entry.content.per_source);
            assert_eq!(b.content.weight, entry.content.weight);
            assert_eq!(b.content.max_grades, entry.content.max_grades);
            for (bs, ms) in b.stats.iter().zip(&entry.stats) {
                assert_eq!(bs.raw_parts(), ms.raw_parts());
            }
        }
    }

    #[test]
    fn encoding_is_canonical_in_the_source_set() {
        let locals: Vec<SummaryTree> = (0..5)
            .map(|i| local_summary(50 + i, i as u32, 40))
            .collect();
        let drifted = local_summary(99, 2, 40);

        // History A: enroll 0..5 in order, then re-pull source 2.
        let mut a = acc();
        for (i, t) in locals.iter().enumerate() {
            a.update_source(SourceId(i as u32), t).unwrap();
        }
        a.update_source(SourceId(2), &drifted).unwrap();

        // History B: reversed enrollment, a removal, a re-add, then the
        // same final contribution set.
        let mut b = acc();
        for (i, t) in locals.iter().enumerate().rev() {
            b.update_source(SourceId(i as u32), t).unwrap();
        }
        b.remove_source(SourceId(4));
        b.update_source(SourceId(2), &drifted).unwrap();
        b.update_source(SourceId(4), &locals[4]).unwrap();

        assert_eq!(
            wire::encode(&a.build_merged()),
            wire::encode(&b.build_merged()),
            "merged view is a pure function of the contribution set"
        );
    }

    #[test]
    fn update_and_remove_roundtrip() {
        let t1 = local_summary(60, 1, 50);
        let t2 = local_summary(61, 2, 50);
        let mut a = acc();
        a.update_source(SourceId(1), &t1).unwrap();
        a.update_source(SourceId(2), &t2).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.contains(SourceId(1)));

        assert!(a.remove_source(SourceId(2)));
        assert!(!a.remove_source(SourceId(2)), "double remove is a no-op");
        let solo = a.build_merged();
        assert_eq!(solo.all_sources(), vec![SourceId(1)]);
        // With only source 1 left, the merged view is source 1's cells.
        assert_eq!(solo.leaf_count(), t1.leaf_count());
        assert!((solo.total_count() - t1.total_count()).abs() < 1e-9);

        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.build_merged().leaf_count(), 0);
    }

    #[test]
    fn encoded_update_tracks_payload_bytes() {
        let t = local_summary(70, 3, 30);
        let bytes = wire::encode(&t);
        let mut a = acc();
        let n = a.update_source_encoded(SourceId(3), &bytes).unwrap();
        assert_eq!(n, bytes.len());
        assert!(a.contains(SourceId(3)));
        assert!(a.update_source_encoded(SourceId(4), &bytes[..10]).is_err());
        assert!(!a.contains(SourceId(4)), "failed decode leaves no entry");
    }

    #[test]
    fn incompatible_bk_rejected() {
        let t = local_summary(80, 1, 20);
        let mut wrong = GsAccumulator::new("other-bk", t.label_counts().to_vec());
        assert!(matches!(
            wrong.update_source(SourceId(1), &t),
            Err(SummaryError::IncompatibleBk { .. })
        ));
        let mut wrong_shape = GsAccumulator::new(t.bk_name(), vec![1, 2]);
        assert!(wrong_shape.update_source(SourceId(1), &t).is_err());
    }
}
