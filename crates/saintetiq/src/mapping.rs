//! The mapping service (§3.2.1): records → weighted grid cells.
//!
//! For each record, every summarized attribute is fuzzified against the
//! Background Knowledge; grades below the BK's pruning threshold τ are
//! dropped and the survivors renormalized (see
//! [`fuzzy::linguistic::LinguisticVariable::fuzzify_pruned`]). The record
//! is then split over the cartesian product of its per-attribute label
//! sets, each cell weighted by the product of grades. This reproduces the
//! paper's Table 2 exactly: three patients map to `c1 = (young,
//! underweight) : 2`, `c2 = (young, normal) : 0.7`, `c3 = (adult,
//! normal) : 0.3`.

use fuzzy::bk::{AttributeVocabulary, BackgroundKnowledge};
use fuzzy::descriptor::{Grade, LabelId};
use relation::schema::Schema;
use relation::value::Value;

use crate::cell::{CandidateCell, CellKey};
use crate::error::SummaryError;

/// Binds a Background Knowledge to a relation schema: for each BK
/// attribute, the index of the feeding column.
///
/// ```
/// use fuzzy::BackgroundKnowledge;
/// use relation::{schema::Schema, table::Table};
/// use saintetiq::mapping::Mapper;
///
/// let mapper = Mapper::bind(BackgroundKnowledge::medical_cbk(), &Schema::patient())?;
/// let table = Table::patient_table1();
/// // Tuple t2 (age 20) splits across two cells: 0.7 young + 0.3 adult.
/// let t2 = table.get(relation::tuple::TupleId(2)).unwrap();
/// let cells = mapper.map_record(&t2.values)?;
/// assert_eq!(cells.len(), 2);
/// let total: f64 = cells.iter().map(|c| c.weight).sum();
/// assert!((total - 1.0).abs() < 1e-9, "mass is conserved");
/// # Ok::<(), saintetiq::SummaryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    bk: BackgroundKnowledge,
    /// `columns[i]` = schema column index feeding BK attribute `i`.
    columns: Vec<usize>,
}

impl Mapper {
    /// Binds `bk` to `schema` by attribute name. Every BK attribute must
    /// exist in the schema with a compatible kind (numeric vocabulary ↔
    /// int/float column, categorical ↔ text column).
    pub fn bind(bk: BackgroundKnowledge, schema: &Schema) -> Result<Self, SummaryError> {
        let mut columns = Vec::with_capacity(bk.arity());
        for attr in bk.attributes() {
            let idx = schema
                .index_of(attr.name())
                .ok_or_else(|| SummaryError::MissingColumn(attr.name().to_string()))?;
            let col = &schema.attributes()[idx];
            let numeric_col = matches!(
                col.ty,
                relation::schema::AttrType::Int | relation::schema::AttrType::Float
            );
            let numeric_bk = matches!(attr, AttributeVocabulary::Numeric(_));
            if numeric_col != numeric_bk {
                return Err(SummaryError::KindMismatch {
                    attribute: attr.name().to_string(),
                });
            }
            columns.push(idx);
        }
        Ok(Self { bk, columns })
    }

    /// The bound background knowledge.
    pub fn bk(&self) -> &BackgroundKnowledge {
        &self.bk
    }

    /// The schema column index feeding BK attribute `attr_idx`.
    pub fn column(&self, attr_idx: usize) -> usize {
        self.columns[attr_idx]
    }

    /// Maps one record into its weighted candidate cells. Cell weights
    /// over one record sum to 1 (mass conservation), so summary counts
    /// equal record counts.
    ///
    /// A record with a NULL or out-of-vocabulary value on some attribute
    /// is unmappable on that dimension and yields `Err`; the caller
    /// decides whether to skip or fail (the engine skips and counts).
    pub fn map_record(&self, row: &[Value]) -> Result<Vec<CandidateCell>, SummaryError> {
        // Per attribute: the (label, renormalized grade, raw grade) kept.
        let mut per_attr: Vec<Vec<(LabelId, Grade, Grade)>> = Vec::with_capacity(self.bk.arity());
        for (attr_idx, attr) in self.bk.attributes().iter().enumerate() {
            let value = &row[self.columns[attr_idx]];
            let kept: Vec<(LabelId, Grade, Grade)> = match attr {
                AttributeVocabulary::Numeric(var) => {
                    let x = value.as_f64().ok_or_else(|| SummaryError::Unmappable {
                        attribute: attr.name().to_string(),
                        value: value.to_string(),
                    })?;
                    // Keep the raw grade alongside the renormalized one:
                    // raw grades become the cell's "0.3/adult" annotations.
                    let raw = var.fuzzify(x);
                    let pruned = var.fuzzify_pruned(x, self.bk.tau);
                    pruned
                        .into_iter()
                        .map(|(l, g)| {
                            let rawg = raw
                                .iter()
                                .find(|(rl, _)| *rl == l)
                                .map(|&(_, g)| g)
                                .unwrap_or(g);
                            (l, g, rawg)
                        })
                        .collect()
                }
                AttributeVocabulary::Categorical(tax) => {
                    let s = value.as_str().ok_or_else(|| SummaryError::Unmappable {
                        attribute: attr.name().to_string(),
                        value: value.to_string(),
                    })?;
                    tax.categorize(s)
                        .into_iter()
                        .map(|(l, g)| (l, g, g))
                        .collect()
                }
            };
            if kept.is_empty() {
                return Err(SummaryError::Unmappable {
                    attribute: attr.name().to_string(),
                    value: value.to_string(),
                });
            }
            per_attr.push(kept);
        }

        // Cartesian product of kept labels; weight = Π renormalized grades.
        let mut cells: Vec<CandidateCell> = vec![CandidateCell {
            key: CellKey(Vec::with_capacity(self.bk.arity())),
            weight: 1.0,
            grades: Vec::with_capacity(self.bk.arity()),
        }];
        for kept in &per_attr {
            let mut next = Vec::with_capacity(cells.len() * kept.len());
            for cell in &cells {
                for &(label, g, raw) in kept {
                    let mut key = cell.key.0.clone();
                    key.push(label);
                    let mut grades = cell.grades.clone();
                    grades.push(raw);
                    next.push(CandidateCell {
                        key: CellKey(key),
                        weight: cell.weight * g,
                        grades,
                    });
                }
            }
            cells = next;
        }
        Ok(cells)
    }

    /// Maps a whole table; unmappable records are skipped and counted in
    /// the second return value.
    pub fn map_table(&self, table: &relation::table::Table) -> (Vec<Vec<CandidateCell>>, usize) {
        let mut out = Vec::with_capacity(table.len());
        let mut skipped = 0;
        for (_, row) in table.iter() {
            match self.map_record(row) {
                Ok(cells) => out.push(cells),
                Err(_) => skipped += 1,
            }
        }
        (out, skipped)
    }

    /// Renders a cell key with label names, for display/debugging:
    /// `(young, female, underweight, anorexia)`.
    pub fn describe(&self, key: &CellKey) -> String {
        let names: Vec<&str> = self
            .bk
            .attributes()
            .iter()
            .zip(&key.0)
            .map(|(attr, &l)| attr.label_name(l).unwrap_or("?"))
            .collect();
        format!("({})", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy::bk::BackgroundKnowledge;
    use relation::table::Table;
    use std::collections::BTreeMap;

    fn mapper() -> Mapper {
        Mapper::bind(BackgroundKnowledge::medical_cbk(), &Schema::patient()).unwrap()
    }

    /// Reproduces the paper's Table 2 from Table 1 exactly.
    #[test]
    fn paper_table2() {
        let m = mapper();
        let table = Table::patient_table1();
        let (mapped, skipped) = m.map_table(&table);
        assert_eq!(skipped, 0);

        // Aggregate weights per (age-label, bmi-label) as Table 2 does
        // (it shows only the age and bmi dimensions).
        let bk = m.bk();
        let age_i = bk.attribute_index("age").unwrap();
        let bmi_i = bk.attribute_index("bmi").unwrap();
        let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
        for cells in &mapped {
            for c in cells {
                let age = bk
                    .attribute_at(age_i)
                    .unwrap()
                    .label_name(c.key.0[age_i])
                    .unwrap();
                let bmi = bk
                    .attribute_at(bmi_i)
                    .unwrap()
                    .label_name(c.key.0[bmi_i])
                    .unwrap();
                *counts
                    .entry((age.to_string(), bmi.to_string()))
                    .or_insert(0.0) += c.weight;
            }
        }
        assert_eq!(counts.len(), 3, "exactly cells c1, c2, c3: {counts:?}");
        let get = |a: &str, b: &str| counts[&(a.to_string(), b.to_string())];
        assert!(
            (get("young", "underweight") - 2.0).abs() < 1e-9,
            "c1 count 2"
        );
        assert!((get("young", "normal") - 0.7).abs() < 1e-9, "c2 count 0.7");
        assert!((get("adult", "normal") - 0.3).abs() < 1e-9, "c3 count 0.3");
    }

    #[test]
    fn raw_grades_annotate_cells() {
        let m = mapper();
        let table = Table::patient_table1();
        // Tuple t2 (age 20): its (adult, normal) cell carries raw grade
        // 0.3 on age — the paper's "0.3/adult".
        let t2 = table.get(relation::tuple::TupleId(2)).unwrap();
        let cells = m.map_record(&t2.values).unwrap();
        let bk = m.bk();
        let age_i = bk.attribute_index("age").unwrap();
        let adult = bk.attribute_at(age_i).unwrap().label_id("adult").unwrap();
        let adult_cell = cells.iter().find(|c| c.key.0[age_i] == adult).unwrap();
        assert!((adult_cell.grades[age_i] - 0.3).abs() < 1e-9);
        assert!((adult_cell.weight - 0.3).abs() < 1e-9);
    }

    #[test]
    fn mass_is_conserved_per_record() {
        let m = mapper();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let dist = relation::generator::PatientDistributions::default();
        for _ in 0..100 {
            let row = relation::generator::random_patient(&mut rng, &dist);
            let cells = m.map_record(&row).unwrap();
            let total: f64 = cells.iter().map(|c| c.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "mass {total} for {row:?}");
        }
    }

    #[test]
    fn null_values_are_unmappable() {
        let m = mapper();
        let row = vec![
            Value::Null,
            Value::text("female"),
            Value::Float(20.0),
            Value::text("malaria"),
        ];
        assert!(matches!(
            m.map_record(&row),
            Err(SummaryError::Unmappable { .. })
        ));
    }

    #[test]
    fn unknown_disease_maps_to_taxonomy_root() {
        let m = mapper();
        let row = vec![
            Value::Int(30),
            Value::text("male"),
            Value::Float(22.0),
            Value::text("gout"),
        ];
        let cells = m.map_record(&row).unwrap();
        let bk = m.bk();
        let dis_i = bk.attribute_index("disease").unwrap();
        for c in &cells {
            assert_eq!(
                bk.attribute_at(dis_i)
                    .unwrap()
                    .label_name(c.key.0[dis_i])
                    .unwrap(),
                "any_disease"
            );
        }
    }

    #[test]
    fn bind_rejects_missing_and_mismatched_columns() {
        let bk = BackgroundKnowledge::medical_cbk();
        let schema = Schema::new(vec![relation::schema::Attribute::new(
            "age",
            relation::schema::AttrType::Int,
        )])
        .unwrap();
        assert!(matches!(
            Mapper::bind(bk.clone(), &schema),
            Err(SummaryError::MissingColumn(_))
        ));

        let schema = Schema::new(vec![
            relation::schema::Attribute::new("age", relation::schema::AttrType::Text),
            relation::schema::Attribute::new("sex", relation::schema::AttrType::Text),
            relation::schema::Attribute::new("bmi", relation::schema::AttrType::Float),
            relation::schema::Attribute::new("disease", relation::schema::AttrType::Text),
        ])
        .unwrap();
        assert!(matches!(
            Mapper::bind(bk, &schema),
            Err(SummaryError::KindMismatch { .. })
        ));
    }

    #[test]
    fn describe_renders_label_names() {
        let m = mapper();
        let table = Table::patient_table1();
        let t1 = table.get(relation::tuple::TupleId(1)).unwrap();
        let cells = m.map_record(&t1.values).unwrap();
        let s = m.describe(&cells[0].key);
        assert!(
            s.contains("young") && s.contains("underweight") && s.contains("anorexia"),
            "{s}"
        );
    }
}
