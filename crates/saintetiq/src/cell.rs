//! Grid cells: the atoms of summarization.
//!
//! The Background Knowledge equips the attribute space `E = ⟨A1..An⟩`
//! with a fuzzy grid; a **cell** is one basic n-dimensional area — one
//! label per attribute (Definition 1). The mapping service locates the
//! overlapping cells a record falls into; "there are finally many more
//! records than cells" (§3.2.1), which is what makes summarization pay.

use std::collections::BTreeMap;

use fuzzy::descriptor::{Grade, LabelId};

/// Identifier of a data source (a peer, in the P2P setting).
///
/// Local summarization uses a single source (the peer itself); merged
/// *global* summaries accumulate the sources of every partner, realizing
/// Definition 3's peer-extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

/// A grid-cell coordinate: exactly one label per BK attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey(pub Vec<LabelId>);

impl CellKey {
    /// Number of dimensions (the BK arity).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The label on dimension `attr`.
    pub fn label(&self, attr: usize) -> LabelId {
        self.0[attr]
    }
}

/// A cell produced by mapping one record: the coordinate plus the record's
/// (fractional) weight in the cell and per-attribute satisfaction grades.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCell {
    /// Grid coordinate.
    pub key: CellKey,
    /// Fraction of the record falling in this cell (product of the kept,
    /// renormalized per-attribute grades). Sums to 1 over the cells of
    /// one record.
    pub weight: f64,
    /// Raw membership grade per attribute (before renormalization) — the
    /// "0.3/adult" annotations of Table 2, computed as the maximum grade
    /// of tuple values in the cell.
    pub grades: Vec<Grade>,
}

/// Aggregated content of one cell inside a summary tree: total weight and
/// the weight contributed per source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellContent {
    /// Sum of record weights mapped into the cell (the "tuple count"
    /// column of Table 2).
    pub weight: f64,
    /// Per-source contribution; keys are the peer-extent of the cell.
    pub per_source: BTreeMap<SourceId, f64>,
    /// Per-attribute maximum membership grade observed in the cell.
    pub max_grades: Vec<Grade>,
}

impl CellContent {
    /// Adds a contribution from `source`.
    pub fn add(&mut self, source: SourceId, weight: f64, grades: &[Grade]) {
        self.weight += weight;
        *self.per_source.entry(source).or_insert(0.0) += weight;
        if self.max_grades.len() < grades.len() {
            self.max_grades.resize(grades.len(), 0.0);
        }
        for (slot, &g) in self.max_grades.iter_mut().zip(grades) {
            if g > *slot {
                *slot = g;
            }
        }
    }

    /// Removes up to `weight` contributed by `source`; returns the weight
    /// actually removed. Cleans the source entry when it drains.
    pub fn remove(&mut self, source: SourceId, weight: f64) -> f64 {
        let Some(w) = self.per_source.get_mut(&source) else {
            return 0.0;
        };
        let removed = weight.min(*w);
        *w -= removed;
        if *w <= 1e-12 {
            self.per_source.remove(&source);
        }
        self.weight = (self.weight - removed).max(0.0);
        removed
    }

    /// Drops every contribution of `source`; returns the removed weight.
    pub fn remove_source(&mut self, source: SourceId) -> f64 {
        let removed = self.per_source.remove(&source).unwrap_or(0.0);
        self.weight = (self.weight - removed).max(0.0);
        removed
    }

    /// True when no weight remains.
    pub fn is_empty(&self) -> bool {
        self.weight <= 1e-12
    }

    /// The sources contributing to this cell.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.per_source.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(labels: &[u16]) -> CellKey {
        CellKey(labels.iter().map(|&l| LabelId(l)).collect())
    }

    #[test]
    fn cell_key_basics() {
        let k = key(&[0, 2, 1]);
        assert_eq!(k.arity(), 3);
        assert_eq!(k.label(1), LabelId(2));
        assert_eq!(k, key(&[0, 2, 1]));
        assert_ne!(k, key(&[0, 2, 2]));
    }

    #[test]
    fn content_accumulates_weight_and_sources() {
        let mut c = CellContent::default();
        c.add(SourceId(1), 0.7, &[0.7, 1.0]);
        c.add(SourceId(2), 1.0, &[1.0, 0.9]);
        assert!((c.weight - 1.7).abs() < 1e-12);
        assert_eq!(c.sources().count(), 2);
        assert_eq!(c.max_grades, vec![1.0, 1.0]);
    }

    #[test]
    fn remove_partial_and_full() {
        let mut c = CellContent::default();
        c.add(SourceId(1), 1.0, &[1.0]);
        c.add(SourceId(2), 0.5, &[0.5]);
        let r = c.remove(SourceId(1), 0.4);
        assert!((r - 0.4).abs() < 1e-12);
        assert_eq!(c.sources().count(), 2);
        let r = c.remove(SourceId(1), 10.0);
        assert!((r - 0.6).abs() < 1e-12);
        assert_eq!(c.sources().count(), 1, "drained source is dropped");
        assert!((c.weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn remove_source_wholesale() {
        let mut c = CellContent::default();
        c.add(SourceId(7), 0.3, &[0.3]);
        c.add(SourceId(8), 0.7, &[0.7]);
        assert!((c.remove_source(SourceId(7)) - 0.3).abs() < 1e-12);
        assert_eq!(c.remove_source(SourceId(7)), 0.0);
        assert!(!c.is_empty());
        c.remove_source(SourceId(8));
        assert!(c.is_empty());
    }

    #[test]
    fn remove_unknown_source_is_noop() {
        let mut c = CellContent::default();
        c.add(SourceId(1), 1.0, &[1.0]);
        assert_eq!(c.remove(SourceId(9), 1.0), 0.0);
        assert!((c.weight - 1.0).abs() < 1e-12);
    }
}
