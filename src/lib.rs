#![warn(missing_docs)]

//! # summary-management
//!
//! A full reproduction of **“Summary Management in P2P Systems”** (Rabab
//! Hayek, Guillaume Raschia, Patrick Valduriez, Noureddine Mouaddib —
//! EDBT 2008) as a Rust workspace.
//!
//! The paper combines P2P networking and database summarization: every
//! peer compresses its relational database into a hierarchy of fuzzy
//! linguistic summaries (the SaintEtiQ model), and superpeer *domains*
//! maintain merged **global summaries** that serve simultaneously as
//!
//! * **semantic indexes** — routing queries to the peers whose data can
//!   match (peer localization), and
//! * **approximate answers** — a query can be answered entirely in the
//!   summary domain ("dead Malaria patients are typically children and
//!   old") without touching raw records.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`fuzzy`] | membership functions, linguistic variables, partitions, taxonomies, Background Knowledge |
//! | [`relation`] | typed tables, conjunctive queries, change feeds, workload generators |
//! | [`saintetiq`] | the summarization engine: mapping, Cobweb-style hierarchy, merging, valuation/selection, approximate answering, wire codec |
//! | [`p2psim`] | deterministic discrete-event simulator, BRITE-style topologies, churn models |
//! | [`summary_p2p`] | the paper's contribution: domains, cooperation lists, construction/push/pull protocols, routing policies, cost model, baselines, experiment drivers |
//!
//! ## Quickstart
//!
//! ```
//! use fuzzy::BackgroundKnowledge;
//! use relation::{SelectQuery, Table};
//! use relation::schema::Schema;
//! use saintetiq::cell::SourceId;
//! use saintetiq::engine::{EngineConfig, SaintEtiQEngine};
//! use saintetiq::query::proposition::reformulate;
//!
//! // Summarize the paper's Table 1 and answer its §5.1 query
//! // approximately, without reading any tuple back.
//! let bk = BackgroundKnowledge::medical_cbk();
//! let mut engine = SaintEtiQEngine::new(
//!     bk.clone(), &Schema::patient(), EngineConfig::default(), SourceId(0),
//! ).unwrap();
//! engine.summarize_table(&Table::patient_table1());
//!
//! let q = reformulate(&SelectQuery::paper_example(), &bk).unwrap();
//! let answers = saintetiq::query::approx::approximate_answer(engine.tree(), &q);
//! assert!(answers[0].render(&bk).contains("age = {young}"));
//! ```
//!
//! The experiment harness regenerating every figure of the paper lives in
//! the `sumq-bench` crate (`cargo run -p sumq-bench --release --bin
//! fig4_stale_answers`, etc.); see `EXPERIMENTS.md` at the workspace root
//! for the reproduction log.

pub use fuzzy;
pub use p2psim;
pub use relation;
pub use saintetiq;
pub use summary_p2p;
